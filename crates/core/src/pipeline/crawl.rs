//! The shard-parallel weekly crawl (§3.2).
//!
//! [`CrawlExecutor`] fans one monitoring round out over worker threads. The
//! contract is strict determinism: for the same world state the output is
//! byte-identical for any thread count, because
//!
//! 1. work is partitioned by [`SnapshotStore::shard_of`] — a fixed hash of
//!    the FQDN — never by arrival or iteration order,
//! 2. every task reads the *pre-round* store (each FQDN appears once per
//!    round, so no task can observe another's write), and
//! 3. any randomness (the transient-failure model) comes from an RNG stream
//!    keyed by `crawl/{fqdn}/{day}`, so it does not depend on which thread
//!    or in which order the FQDN was crawled,
//!
//! and the outcomes are re-assembled in the canonical monitored order before
//! the diff stage consumes them.

use super::{RunState, ShardedExecutor, Stage};
use crate::diff::{record as diff_record, ChangeRecord};
use crate::monitor::{CrawlInFlight, CrawlWait, Crawler};
use crate::snapshot::{Snapshot, SnapshotStore};
use dns::resolver::Transport;
use dns::{Name, Resolver};
use httpsim::Endpoint;
use rand::Rng;
use simcore::{CompletionQueue, LatencyModel, QueryClass, QueryFate, RngTree, SimTime};

/// What one crawl task produced: the new snapshot and, when there was a
/// previous one, the diff against it. The two latency fields are timing
/// telemetry — they feed the per-round percentile summaries and never any
/// serialized result.
#[derive(Debug, Clone)]
pub struct CrawlOutcome {
    pub snap: Snapshot,
    pub change: Option<ChangeRecord>,
    /// Total simulated time this crawl consumed (0 when the model is off).
    pub sim_elapsed_ns: u64,
    /// Simulated time the DNS resolution consumed.
    pub dns_elapsed_ns: u64,
}

/// Shard-parallel crawl executor: the [`ShardedExecutor`] discipline applied
/// to the weekly crawl (see module docs for the determinism contract).
pub struct CrawlExecutor {
    exec: ShardedExecutor,
    /// Per-fetch probability of a transient failure (network flake). Zero
    /// disables the model entirely — no RNG stream is even derived.
    failure_rate: f64,
    /// Per-query latency oracle. When disabled (`off`), crawls take the
    /// legacy blocking path; otherwise each shard drains a completion queue
    /// of interleaved in-flight crawls.
    latency: LatencyModel,
    /// Cap on concurrently in-flight crawls per shard event loop.
    max_inflight: usize,
    m_failures: &'static obs::Counter,
    m_inflight: &'static obs::Gauge,
    m_sim_latency: &'static obs::Histogram,
    m_timeouts: &'static obs::Counter,
    m_makespan: &'static obs::Gauge,
}

impl CrawlExecutor {
    pub fn new(threads: usize, failure_rate: f64) -> Self {
        CrawlExecutor {
            exec: ShardedExecutor::new(threads, crate::exec_metric_names!("crawl")),
            failure_rate,
            // The default is the zero profile: event-driven with a
            // degenerate clock, byte-identical to the blocking path.
            latency: LatencyModel::default(),
            max_inflight: 1024,
            m_failures: obs::counter("crawl.transient_failures"),
            m_inflight: obs::gauge("crawl.inflight"),
            m_sim_latency: obs::histogram("crawl.sim_latency_ns"),
            m_timeouts: obs::counter("crawl.query_timeouts"),
            m_makespan: obs::gauge("crawl.makespan_ns"),
        }
    }

    /// Select the latency model (builder-style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Cap concurrently in-flight crawls per shard event loop.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Crawl `monitored` (in canonical order) against the pre-round `store`,
    /// returning one [`CrawlOutcome`] per FQDN in the same order.
    ///
    /// `make_resolver` / `make_web` are per-worker factories: each thread
    /// gets its own resolver (and thus its own TTL cache) so no lock is
    /// shared on the hot path. Within one round a cache hit returns exactly
    /// what a fresh resolution would (same authority state, same `now`), so
    /// per-thread caches cannot perturb results.
    pub fn run<T, E, FR, FW>(
        &self,
        monitored: &[Name],
        store: &SnapshotStore,
        tree: &RngTree,
        now: SimTime,
        make_resolver: &FR,
        make_web: &FW,
    ) -> Vec<CrawlOutcome>
    where
        T: Transport,
        E: Endpoint,
        FR: Fn() -> Resolver<T> + Sync,
        FW: Fn() -> E + Sync,
    {
        if !self.latency.enabled() {
            // Legacy blocking path: one task = one blocking crawl. Work is
            // partitioned into the store's shards — a stable, FQDN-keyed
            // split, so the same name always lands in the same bucket no
            // matter how many workers run.
            return self.exec.map(
                monitored,
                store.shard_count(),
                |fqdn| store.shard_of(fqdn),
                || (make_resolver(), make_web()),
                |(resolver, web), _i, fqdn| self.crawl_one(fqdn, resolver, web, store, tree, now),
            );
        }

        // Event-driven path: each shard drains its own completion queue,
        // interleaving up to `max_inflight` crawls. Bucket composition is
        // the same FQDN-keyed split as the blocking path, every latency
        // draw is keyed by (fqdn, day, event ordinal), and per-bucket
        // outcome lists are merged back in canonical input order — so the
        // result stays byte-identical for any thread count.
        let per_bucket = self.exec.fold_buckets(
            monitored,
            store.shard_count(),
            |fqdn| store.shard_of(fqdn),
            |_b, bucket| {
                let resolver = make_resolver();
                let web = make_web();
                self.run_bucket(bucket, store, tree, now, &resolver, &web)
            },
        );

        // Telemetry: peak concurrency and makespan across shard loops, each
        // crawl's simulated duration. All out-of-band.
        let peak = per_bucket
            .iter()
            .map(|b| b.peak_inflight)
            .max()
            .unwrap_or(0);
        let makespan = per_bucket.iter().map(|b| b.makespan_ns).max().unwrap_or(0);
        self.m_inflight.set(peak as f64);
        self.m_makespan.set(makespan as f64);

        let mut indexed: Vec<(usize, CrawlOutcome)> =
            per_bucket.into_iter().flat_map(|b| b.outcomes).collect();
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(indexed.len(), monitored.len());
        for (_, o) in &indexed {
            self.m_sim_latency.record(o.sim_elapsed_ns);
        }
        indexed.into_iter().map(|(_, o)| o).collect()
    }

    /// Drain one shard's completion queue: admit crawls in canonical order
    /// up to the in-flight cap, price every network wait with the latency
    /// model, and pop completions in deterministic `(fire_time, seq)` order.
    fn run_bucket<T: Transport, E: Endpoint + ?Sized>(
        &self,
        bucket: &[(usize, &Name)],
        store: &SnapshotStore,
        tree: &RngTree,
        now: SimTime,
        resolver: &Resolver<T>,
        web: &E,
    ) -> BucketCrawl {
        struct Task<'s> {
            input_idx: usize,
            fqdn: &'s Name,
            fl: Option<CrawlInFlight<'s>>,
            /// Events scheduled so far for this task — the per-task ordinal
            /// that keys latency draws.
            ordinal: u64,
            /// Fate sampled when the pending wait was scheduled.
            pending: QueryFate,
            /// Root causal trace context when this crawl is sampled.
            trace: Option<obs::TraceCtx>,
        }

        /// Turn a finished task's machine into its [`CrawlOutcome`],
        /// emitting the trace's root span when the crawl was sampled.
        fn harvest(
            task: &mut Task<'_>,
            store: &SnapshotStore,
            outcomes: &mut Vec<(usize, CrawlOutcome)>,
        ) {
            let fl = task.fl.take().expect("harvesting an empty task");
            let sim_elapsed_ns = fl.elapsed_ns();
            let dns_elapsed_ns = fl.dns_elapsed_ns();
            let snap = fl.into_snapshot();
            if let Some(ctx) = task.trace.take() {
                // Root span: round start → completion. Queue-wait is the
                // virtual time before admission (ctx.base_ns); service is
                // the sum of priced waits — the two add up to the span
                // exactly, because a task's events are contiguous.
                obs::causal::emit(obs::CausalSpan {
                    trace: ctx.trace,
                    span_id: ctx.parent,
                    parent: None,
                    name: "crawl",
                    fqdn: task.fqdn.to_string(),
                    day: ctx.day,
                    start_ns: 0,
                    dur_ns: ctx.base_ns + sim_elapsed_ns,
                    queue_wait_ns: ctx.base_ns,
                    service_ns: sim_elapsed_ns,
                    args: Vec::new(),
                });
            }
            let change = store
                .latest(task.fqdn)
                .and_then(|p| diff_record(p, snap.clone()));
            outcomes.push((
                task.input_idx,
                CrawlOutcome {
                    snap,
                    change,
                    sim_elapsed_ns,
                    dns_elapsed_ns,
                },
            ));
        }

        let free = self.latency.is_free();
        let mut q: CompletionQueue<usize> = CompletionQueue::new();
        let mut slots: Vec<Task> = Vec::with_capacity(bucket.len().min(self.max_inflight));
        let mut outcomes: Vec<(usize, CrawlOutcome)> = Vec::with_capacity(bucket.len());
        let mut next = 0usize; // next bucket item to admit (canonical order)
        let mut inflight = 0usize;
        let mut peak_inflight = 0usize;
        let mut timeouts = 0u64;

        // Price and schedule a task's pending wait; returns false if the
        // task is already done (nothing to schedule).
        let schedule =
            |task: &mut Task, q: &mut CompletionQueue<usize>, slot: usize, timeouts: &mut u64| {
                let fl = task.fl.as_ref().expect("scheduling a harvested task");
                let Some(wait) = fl.wait() else { return false };
                let fate = if free {
                    QueryFate {
                        cost_ns: 0,
                        dropped: false,
                    }
                } else {
                    let class = match wait {
                        CrawlWait::Dns => QueryClass::Dns,
                        CrawlWait::Connect => QueryClass::Connect,
                        CrawlWait::Index | CrawlWait::Sitemap => QueryClass::Http,
                    };
                    let key = format!("net/{}/{}/{}", task.fqdn, now.0, task.ordinal);
                    self.latency
                        .sample(tree, &key, &fl.target().to_string(), class)
                };
                if fate.dropped {
                    *timeouts += 1;
                }
                task.ordinal += 1;
                task.pending = fate;
                q.schedule_in(fate.cost_ns, slot);
                true
            };

        while outcomes.len() < bucket.len() {
            // Admission in canonical order up to the in-flight cap.
            while inflight < self.max_inflight && next < bucket.len() {
                let (input_idx, fqdn) = bucket[next];
                next += 1;
                let fetch_dropped = self.failure_rate > 0.0
                    && tree
                        .rng(&format!("crawl/{fqdn}/{}", now.0))
                        .gen_bool(self.failure_rate);
                if fetch_dropped {
                    self.m_failures.inc();
                }
                let mut fl = CrawlInFlight::begin(
                    fqdn.clone(),
                    resolver,
                    store.latest(fqdn),
                    now,
                    fetch_dropped,
                );
                // Causal tracing: the sampling decision is a pure hash of
                // (fqdn, day) — no RNG stream touched, so results cannot
                // depend on it. Admission time (the queue's current
                // virtual instant) is the crawl's queue-wait.
                let mut trace = None;
                if obs::causal_enabled() {
                    let day = now.0 as i64;
                    let tid = obs::trace_id(&fqdn.to_string(), day);
                    if obs::sampled(tid) {
                        let ctx = obs::TraceCtx::root(tid, q.now().as_nanos(), day);
                        fl.set_trace(ctx);
                        trace = Some(ctx);
                    }
                }
                let slot = slots.len();
                slots.push(Task {
                    input_idx,
                    fqdn,
                    fl: Some(fl),
                    ordinal: 0,
                    pending: QueryFate {
                        cost_ns: 0,
                        dropped: false,
                    },
                    trace,
                });
                if schedule(&mut slots[slot], &mut q, slot, &mut timeouts) {
                    inflight += 1;
                    peak_inflight = peak_inflight.max(inflight);
                } else {
                    // Done at begin (DNS cache hit straight to a negative
                    // answer): harvest without ever entering the queue.
                    harvest(&mut slots[slot], store, &mut outcomes);
                }
            }
            // Drain the next completion.
            let Some((_at, slot)) = q.pop() else {
                debug_assert_eq!(outcomes.len(), bucket.len(), "queue dry with work left");
                break;
            };
            let task = &mut slots[slot];
            let fate = task.pending;
            task.fl
                .as_mut()
                .expect("completion for a harvested task")
                .step(resolver, web, fate.dropped, fate.cost_ns);
            if !schedule(task, &mut q, slot, &mut timeouts) {
                harvest(task, store, &mut outcomes);
                inflight -= 1;
            }
        }

        self.m_timeouts.add(timeouts);
        // Defensive: worker threads exit per round (their thread-local
        // buffers flush on drop), but flush explicitly so spans survive any
        // future executor that reuses threads.
        obs::causal::flush_thread();
        BucketCrawl {
            outcomes,
            peak_inflight: peak_inflight as u64,
            makespan_ns: q.now().as_nanos(),
        }
    }

    fn crawl_one<T: Transport, E: Endpoint + ?Sized>(
        &self,
        fqdn: &Name,
        resolver: &Resolver<T>,
        web: &E,
        store: &SnapshotStore,
        tree: &RngTree,
        now: SimTime,
    ) -> CrawlOutcome {
        let prev = store.latest(fqdn);
        let snap = if self.failure_rate > 0.0
            && tree
                .rng(&format!("crawl/{fqdn}/{}", now.0))
                .gen_bool(self.failure_rate)
        {
            // Transient fetch failure: DNS still resolves, the HTTP fetch is
            // dropped. Keyed by (fqdn, day) so the flake pattern is identical
            // under any partition of the work.
            self.m_failures.inc();
            let outcome = resolver.resolve_a(fqdn, now);
            let cname = outcome.final_cname().cloned();
            let mut s = Snapshot::unreachable(fqdn.clone(), now, outcome.rcode, cname);
            s.ip = outcome.addresses.first().copied();
            s
        } else {
            Crawler::sample(fqdn, resolver, web, prev, now)
        };
        let change = prev.and_then(|p| diff_record(p, snap.clone()));
        CrawlOutcome {
            snap,
            change,
            sim_elapsed_ns: 0,
            dns_elapsed_ns: 0,
        }
    }
}

/// One shard event loop's products: outcomes tagged with input indices plus
/// the loop's telemetry.
struct BucketCrawl {
    outcomes: Vec<(usize, CrawlOutcome)>,
    peak_inflight: u64,
    makespan_ns: u64,
}

/// The weekly-crawl stage: wraps [`CrawlExecutor`] and leaves the round's
/// outcomes in [`RunState::crawl_batch`] for the diff stage.
pub struct CrawlStage {
    exec: CrawlExecutor,
}

impl CrawlStage {
    pub fn new(threads: usize, failure_rate: f64) -> Self {
        CrawlStage {
            exec: CrawlExecutor::new(threads, failure_rate),
        }
    }

    /// Select the latency model (builder-style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.exec = self.exec.with_latency(latency);
        self
    }

    /// Cap concurrently in-flight crawls per shard event loop.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.exec = self.exec.with_max_inflight(max_inflight);
        self
    }
}

impl Stage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }

    fn weekly(&mut self, rs: &mut RunState, now: SimTime) {
        let RunState {
            world,
            store,
            monitored,
            tree,
            crawl_batch,
            round_latency,
            ..
        } = rs;
        let world = &*world;
        *crawl_batch = self.exec.run(
            monitored,
            store,
            tree,
            now,
            &|| Resolver::new(world.dns()),
            &|| world.web(),
        );
        // Round telemetry: DNS resolution-latency percentiles. Out-of-band —
        // never serialized with results (see `report::RoundLatency`).
        let mut samples: Vec<u64> = crawl_batch.iter().map(|o| o.dns_elapsed_ns).collect();
        if let Some(r) = crate::report::RoundLatency::from_samples(now, &mut samples) {
            round_latency.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent};
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let mut zs = ZoneSet::new();
        let mut zone = Zone::new("acme.com".parse().unwrap());
        let mut monitored = Vec::new();
        for i in 0..n {
            let id = platform
                .register(
                    ServiceId::AzureWebApp,
                    Some(&format!("site-{i}")),
                    None,
                    AccountId::Org(1),
                    SimTime(0),
                    &mut rng,
                )
                .unwrap();
            platform.set_content(id, SiteContent::placeholder(&format!("Site {i}")));
            let fqdn: Name = format!("s{i}.acme.com").parse().unwrap();
            platform.bind_custom_domain(id, fqdn.clone());
            zone.add(ResourceRecord::new(
                fqdn.clone(),
                300,
                RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
            ));
            monitored.push(fqdn);
        }
        zs.insert(zone);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        (platform, zs, monitored)
    }

    #[test]
    fn parallel_matches_serial() {
        let (platform, zs, monitored) = build(23);
        let store = SnapshotStore::with_shards(4);
        let tree = RngTree::new(9);
        // Nonzero failure rate so the RNG-keyed path is exercised too.
        let serial = CrawlExecutor::new(1, 0.1).run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(Authority::new(zs.clone())),
            &|| &platform,
        );
        for threads in [2, 3, 8] {
            let par = CrawlExecutor::new(threads, 0.1).run(
                &monitored,
                &store,
                &tree,
                SimTime(7),
                &|| Resolver::new(Authority::new(zs.clone())),
                &|| &platform,
            );
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.snap, b.snap, "threads={threads}");
            }
        }
    }

    #[test]
    fn failure_model_off_by_default() {
        let (platform, zs, monitored) = build(5);
        let store = SnapshotStore::new();
        let tree = RngTree::new(9);
        let out = CrawlExecutor::new(1, 0.0).run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(Authority::new(zs.clone())),
            &|| &platform,
        );
        assert!(out.iter().all(|o| o.snap.is_serving()));
        assert!(out.iter().all(|o| o.change.is_none()));
    }
}
