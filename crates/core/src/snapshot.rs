//! Site snapshots — the unit of longitudinal observation (§3.2).
//!
//! A [`Snapshot`] captures what one weekly crawl of one FQDN saw: the DNS
//! state, the HTTP outcome, and content features. Full HTML is retained only
//! on *change* (the real system also stores samples, not every fetch — the
//! study kept 54,325 abused index files out of millions of fetches).

use contentgen::{extract, lang};
use dns::{Name, Rcode};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One observation of one FQDN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub fqdn: Name,
    pub day: SimTime,
    pub rcode: Rcode,
    pub cname_target: Option<Name>,
    pub ip: Option<Ipv4Addr>,
    /// `None` = no HTTP response at all (connection failed / no address).
    pub http_status: Option<u16>,
    /// FNV hash of the served index body (cheap change detector).
    pub index_hash: u64,
    pub index_size: u32,
    pub title: Option<String>,
    /// BCP47-ish tag from content language detection.
    pub language: Option<String>,
    /// Top content keywords (extracted lazily, only when content changed).
    pub keywords: Vec<String>,
    pub meta_keywords: Vec<String>,
    pub generator: Option<String>,
    /// Advertised sitemap size in bytes (`Content-Length` of /sitemap.xml).
    pub sitemap_bytes: Option<u64>,
    pub script_srcs: Vec<String>,
    /// Tagged §6 identifiers found on the page.
    pub identifiers: Vec<String>,
    /// Retained HTML (only populated for changed/flagged snapshots).
    pub html: Option<String>,
}

impl Snapshot {
    /// An "unreachable" snapshot (NXDOMAIN / no response).
    pub fn unreachable(fqdn: Name, day: SimTime, rcode: Rcode, cname: Option<Name>) -> Self {
        Snapshot {
            fqdn,
            day,
            rcode,
            cname_target: cname,
            ip: None,
            http_status: None,
            index_hash: 0,
            index_size: 0,
            title: None,
            language: None,
            keywords: Vec::new(),
            meta_keywords: Vec::new(),
            generator: None,
            sitemap_bytes: None,
            script_srcs: Vec::new(),
            identifiers: Vec::new(),
            html: None,
        }
    }

    /// Populate content features from an HTML body (the expensive path, run
    /// only when the body hash differs from the previous snapshot).
    pub fn ingest_content(&mut self, html: &str, keep_html: bool) {
        self.index_size = html.len() as u32;
        self.title = extract::title(html);
        self.language = lang::detect(&extract::visible_text_chars(html)).map(|l| l.tag().into());
        self.keywords = crate::keywords::extract_keywords(html, 10);
        self.meta_keywords = extract::meta_keywords(html);
        self.generator = extract::generator(html);
        self.script_srcs = extract::script_srcs(html);
        self.identifiers = extract::identifiers(html).tagged();
        if keep_html {
            self.html = Some(html.to_string());
        }
    }

    /// Carry content features forward from the previous snapshot when the
    /// body hash is unchanged (the lazy-extraction fast path must not erase
    /// what we know about the site).
    pub fn inherit_features(&mut self, prev: &Snapshot) {
        self.title = prev.title.clone();
        self.language = prev.language.clone();
        self.keywords = prev.keywords.clone();
        self.meta_keywords = prev.meta_keywords.clone();
        self.generator = prev.generator.clone();
        self.sitemap_bytes = prev.sitemap_bytes;
        self.script_srcs = prev.script_srcs.clone();
        self.identifiers = prev.identifiers.clone();
    }

    /// Is the FQDN serving content at all?
    pub fn is_serving(&self) -> bool {
        matches!(self.http_status, Some(s) if s < 500)
    }

    /// Approximate resident bytes of this snapshot: the struct itself plus
    /// every owned heap allocation (string capacities approximated by
    /// length). This is the per-snapshot term of the paper-scale
    /// `pipeline.bytes_per_fqdn` budget; interned label text is accounted
    /// once per process by the interner, not here.
    pub fn approx_bytes(&self) -> usize {
        fn s(v: &Option<String>) -> usize {
            v.as_ref().map_or(0, String::len)
        }
        fn vs(v: &[String]) -> usize {
            v.iter()
                .map(|x| std::mem::size_of::<String>() + x.len())
                .sum()
        }
        std::mem::size_of::<Snapshot>()
            + self.fqdn.heap_bytes()
            + self.cname_target.as_ref().map_or(0, Name::heap_bytes)
            + s(&self.title)
            + s(&self.language)
            + s(&self.generator)
            + s(&self.html)
            + vs(&self.keywords)
            + vs(&self.meta_keywords)
            + vs(&self.script_srcs)
            + vs(&self.identifiers)
    }
}

/// FNV-1a body hash.
pub fn body_hash(body: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in body {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Default shard count for [`SnapshotStore`]. Sixteen keeps per-shard maps
/// small at production scale while staying cheap at test scale.
pub const DEFAULT_SHARDS: usize = 16;

/// The pipeline's one work-partitioning hash: FNV-1a over an FQDN's labels,
/// reduced modulo `n`. A fixed hash — not the std `RandomState` — so the
/// partition is identical across runs, processes and thread counts. Every
/// shard-parallel pass (crawl, Algorithm-1 classification, the retrospective
/// signature matching and clustering) buckets by this same function.
pub fn fqdn_shard(fqdn: &Name, n: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for label in fqdn.labels() {
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0xff; // label separator, so ["ab","c"] != ["a","bc"]
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % n.max(1) as u64) as usize
}

/// Latest-snapshot store, sharded by a stable hash of the FQDN.
///
/// Sharding serves the parallel monitoring pipeline: the crawl executor
/// partitions work by [`SnapshotStore::shard_of`], so every worker thread
/// touches a disjoint slice of the keyspace, and [`SnapshotStore::iter`]
/// yields snapshots in canonical FQDN order — never raw `HashMap` order — so
/// downstream passes (the §3.2 benign-corpus sample in particular) are
/// byte-deterministic for any shard or thread count.
#[derive(Debug)]
pub struct SnapshotStore {
    shards: Vec<HashMap<Name, Snapshot>>,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl SnapshotStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A store with a specific shard count (minimum 1).
    pub fn with_shards(n: usize) -> Self {
        SnapshotStore {
            shards: (0..n.max(1)).map(|_| HashMap::new()).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an FQDN lives in — [`fqdn_shard`] over this store's shard
    /// count.
    pub fn shard_of(&self, fqdn: &Name) -> usize {
        fqdn_shard(fqdn, self.shards.len())
    }

    pub fn latest(&self, fqdn: &Name) -> Option<&Snapshot> {
        self.shards[self.shard_of(fqdn)].get(fqdn)
    }

    /// Insert a new snapshot, returning the previous one (for diffing).
    pub fn insert(&mut self, snap: Snapshot) -> Option<Snapshot> {
        let shard = self.shard_of(&snap.fqdn);
        self.shards[shard].insert(snap.fqdn.clone(), snap)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Approximate resident bytes of the whole store: every snapshot's
    /// [`Snapshot::approx_bytes`] plus HashMap bucket overhead (key + value
    /// slot per capacity unit, 7/8 load factor approximated by counting
    /// capacity). Feeds the `pipeline.bytes_per_fqdn` gauge.
    pub fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<(Name, Snapshot)>() + std::mem::size_of::<u64>();
        self.shards
            .iter()
            .map(|m| {
                m.capacity() * slot
                    + m.iter()
                        .map(|(k, v)| {
                            k.heap_bytes() + v.approx_bytes() - std::mem::size_of::<Snapshot>()
                        })
                        .sum::<usize>()
            })
            .sum()
    }

    /// All latest snapshots in canonical (sorted-FQDN) order. O(n log n),
    /// paid once by the retrospective pass — the price of determinism.
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> {
        let mut all: Vec<&Snapshot> = self.shards.iter().flat_map(HashMap::values).collect();
        all.sort_unstable_by(|a, b| a.fqdn.cmp(&b.fqdn));
        all.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_extracts_features() {
        let mut s = Snapshot::unreachable(
            "x.example.com".parse().unwrap(),
            SimTime(0),
            Rcode::NoError,
            None,
        );
        s.http_status = Some(200);
        s.ingest_content(
            "<html><head><title>SLOT GACOR</title>\
             <meta name=\"keywords\" content=\"slot, judi\"></head>\
             <body>daftar situs judi slot online slot</body></html>",
            true,
        );
        assert_eq!(s.title.as_deref(), Some("SLOT GACOR"));
        assert_eq!(s.language.as_deref(), Some("id"));
        assert!(s.keywords.contains(&"slot".to_string()));
        assert_eq!(s.meta_keywords, vec!["slot", "judi"]);
        assert!(s.html.is_some());
        assert!(s.is_serving());
    }

    #[test]
    fn unreachable_defaults() {
        let s = Snapshot::unreachable(
            "gone.example.com".parse().unwrap(),
            SimTime(5),
            Rcode::NxDomain,
            Some("gone.azurewebsites.net".parse().unwrap()),
        );
        assert!(!s.is_serving());
        assert_eq!(s.http_status, None);
        assert!(s.cname_target.is_some());
    }

    #[test]
    fn store_returns_previous() {
        let mut store = SnapshotStore::new();
        let n: Name = "a.b.com".parse().unwrap();
        let s1 = Snapshot::unreachable(n.clone(), SimTime(0), Rcode::NoError, None);
        assert!(store.insert(s1.clone()).is_none());
        let s2 = Snapshot::unreachable(n.clone(), SimTime(7), Rcode::NxDomain, None);
        let prev = store.insert(s2).unwrap();
        assert_eq!(prev.day, SimTime(0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.latest(&n).unwrap().day, SimTime(7));
    }

    #[test]
    fn body_hash_distinguishes() {
        assert_ne!(body_hash(b"a"), body_hash(b"b"));
        assert_eq!(body_hash(b"same"), body_hash(b"same"));
    }

    #[test]
    fn store_iterates_in_canonical_order() {
        let mut store = SnapshotStore::with_shards(4);
        for host in ["z.b.com", "a.b.com", "m.b.com", "k.a.com"] {
            store.insert(Snapshot::unreachable(
                host.parse().unwrap(),
                SimTime(0),
                Rcode::NoError,
                None,
            ));
        }
        let order: Vec<String> = store.iter().map(|s| s.fqdn.to_string()).collect();
        let mut sorted = order.clone();
        sorted.sort_by(|a, b| {
            let na: Name = a.parse().unwrap();
            let nb: Name = b.parse().unwrap();
            na.cmp(&nb)
        });
        assert_eq!(order, sorted);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        let store = SnapshotStore::with_shards(8);
        let n: Name = "host.example.com".parse().unwrap();
        let s = store.shard_of(&n);
        assert!(s < 8);
        assert_eq!(s, store.shard_of(&"HOST.example.com".parse().unwrap()));
        // Different shard counts still cover every name.
        let one = SnapshotStore::with_shards(1);
        assert_eq!(one.shard_of(&n), 0);
    }
}
