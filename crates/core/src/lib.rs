//! # dangling-core — the paper's methodology, end to end
//!
//! Everything the authors built, runnable against the simulated world:
//!
//! - [`collect`] — Algorithm 1 (cloud-pointing FQDN collection) and the
//!   growing feed of §3.1,
//! - [`monitor`] — the weekly snapshot crawler (≤2 HTTP requests per FQDN
//!   per round, per the paper's ethics constraints),
//! - [`diff`] — snapshot comparison: DNS, HTTP status, sitemap (new or
//!   ≥100 KB growth), language, content-hash changes,
//! - [`keywords`] — keyword extraction for signatures and Tables 1/5,
//! - [`signature`] — signature derivation from clustered contemporaneous
//!   changes, validation against a benign corpus, and the matching engine
//!   behind Figure 2,
//! - [`benign`] — the registrar-diversity rule-out of Figure 10,
//! - [`classify`] — abuse topic + SEO-technique classification (Figure 3,
//!   §5.2.1),
//! - [`capability`] — the Table 4 attacker-capability model and its cookie
//!   access consequences (§5.1, §5.5),
//! - [`lifespan`] — hijack-duration analysis (Figures 15/16),
//! - [`certs`] — CT history analysis, anomaly windows, CAA census
//!   (Figure 20, §5.6),
//! - [`infra`] — identifier extraction and infrastructure clustering
//!   (Figures 21/22/26/27/28),
//! - [`world`] + [`scenario`] — the simulated world and the longitudinal
//!   driver that runs organizations, attackers and the pipeline over
//!   2015–2023 and assembles a [`report::StudyReport`],
//! - [`pipeline`] — the staged monitoring pipeline behind [`scenario`]:
//!   world advancement, Algorithm-1 collection, the shard-parallel weekly
//!   crawl, diff/record, and the retrospective signature pass.

pub mod benign;
pub mod capability;
pub mod certs;
pub mod classify;
pub mod collect;
pub mod diff;
pub mod infra;
pub mod keywords;
pub mod lifespan;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod signature;
pub mod snapshot;
pub mod world;

pub use pipeline::persist::{
    compact_state_dir, migrate_state_dir, MigrateStats, PersistError, PersistOptions, OBS_FORMAT,
};
pub use pipeline::{
    bytes_per_fqdn_of, ProvisionalCluster, ProvisionalRound, ProvisionalSignature,
    ProvisionalVerdict, RoundSink, RoundView, BYTES_PER_FQDN_BUDGET,
};
pub use report::{StudyReport, StudyResults};
pub use scenario::{Scenario, ScenarioConfig};
pub use world::{HijackTruth, World};
