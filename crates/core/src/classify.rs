//! Abuse content classification (Figure 3, §5.2.1).
//!
//! Topic classification mirrors the paper's keyword approach; SEO-technique
//! detection applies the §5.2.1 heuristics to the retained index HTML and
//! sitemap metadata of an abused snapshot.

use crate::snapshot::Snapshot;
use contentgen::abuse::{AbuseTopic, SeoTechnique};
use contentgen::corpus;
use serde::{Deserialize, Serialize};

/// Classified topic or fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Topic {
    Abuse(AbuseTopic),
    /// No abuse vocabulary hit.
    Unknown,
}

impl Topic {
    pub fn as_str(&self) -> &'static str {
        match self {
            Topic::Abuse(t) => t.as_str(),
            Topic::Unknown => "Unknown",
        }
    }
}

/// Count topic-vocabulary hits in a keyword list.
fn score(keywords: &[String], vocab: &[&str]) -> usize {
    keywords
        .iter()
        .filter(|k| vocab.contains(&k.as_str()))
        .count()
}

/// Classify the topic of an abused snapshot from its extracted keywords.
pub fn classify_topic(snap: &Snapshot) -> Topic {
    let mut kws = snap.keywords.clone();
    kws.extend(snap.meta_keywords.iter().cloned());
    let scores = [
        (AbuseTopic::Gambling, score(&kws, corpus::GAMBLING_KEYWORDS)),
        (AbuseTopic::Adult, score(&kws, corpus::ADULT_KEYWORDS)),
        (AbuseTopic::Pharma, score(&kws, corpus::PHARMA_KEYWORDS)),
        (AbuseTopic::Shopping, score(&kws, corpus::SHOPPING_KEYWORDS)),
    ];
    let best = scores.iter().max_by_key(|(_, s)| *s).unwrap();
    if best.1 == 0 {
        Topic::Unknown
    } else {
        Topic::Abuse(best.0)
    }
}

/// Detect the SEO/abuse techniques visible from the crawled artifacts.
pub fn detect_techniques(snap: &Snapshot) -> Vec<SeoTechnique> {
    let mut out = Vec::new();
    let html = snap.html.as_deref().unwrap_or("");
    // Click-jacking: early click interception (§5.2.2).
    if html.contains("addEventListener('click'") && html.contains("preventDefault") {
        out.push(SeoTechnique::ClickJacking);
    }
    // Japanese Keyword Hack: Japanese content on a non-Japanese victim
    // domain plus a mass upload (§5.2.1 "Cloaking").
    let mass_upload = snap.sitemap_bytes.unwrap_or(0) >= crate::signature::HUGE_SITEMAP_BYTES;
    if (snap.language.as_deref() == Some("ja")
        || corpus::JAPANESE_FRAGMENTS.iter().any(|f| html.contains(f)))
        && mass_upload
    {
        out.push(SeoTechnique::JapaneseKeywordHack);
    }
    // Private link network: page dominated by outbound keyword-anchored
    // links to other apex domains.
    let hrefs = contentgen::extract::hrefs(html);
    let outbound = hrefs
        .iter()
        .filter(|h| h.starts_with("http") && !h.contains("wa.me") && !h.contains("t.me"))
        .count();
    if outbound >= 5 {
        out.push(SeoTechnique::LinkNetwork);
    }
    // Doorway: referral-monetized landing (the ref-code link of §5.3).
    if hrefs.iter().any(|h| h.contains("ref=")) {
        out.push(SeoTechnique::DoorwayPages);
    }
    // Keyword stuffing: the keywords meta tag (41% of analyzed pages).
    if !snap.meta_keywords.is_empty() {
        out.push(SeoTechnique::KeywordStuffing);
    }
    out
}

/// Is the abuse some form of (blackhat) SEO? The paper finds 75% of samples
/// qualify.
pub fn is_seo(techniques: &[SeoTechnique]) -> bool {
    techniques.iter().any(|t| {
        matches!(
            t,
            SeoTechnique::DoorwayPages
                | SeoTechnique::JapaneseKeywordHack
                | SeoTechnique::LinkNetwork
                | SeoTechnique::KeywordStuffing
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::Rcode;
    use simcore::SimTime;

    fn snap_with(kws: &[&str], html: &str, sitemap: Option<u64>, lang: Option<&str>) -> Snapshot {
        let mut s =
            Snapshot::unreachable("x.v.com".parse().unwrap(), SimTime(0), Rcode::NoError, None);
        s.http_status = Some(200);
        s.keywords = kws.iter().map(|k| k.to_string()).collect();
        s.html = Some(html.to_string());
        s.sitemap_bytes = sitemap;
        s.language = lang.map(str::to_string);
        s
    }

    #[test]
    fn gambling_topic() {
        let s = snap_with(&["slot", "judi", "gacor"], "", None, Some("id"));
        assert_eq!(classify_topic(&s), Topic::Abuse(AbuseTopic::Gambling));
    }

    #[test]
    fn adult_topic_and_unknown() {
        let s = snap_with(&["sex", "porn"], "", None, None);
        assert_eq!(classify_topic(&s), Topic::Abuse(AbuseTopic::Adult));
        let u = snap_with(&["banking", "quarterly"], "", None, None);
        assert_eq!(classify_topic(&u), Topic::Unknown);
        assert_eq!(u_topic_str(&u), "Unknown");
    }

    fn u_topic_str(s: &Snapshot) -> &'static str {
        classify_topic(s).as_str()
    }

    #[test]
    fn meta_keywords_count_for_topic() {
        let mut s = snap_with(&[], "", None, None);
        s.meta_keywords = vec!["viagra".into(), "pharmacy".into()];
        assert_eq!(classify_topic(&s), Topic::Abuse(AbuseTopic::Pharma));
    }

    #[test]
    fn clickjacking_detected() {
        let html =
            "<script>document.addEventListener('click',function(e){e.preventDefault();});</script>";
        let s = snap_with(&["sex"], html, None, None);
        let t = detect_techniques(&s);
        assert!(t.contains(&SeoTechnique::ClickJacking));
        assert!(!is_seo(&[SeoTechnique::ClickJacking]));
    }

    #[test]
    fn jkh_requires_mass_upload() {
        let html = "<p>ページディレクトリ</p>";
        let without = snap_with(&[], html, Some(10_000), Some("ja"));
        assert!(!detect_techniques(&without).contains(&SeoTechnique::JapaneseKeywordHack));
        let with = snap_with(&[], html, Some(900_000), Some("ja"));
        assert!(detect_techniques(&with).contains(&SeoTechnique::JapaneseKeywordHack));
    }

    #[test]
    fn doorway_and_stuffing() {
        let html = r#"<a href="https://maxwin.example/register?ref=REF7">daftar</a>"#;
        let mut s = snap_with(&["slot"], html, None, Some("id"));
        s.meta_keywords = vec!["slot".into()];
        let t = detect_techniques(&s);
        assert!(t.contains(&SeoTechnique::DoorwayPages));
        assert!(t.contains(&SeoTechnique::KeywordStuffing));
        assert!(is_seo(&t));
    }

    #[test]
    fn link_network_detected() {
        let mut html = String::new();
        for i in 0..6 {
            html.push_str(&format!(
                "<a href=\"https://sub{i}.other{i}.com/p.html\">slot gacor</a>"
            ));
        }
        let s = snap_with(&["slot"], &html, None, None);
        assert!(detect_techniques(&s).contains(&SeoTechnique::LinkNetwork));
    }
}
