//! The weekly crawler (§3.2 / ethics §1).
//!
//! Per FQDN and round, at most two HTTP requests: the index page, and the
//! sitemap only when the index responded. DNS state is recorded either way.
//! Content features are extracted lazily — only when the body hash differs
//! from the previous snapshot — which is also how the real system avoided
//! re-analyzing terabytes of unchanged HTML.

use crate::snapshot::{body_hash, Snapshot};
use dns::resolver::Transport;
use dns::{Name, Resolver};
use httpsim::{Endpoint, Request};
use simcore::SimTime;

/// Crawler over a DNS transport and an HTTP endpoint.
pub struct Crawler;

impl Crawler {
    /// Take one observation of `fqdn`. `prev` enables the lazy feature
    /// extraction: an unchanged body inherits the previous features instead
    /// of re-parsing (and instead of losing them).
    pub fn sample<T: Transport, E: Endpoint + ?Sized>(
        fqdn: &Name,
        resolver: &Resolver<T>,
        web: &E,
        prev: Option<&Snapshot>,
        now: SimTime,
    ) -> Snapshot {
        let prev_hash = prev.map(|p| p.index_hash);
        let outcome = resolver.resolve_a(fqdn, now);
        let cname = outcome.final_cname().cloned();
        let Some(ip) = outcome.addresses.first().copied() else {
            return Snapshot::unreachable(fqdn.clone(), now, outcome.rcode, cname);
        };
        let host = fqdn.to_string();
        // Request 1: the index page.
        let resp = web.http_serve(ip, &Request::get(&host, "/"), now);
        let Some(resp) = resp else {
            let mut s = Snapshot::unreachable(fqdn.clone(), now, outcome.rcode, cname);
            s.ip = Some(ip);
            return s;
        };
        let hash = body_hash(&resp.body);
        let mut snap = Snapshot {
            fqdn: fqdn.clone(),
            day: now,
            rcode: outcome.rcode,
            cname_target: cname,
            ip: Some(ip),
            http_status: Some(resp.status.0),
            index_hash: hash,
            index_size: resp.body.len() as u32,
            title: None,
            language: None,
            keywords: Vec::new(),
            meta_keywords: Vec::new(),
            generator: None,
            sitemap_bytes: None,
            script_srcs: Vec::new(),
            identifiers: Vec::new(),
            html: None,
        };
        let changed = prev_hash != Some(hash);
        if changed && resp.status.is_success() {
            let html = String::from_utf8_lossy(&resp.body);
            snap.ingest_content(&html, true);
            // Request 2: the sitemap (only when we need to look closer).
            if let Some(sm) = web.http_serve(ip, &Request::get(&host, "/sitemap.xml"), now) {
                if sm.status.is_success() {
                    snap.sitemap_bytes = sm
                        .headers
                        .get("Content-Length")
                        .and_then(|v| v.parse().ok())
                        .or(Some(sm.body.len() as u64));
                }
            }
        } else if !changed {
            if let Some(p) = prev {
                snap.inherit_features(p);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (CloudPlatform, Resolver<Authority>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some("acme-shop"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder("ACME shop");
        content.sitemap = Some(Sitemap::synthetic(40_000, "<urlset/>".into()));
        platform.set_content(id, content);
        platform.bind_custom_domain(id, "shop.acme.com".parse().unwrap());

        let mut zs = ZoneSet::new();
        let mut z = Zone::new("acme.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.acme.com".parse().unwrap(),
            300,
            RecordData::Cname("acme-shop.azurewebsites.net".parse().unwrap()),
        ));
        zs.insert(z);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        (platform, Resolver::new(Authority::new(zs)))
    }

    #[test]
    fn samples_content_and_sitemap() {
        let (platform, resolver) = build();
        let fqdn: Name = "shop.acme.com".parse().unwrap();
        let s = Crawler::sample(&fqdn, &resolver, &platform, None, SimTime(7));
        assert_eq!(s.http_status, Some(200));
        assert!(s.title.as_deref().unwrap().contains("ACME"));
        assert_eq!(s.sitemap_bytes, Some(120 + 40_000 * 80));
        assert!(s.html.is_some());
        assert!(s.ip.is_some());
    }

    #[test]
    fn unchanged_body_skips_extraction() {
        let (platform, resolver) = build();
        let fqdn: Name = "shop.acme.com".parse().unwrap();
        let first = Crawler::sample(&fqdn, &resolver, &platform, None, SimTime(7));
        let second = Crawler::sample(&fqdn, &resolver, &platform, Some(&first), SimTime(14));
        assert_eq!(second.index_hash, first.index_hash);
        // Lazy path: no re-extraction and no second request, but features
        // are inherited so downstream consumers never see an empty view.
        assert_eq!(second.title, first.title);
        assert_eq!(second.sitemap_bytes, first.sitemap_bytes);
        assert!(second.html.is_none());
    }

    #[test]
    fn dangling_fqdn_yields_unreachable() {
        let (mut platform, _) = build();
        // Release the resource: the CNAME now dangles.
        let id = platform
            .resource_by_host(&"acme-shop.azurewebsites.net".parse().unwrap())
            .unwrap()
            .id;
        platform.release(id, SimTime(8));
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("acme.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.acme.com".parse().unwrap(),
            300,
            RecordData::Cname("acme-shop.azurewebsites.net".parse().unwrap()),
        ));
        zs.insert(z);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        let resolver = Resolver::new(Authority::new(zs));
        let s = Crawler::sample(
            &"shop.acme.com".parse().unwrap(),
            &resolver,
            &platform,
            None,
            SimTime(9),
        );
        assert!(!s.is_serving());
        assert_eq!(s.http_status, None);
        assert!(s.cname_target.is_some());
    }

    #[test]
    fn platform_404_is_a_response() {
        // A Host the front end does not know still yields an HTTP response
        // (the provider error page) — §2's point about application-layer
        // liveness.
        let (platform, resolver) = build();
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("other.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "x.other.com".parse().unwrap(),
            300,
            RecordData::A(
                platform
                    .resource_by_host(&"acme-shop.azurewebsites.net".parse().unwrap())
                    .unwrap()
                    .ip,
            ),
        ));
        zs.insert(z);
        let r2 = Resolver::new(Authority::new(zs));
        let _ = resolver;
        let s = Crawler::sample(
            &"x.other.com".parse().unwrap(),
            &r2,
            &platform,
            None,
            SimTime(0),
        );
        assert_eq!(s.http_status, Some(404));
        assert!(s.is_serving()); // responded, just negatively
    }
}
