//! The weekly crawler (§3.2 / ethics §1).
//!
//! Per FQDN and round, at most two HTTP requests: the index page, and the
//! sitemap only when the index responded. DNS state is recorded either way.
//! Content features are extracted lazily — only when the body hash differs
//! from the previous snapshot — which is also how the real system avoided
//! re-analyzing terabytes of unchanged HTML.

use crate::snapshot::{body_hash, Snapshot};
use dns::resolver::{ResolutionInFlight, Transport};
use dns::{Name, Resolver};
use httpsim::{Endpoint, ProbeInFlight, ProbeKind, ProbeResult, ProbeWait};
use simcore::SimTime;

/// The network operation one in-flight crawl is waiting on. The crawl
/// driver maps these onto its latency model's query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlWait {
    /// One DNS exchange of the resolution chain.
    Dns,
    /// TCP/TLS connection establishment preceding an HTTP request (both
    /// the index and sitemap fetches start with one).
    Connect,
    /// The index-page HTTP request.
    Index,
    /// The sitemap HTTP request (only when the index changed).
    Sitemap,
}

enum CrawlPhase {
    Dns(Box<ResolutionInFlight>),
    /// The index fetch, driven through the staged probe machine (connect
    /// event, then request event).
    Index {
        rcode: dns::Rcode,
        cname: Option<Name>,
        ip: std::net::Ipv4Addr,
        probe: ProbeInFlight,
    },
    /// The sitemap fetch, same staged probe machine.
    Sitemap {
        snap: Box<Snapshot>,
        probe: ProbeInFlight,
    },
    Done(Box<Snapshot>),
    /// Transient placeholder while `step` owns the real phase.
    Taken,
}

/// One crawl observation in flight: the submit/poll form of
/// [`Crawler::sample`]. At most one network operation is pending at a time
/// ([`CrawlInFlight::wait`] names it); each [`CrawlInFlight::step`]
/// completes that operation and readies the next, traversing exactly the
/// states the blocking sampler always has — DNS chain, index fetch, then
/// (only when the body changed) the sitemap fetch.
pub struct CrawlInFlight<'a> {
    fqdn: Name,
    now: SimTime,
    prev: Option<&'a Snapshot>,
    /// Transient-fetch-failure flag from the executor's flake model: DNS
    /// still resolves, but the HTTP fetch never happens.
    fetch_dropped: bool,
    phase: CrawlPhase,
    /// Simulated time consumed by the DNS portion (for resolution-latency
    /// percentiles).
    dns_elapsed_ns: u64,
    /// Total simulated time consumed so far.
    elapsed_ns: u64,
    /// Root causal trace context, when this crawl's trace is sampled.
    /// Forwarded (re-based) into each stage machine; pure telemetry.
    trace: Option<obs::TraceCtx>,
}

impl<'a> CrawlInFlight<'a> {
    /// Start crawling `fqdn`: kicks off the DNS resolution. When
    /// `fetch_dropped` is set the machine still resolves (DNS state is
    /// recorded either way) but records an unreachable snapshot instead of
    /// fetching.
    pub fn begin<T: Transport>(
        fqdn: Name,
        resolver: &Resolver<T>,
        prev: Option<&'a Snapshot>,
        now: SimTime,
        fetch_dropped: bool,
    ) -> Self {
        let fl = resolver.begin(&fqdn, now);
        CrawlInFlight {
            fqdn,
            now,
            prev,
            fetch_dropped,
            phase: CrawlPhase::Dns(Box::new(fl)),
            dns_elapsed_ns: 0,
            elapsed_ns: 0,
            trace: None,
        }
    }

    /// Attach the crawl's root causal trace context (call right after
    /// [`Self::begin`], before any step). Each stage machine then emits
    /// linked child spans — `dns.query`, `probe.connect`, `probe.request`
    /// — stamped in virtual time relative to `ctx.base_ns`.
    pub fn set_trace(&mut self, ctx: obs::TraceCtx) {
        if let CrawlPhase::Dns(fl) = &mut self.phase {
            fl.set_trace(ctx.child(obs::causal::SALT_DNS, ctx.base_ns));
        }
        self.trace = Some(ctx);
    }

    /// The operation currently pending (`None` once done).
    pub fn wait(&self) -> Option<CrawlWait> {
        match &self.phase {
            CrawlPhase::Dns(_) => Some(CrawlWait::Dns),
            CrawlPhase::Index { probe, .. } => match probe.pending() {
                Some(ProbeWait::Connect) => Some(CrawlWait::Connect),
                _ => Some(CrawlWait::Index),
            },
            CrawlPhase::Sitemap { probe, .. } => match probe.pending() {
                Some(ProbeWait::Connect) => Some(CrawlWait::Connect),
                _ => Some(CrawlWait::Sitemap),
            },
            CrawlPhase::Done(_) => None,
            CrawlPhase::Taken => unreachable!(),
        }
    }

    /// The name the pending operation is addressed to: the current DNS hop
    /// for [`CrawlWait::Dns`], the crawled FQDN itself for the HTTP phases.
    /// This is what a latency model prices the wait against.
    pub fn target(&self) -> &Name {
        match &self.phase {
            CrawlPhase::Dns(fl) => fl.pending_qname().unwrap_or(&self.fqdn),
            _ => &self.fqdn,
        }
    }

    pub fn is_done(&self) -> bool {
        matches!(self.phase, CrawlPhase::Done(_))
    }

    /// Total simulated time consumed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns
    }

    /// Simulated time the DNS chain consumed.
    pub fn dns_elapsed_ns(&self) -> u64 {
        self.dns_elapsed_ns
    }

    /// Complete the pending operation. `dropped` marks a lost DNS query
    /// (only meaningful in the [`CrawlWait::Dns`] phase — the resolver's
    /// retry budget decides what happens); `cost_ns` is the simulated time
    /// the completed wait consumed.
    pub fn step<T: Transport, E: Endpoint + ?Sized>(
        &mut self,
        resolver: &Resolver<T>,
        web: &E,
        dropped: bool,
        cost_ns: u64,
    ) {
        self.elapsed_ns += cost_ns;
        // In-flight probes step in place: routing every probe event through
        // the move-based transition below would memcpy the whole phase (the
        // probe machine plus any buffered response) twice per event. The
        // phase is only moved once the probe machine has concluded.
        match &mut self.phase {
            CrawlPhase::Index { probe, .. } | CrawlPhase::Sitemap { probe, .. } => {
                probe.step_timed(web, self.now, cost_ns);
                if !probe.is_done() {
                    return;
                }
            }
            _ => {}
        }
        let phase = std::mem::replace(&mut self.phase, CrawlPhase::Taken);
        self.phase = match phase {
            CrawlPhase::Dns(mut fl) => {
                let resp = if dropped {
                    None
                } else {
                    resolver.exchange_pending(&fl)
                };
                resolver.advance(&mut fl, resp, cost_ns);
                if !fl.is_done() {
                    CrawlPhase::Dns(fl)
                } else {
                    let outcome = resolver.conclude(*fl);
                    self.dns_elapsed_ns = outcome.sim_elapsed_ns;
                    let cname = outcome.final_cname().cloned();
                    match outcome.addresses.first().copied() {
                        None => CrawlPhase::Done(Box::new(Snapshot::unreachable(
                            self.fqdn.clone(),
                            self.now,
                            outcome.rcode,
                            cname,
                        ))),
                        Some(ip) if self.fetch_dropped => {
                            // Transient fetch failure: DNS recorded, HTTP
                            // skipped.
                            let mut s = Snapshot::unreachable(
                                self.fqdn.clone(),
                                self.now,
                                outcome.rcode,
                                cname,
                            );
                            s.ip = Some(ip);
                            CrawlPhase::Done(Box::new(s))
                        }
                        Some(ip) => {
                            // Request 1: the index page, staged as a
                            // connect event then a request event.
                            let mut probe = ProbeInFlight::new(
                                ProbeKind::Http { https: false },
                                ip,
                                self.fqdn.to_string(),
                            );
                            if let Some(tr) = &self.trace {
                                probe.set_trace(
                                    tr.child(obs::causal::SALT_INDEX, tr.base_ns + self.elapsed_ns),
                                );
                            }
                            CrawlPhase::Index {
                                rcode: outcome.rcode,
                                cname,
                                ip,
                                probe,
                            }
                        }
                    }
                }
            }
            // Reached only once the in-place fast path above has stepped
            // the probe machine to completion.
            CrawlPhase::Index {
                rcode,
                cname,
                ip,
                probe,
            } => {
                match probe.into_result() {
                    ProbeResult::HttpResponse(resp) => {
                        let hash = body_hash(&resp.body);
                        let mut snap = Snapshot {
                            fqdn: self.fqdn.clone(),
                            day: self.now,
                            rcode,
                            cname_target: cname,
                            ip: Some(ip),
                            http_status: Some(resp.status.0),
                            index_hash: hash,
                            index_size: resp.body.len() as u32,
                            title: None,
                            language: None,
                            keywords: Vec::new(),
                            meta_keywords: Vec::new(),
                            generator: None,
                            sitemap_bytes: None,
                            script_srcs: Vec::new(),
                            identifiers: Vec::new(),
                            html: None,
                        };
                        let changed = self.prev.map(|p| p.index_hash) != Some(hash);
                        if changed && resp.status.is_success() {
                            let html = String::from_utf8_lossy(&resp.body);
                            snap.ingest_content(&html, true);
                            // Request 2: the sitemap (only when we need
                            // to look closer).
                            let mut probe = ProbeInFlight::new(
                                ProbeKind::Http { https: false },
                                ip,
                                self.fqdn.to_string(),
                            )
                            .with_path("/sitemap.xml");
                            if let Some(tr) = &self.trace {
                                probe.set_trace(tr.child(
                                    obs::causal::SALT_SITEMAP,
                                    tr.base_ns + self.elapsed_ns,
                                ));
                            }
                            CrawlPhase::Sitemap {
                                snap: Box::new(snap),
                                probe,
                            }
                        } else {
                            if !changed {
                                if let Some(p) = self.prev {
                                    snap.inherit_features(p);
                                }
                            }
                            CrawlPhase::Done(Box::new(snap))
                        }
                    }
                    // No front end at the IP (ConnectionFailed; the
                    // transport-only results cannot occur for HTTP
                    // probes).
                    _ => {
                        let mut s =
                            Snapshot::unreachable(self.fqdn.clone(), self.now, rcode, cname);
                        s.ip = Some(ip);
                        CrawlPhase::Done(Box::new(s))
                    }
                }
            }
            // Reached only once the probe machine has concluded (in-place
            // fast path above).
            CrawlPhase::Sitemap { mut snap, probe } => {
                if let ProbeResult::HttpResponse(sm) = probe.into_result() {
                    if sm.status.is_success() {
                        snap.sitemap_bytes = sm
                            .headers
                            .get("Content-Length")
                            .and_then(|v| v.parse().ok())
                            .or(Some(sm.body.len() as u64));
                    }
                }
                CrawlPhase::Done(snap)
            }
            done @ CrawlPhase::Done(_) => done,
            CrawlPhase::Taken => unreachable!(),
        };
    }

    /// Harvest the snapshot of a completed crawl.
    pub fn into_snapshot(self) -> Snapshot {
        match self.phase {
            CrawlPhase::Done(snap) => *snap,
            _ => panic!("crawl still in flight"),
        }
    }
}

/// Crawler over a DNS transport and an HTTP endpoint.
pub struct Crawler;

impl Crawler {
    /// Take one observation of `fqdn`. `prev` enables the lazy feature
    /// extraction: an unchanged body inherits the previous features instead
    /// of re-parsing (and instead of losing them).
    ///
    /// Thin blocking driver of [`CrawlInFlight`]: every wait completes
    /// instantly, which is exactly the schedule the event-driven crawl
    /// produces under the zero-latency profile.
    pub fn sample<T: Transport, E: Endpoint + ?Sized>(
        fqdn: &Name,
        resolver: &Resolver<T>,
        web: &E,
        prev: Option<&Snapshot>,
        now: SimTime,
    ) -> Snapshot {
        let mut fl = CrawlInFlight::begin(fqdn.clone(), resolver, prev, now, false);
        while !fl.is_done() {
            fl.step(resolver, web, false, 0);
        }
        fl.into_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (CloudPlatform, Resolver<Authority>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some("acme-shop"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder("ACME shop");
        content.sitemap = Some(Sitemap::synthetic(40_000, "<urlset/>".into()));
        platform.set_content(id, content);
        platform.bind_custom_domain(id, "shop.acme.com".parse().unwrap());

        let mut zs = ZoneSet::new();
        let mut z = Zone::new("acme.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.acme.com".parse().unwrap(),
            300,
            RecordData::Cname("acme-shop.azurewebsites.net".parse().unwrap()),
        ));
        zs.insert(z);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        (platform, Resolver::new(Authority::new(zs)))
    }

    #[test]
    fn samples_content_and_sitemap() {
        let (platform, resolver) = build();
        let fqdn: Name = "shop.acme.com".parse().unwrap();
        let s = Crawler::sample(&fqdn, &resolver, &platform, None, SimTime(7));
        assert_eq!(s.http_status, Some(200));
        assert!(s.title.as_deref().unwrap().contains("ACME"));
        assert_eq!(s.sitemap_bytes, Some(120 + 40_000 * 80));
        assert!(s.html.is_some());
        assert!(s.ip.is_some());
    }

    #[test]
    fn unchanged_body_skips_extraction() {
        let (platform, resolver) = build();
        let fqdn: Name = "shop.acme.com".parse().unwrap();
        let first = Crawler::sample(&fqdn, &resolver, &platform, None, SimTime(7));
        let second = Crawler::sample(&fqdn, &resolver, &platform, Some(&first), SimTime(14));
        assert_eq!(second.index_hash, first.index_hash);
        // Lazy path: no re-extraction and no second request, but features
        // are inherited so downstream consumers never see an empty view.
        assert_eq!(second.title, first.title);
        assert_eq!(second.sitemap_bytes, first.sitemap_bytes);
        assert!(second.html.is_none());
    }

    #[test]
    fn dangling_fqdn_yields_unreachable() {
        let (mut platform, _) = build();
        // Release the resource: the CNAME now dangles.
        let id = platform
            .resource_by_host(&"acme-shop.azurewebsites.net".parse().unwrap())
            .unwrap()
            .id;
        platform.release(id, SimTime(8));
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("acme.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.acme.com".parse().unwrap(),
            300,
            RecordData::Cname("acme-shop.azurewebsites.net".parse().unwrap()),
        ));
        zs.insert(z);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        let resolver = Resolver::new(Authority::new(zs));
        let s = Crawler::sample(
            &"shop.acme.com".parse().unwrap(),
            &resolver,
            &platform,
            None,
            SimTime(9),
        );
        assert!(!s.is_serving());
        assert_eq!(s.http_status, None);
        assert!(s.cname_target.is_some());
    }

    #[test]
    fn platform_404_is_a_response() {
        // A Host the front end does not know still yields an HTTP response
        // (the provider error page) — §2's point about application-layer
        // liveness.
        let (platform, resolver) = build();
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("other.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "x.other.com".parse().unwrap(),
            300,
            RecordData::A(
                platform
                    .resource_by_host(&"acme-shop.azurewebsites.net".parse().unwrap())
                    .unwrap()
                    .ip,
            ),
        ));
        zs.insert(z);
        let r2 = Resolver::new(Authority::new(zs));
        let _ = resolver;
        let s = Crawler::sample(
            &"x.other.com".parse().unwrap(),
            &r2,
            &platform,
            None,
            SimTime(0),
        );
        assert_eq!(s.http_status, Some(404));
        assert!(s.is_serving()); // responded, just negatively
    }
}
