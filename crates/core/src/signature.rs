//! Signature derivation, validation, and matching (§3.2).
//!
//! The paper's key methodological move: changes that look alike *across
//! unrelated domains within a short time frame* are clustered, keywords and
//! structural features are extracted into signatures, each signature is
//! tested against a benign corpus (discarding any that fire), and the
//! surviving signatures classify the full monitored population.

use crate::diff::{ChangeKind, ChangeRecord};

use crate::snapshot::Snapshot;
use dns::Name;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sitemap size that indicates a mass-upload (≈5,000 pages × ~80 B/entry;
/// the paper's example signature names "> 5 MB" sitemaps, reached by the
/// heavier uploads).
pub const HUGE_SITEMAP_BYTES: u64 = 400_000;

/// A derived abuse signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    pub id: u32,
    /// All of these must appear among the snapshot's content or meta
    /// keywords.
    pub keywords: Vec<String>,
    /// Snapshot must advertise a sitemap at least this large.
    pub min_sitemap_bytes: Option<u64>,
    /// Any of these substrings must occur in a loaded script src
    /// (attacker-infrastructure indicator).
    pub script_markers: Vec<String>,
    /// Snapshot must carry extracted contact/infrastructure identifiers.
    pub requires_identifiers: bool,
    /// Number of change records the signature was derived from.
    pub source_members: usize,
    /// Distinct SLDs among the sources (≥2 by construction).
    pub source_slds: usize,
}

/// Which feature classes a signature uses — the Figure 2 axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SignatureKind {
    KeywordsOnly,
    KeywordsSitemap,
    KeywordsInfra,
    KeywordsSitemapInfra,
}

impl Signature {
    pub fn kind(&self) -> SignatureKind {
        let sitemap = self.min_sitemap_bytes.is_some();
        let infra = self.requires_identifiers || !self.script_markers.is_empty();
        match (sitemap, infra) {
            (false, false) => SignatureKind::KeywordsOnly,
            (true, false) => SignatureKind::KeywordsSitemap,
            (false, true) => SignatureKind::KeywordsInfra,
            (true, true) => SignatureKind::KeywordsSitemapInfra,
        }
    }

    /// Does this signature match a snapshot? All configured features must
    /// hold ("If the required features are present on the site, the
    /// signature matches and the domain is classified as abused").
    pub fn matches(&self, snap: &Snapshot) -> bool {
        if !snap.is_serving() {
            return false;
        }
        // Majority keyword match: at least ⌈k/2⌉ of the signature keywords
        // must appear (abuse pages share campaign vocabulary, not exact
        // keyword lists; precision is protected by benign validation).
        let needed = self.keywords.len().div_ceil(2);
        let hits = self
            .keywords
            .iter()
            .filter(|kw| {
                snap.keywords.iter().any(|k| &k == kw)
                    || snap.meta_keywords.iter().any(|k| &k == kw)
            })
            .count();
        if hits < needed.max(1) {
            return false;
        }
        if let Some(min) = self.min_sitemap_bytes {
            if snap.sitemap_bytes.unwrap_or(0) < min {
                return false;
            }
        }
        if !self.script_markers.is_empty() {
            let any = self
                .script_markers
                .iter()
                .any(|m| snap.script_srcs.iter().any(|s| s.contains(m.as_str())));
            if !any {
                return false;
            }
        }
        if self.requires_identifiers && snap.identifiers.is_empty() {
            return false;
        }
        true
    }
}

/// Is a change record *suspicious enough* to feed signature extraction?
/// (Reachability resurrection, new content, sitemap anomalies, language
/// flips — §3's observations.)
pub fn is_suspicious(rec: &ChangeRecord) -> bool {
    if !rec.after.is_serving() {
        return false;
    }
    let flagged = rec.kinds.iter().any(|k| {
        matches!(
            k,
            ChangeKind::BecameReachable
                | ChangeKind::Content
                | ChangeKind::SitemapAppeared
                | ChangeKind::SitemapGrew
                | ChangeKind::Language
        )
    });
    if !flagged {
        return false;
    }
    // Routine-update suppression: a pure content change whose vocabulary
    // largely overlaps the previous state is an ordinary site update, not a
    // takeover (the abuse *replaces* the content wholesale).
    let only_content = rec.kinds.iter().all(|k| {
        matches!(
            k,
            ChangeKind::Content | ChangeKind::HttpStatus | ChangeKind::Dns
        )
    });
    if only_content && crate::keywords::overlap(&rec.before_keywords, &rec.after.keywords) >= 0.5 {
        return false;
    }
    true
}

/// The per-member features signature emission consumes — everything
/// [`SignatureFold`] keeps of a change record, so a long-running fold never
/// retains snapshot HTML.
#[derive(Debug, Clone)]
struct GroupMember {
    /// `member_keywords` of the record (the grouping fingerprint).
    fingerprint: Vec<String>,
    sld: Option<Name>,
    sitemap_bytes: Option<u64>,
    /// Distinct script *filenames* loaded by the after-snapshot.
    script_files: std::collections::BTreeSet<String>,
    has_identifiers: bool,
}

impl GroupMember {
    fn of(rec: &ChangeRecord, fingerprint: Vec<String>) -> Self {
        let mut script_files = std::collections::BTreeSet::new();
        for src in &rec.after.script_srcs {
            if let Some(fname) = src.rsplit('/').next() {
                script_files.insert(fname.to_string());
            }
        }
        GroupMember {
            fingerprint,
            sld: rec.fqdn.sld(),
            sitemap_bytes: rec.after.sitemap_bytes,
            script_files,
            has_identifiers: !rec.after.identifiers.is_empty(),
        }
    }
}

/// The greedy signature-grouping pass as an explicit *prefix-consistent
/// fold*: push suspicious change records in `(day, fqdn)` order and the
/// internal group state — and therefore [`SignatureFold::signatures`] — is
/// at every point exactly what [`derive_signatures`] would compute over the
/// records pushed so far.
///
/// Grouping is greedy: a record joins the first existing group whose seed
/// fingerprint overlaps its own by ≥ 0.5 (overlap coefficient), otherwise it
/// seeds a new group. Greedy placement is order-defined, which is precisely
/// why it streams: the pipeline feeds rounds in day order (fqdn-sorted
/// within a round), reproducing the batch pass's canonical sort, so no
/// record ever has to be re-placed. The incremental retro stage
/// (`core::pipeline::IncrementalRetro`) leans on two further properties:
/// the fold is `Clone` (a resume snapshot continues identically) and
/// rebuilding it from the same record sequence is state-identical (replay).
#[derive(Debug, Clone, Default)]
pub struct SignatureFold {
    seeds: Vec<Vec<String>>,
    groups: Vec<Vec<GroupMember>>,
    records: usize,
}

impl SignatureFold {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one suspicious record into the running groups. The caller is
    /// responsible for ordering (`(day, fqdn)` ascending) and for the
    /// [`is_suspicious`] filter; records with an empty fingerprint are
    /// ignored, exactly as the batch pass skips them.
    pub fn push(&mut self, rec: &ChangeRecord) {
        let fingerprint = member_keywords(rec);
        if fingerprint.is_empty() {
            return;
        }
        self.records += 1;
        for (gi, seed) in self.seeds.iter().enumerate() {
            if crate::keywords::overlap(seed, &fingerprint) >= 0.5 {
                self.groups[gi].push(GroupMember::of(rec, fingerprint));
                return;
            }
        }
        self.seeds.push(fingerprint.clone());
        self.groups.push(vec![GroupMember::of(rec, fingerprint)]);
    }

    /// Records folded so far (after fingerprint filtering).
    pub fn len(&self) -> usize {
        self.records
    }

    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Groups formed so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Emit the signatures of the current groups — for the same pushed
    /// sequence, byte-identical to what [`derive_signatures`] returns.
    pub fn signatures(&self, min_slds: usize) -> Vec<Signature> {
        let mut signatures = Vec::new();
        for members in &self.groups {
            let slds: std::collections::BTreeSet<&Name> =
                members.iter().filter_map(|m| m.sld.as_ref()).collect();
            if slds.len() < min_slds {
                continue;
            }
            // Signature keywords: the 2–3 terms with the best member coverage
            // (paper: 2.72 keywords per signature on average). Prefer terms on
            // ≥80% of members; fall back to ≥60% for heterogeneous groups.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for m in members.iter() {
                for k in &m.fingerprint {
                    *counts.entry(k.as_str()).or_insert(0) += 1;
                }
            }
            let pick = |min_cover: f64| -> Vec<String> {
                let threshold = (members.len() as f64 * min_cover).ceil() as usize;
                let mut v: Vec<(&str, usize)> = counts
                    .iter()
                    .filter(|(_, c)| **c >= threshold)
                    .map(|(k, c)| (*k, *c))
                    .collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
                v.truncate(2);
                v.into_iter().map(|(k, _)| k.to_string()).collect()
            };
            let mut common = pick(0.8);
            if common.len() < 2 {
                common = pick(0.6);
            }
            if common.is_empty() {
                continue;
            }
            // Sitemap feature when most members carry a mass upload.
            let huge = members
                .iter()
                .filter(|m| m.sitemap_bytes.unwrap_or(0) >= HUGE_SITEMAP_BYTES)
                .count();
            let min_sitemap_bytes = (huge * 2 >= members.len()).then_some(HUGE_SITEMAP_BYTES);
            // Infra markers: script filenames shared by at least two members.
            let mut marker_counts: HashMap<&str, usize> = HashMap::new();
            for m in members.iter() {
                for f in &m.script_files {
                    *marker_counts.entry(f.as_str()).or_insert(0) += 1;
                }
            }
            let mut script_markers: Vec<String> = marker_counts
                .into_iter()
                .filter(|(_, c)| *c >= 2 && *c * 2 >= members.len())
                .map(|(f, _)| f.to_string())
                .collect();
            script_markers.sort();
            // Identifier requirement only when every member carries
            // identifiers (otherwise it would suppress legitimate matches).
            let requires_identifiers = members.iter().all(|m| m.has_identifiers);
            // Emit a plain keywords signature plus (when structural features
            // exist) a stricter enhanced variant. The benign-corpus
            // validation that follows discards whichever of the two is
            // unsafe — exactly the "validate, then discard those that fire"
            // loop of §3.2. Figure 2's mix of keyword-only and combined
            // signatures emerges from which variants survive.
            signatures.push(Signature {
                id: signatures.len() as u32,
                keywords: common.clone(),
                min_sitemap_bytes: None,
                script_markers: Vec::new(),
                requires_identifiers: false,
                source_members: members.len(),
                source_slds: slds.len(),
            });
            if min_sitemap_bytes.is_some() || !script_markers.is_empty() || requires_identifiers {
                signatures.push(Signature {
                    id: signatures.len() as u32,
                    keywords: common,
                    min_sitemap_bytes,
                    script_markers,
                    requires_identifiers,
                    source_members: members.len(),
                    source_slds: slds.len(),
                });
            }
        }
        signatures
    }
}

/// Group suspicious changes by *keyword overlap* and derive one signature
/// per group that spans at least `min_slds` distinct SLDs.
///
/// This is the batch entry point: it canonicalizes the processing order by
/// sorting suspicious records on the unique `(day, fqdn)` key and folds them
/// through [`SignatureFold`] — the same fold the incremental retro pass
/// feeds round by round, which is what makes the two modes provably agree.
pub fn derive_signatures(changes: &[ChangeRecord], min_slds: usize) -> Vec<Signature> {
    // Deterministic processing order.
    let mut suspicious: Vec<&ChangeRecord> = changes.iter().filter(|r| is_suspicious(r)).collect();
    suspicious.sort_by(|a, b| a.day.cmp(&b.day).then_with(|| a.fqdn.cmp(&b.fqdn)));

    let mut fold = SignatureFold::new();
    for rec in suspicious {
        fold.push(rec);
    }
    fold.signatures(min_slds)
}

fn member_keywords(rec: &ChangeRecord) -> Vec<String> {
    let mut v = rec.after.keywords.clone();
    v.extend(rec.after.meta_keywords.iter().cloned());
    v.sort();
    v.dedup();
    v
}

/// Validate signatures against a benign corpus: any signature that fires on
/// a benign snapshot is discarded (§3.2). Returns `(kept, discarded_count)`.
pub fn validate_signatures(
    signatures: Vec<Signature>,
    benign: &[&Snapshot],
) -> (Vec<Signature>, usize) {
    let before = signatures.len();
    let kept: Vec<Signature> = signatures
        .into_iter()
        .filter(|sig| !benign.iter().any(|b| sig.matches(b)))
        .collect();
    let discarded = before - kept.len();
    (kept, discarded)
}

/// [`validate_signatures`], shard-parallel: each signature is checked against
/// the whole benign corpus independently (sharded by its derivation id — a
/// content-keyed value, assigned in the deterministic derivation order), and
/// the keep/discard verdicts are re-assembled in input order, so the kept
/// list is byte-identical to the serial pass for any thread count.
pub fn validate_signatures_sharded(
    signatures: Vec<Signature>,
    benign: &[&Snapshot],
    exec: &crate::pipeline::ShardedExecutor,
) -> (Vec<Signature>, usize) {
    let before = signatures.len();
    let buckets = crate::snapshot::DEFAULT_SHARDS;
    let keep: Vec<bool> = exec.map(
        &signatures,
        buckets,
        |sig| sig.id as usize % buckets,
        || (),
        |_, _, sig| !benign.iter().any(|b| sig.matches(b)),
    );
    let kept: Vec<Signature> = signatures
        .into_iter()
        .zip(keep)
        .filter_map(|(sig, keep)| keep.then_some(sig))
        .collect();
    let discarded = before - kept.len();
    (kept, discarded)
}

/// Match a snapshot against all signatures; returns the matching signature
/// ids (empty = not abused).
pub fn match_all<'a>(signatures: &'a [Signature], snap: &Snapshot) -> Vec<&'a Signature> {
    signatures.iter().filter(|s| s.matches(snap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::Rcode;
    use simcore::SimTime;

    fn snap(fqdn: &str, kws: &[&str], sitemap: Option<u64>, ids: &[&str]) -> Snapshot {
        let mut s = Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(10), Rcode::NoError, None);
        s.http_status = Some(200);
        s.index_hash = 42;
        s.keywords = kws.iter().map(|k| k.to_string()).collect();
        s.sitemap_bytes = sitemap;
        s.identifiers = ids.iter().map(|i| i.to_string()).collect();
        s
    }

    fn change(fqdn: &str, kws: &[&str], sitemap: Option<u64>, ids: &[&str]) -> ChangeRecord {
        ChangeRecord {
            fqdn: fqdn.parse().unwrap(),
            day: SimTime(10),
            kinds: vec![ChangeKind::BecameReachable],
            before_language: None,
            before_sitemap_bytes: None,
            before_serving: false,
            before_keywords: Vec::new(),
            after: snap(fqdn, kws, sitemap, ids),
        }
    }

    #[test]
    fn derives_signature_across_slds() {
        let changes = vec![
            change(
                "a.victim1.com",
                &["slot", "judi", "gacor"],
                Some(800_000),
                &["phone:62x"],
            ),
            change(
                "b.victim2.org",
                &["slot", "judi", "gacor"],
                Some(900_000),
                &["phone:62y"],
            ),
            change(
                "c.victim3.net",
                &["slot", "judi", "gacor"],
                Some(700_000),
                &[],
            ),
        ];
        let sigs = derive_signatures(&changes, 2);
        // Dual emission: a plain keywords signature plus the enhanced one.
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].kind(), SignatureKind::KeywordsOnly);
        let s = &sigs[1];
        assert!(s
            .keywords
            .iter()
            .all(|k| ["slot", "judi", "gacor"].contains(&k.as_str())));
        assert_eq!(s.min_sitemap_bytes, Some(HUGE_SITEMAP_BYTES));
        assert!(!s.requires_identifiers); // member c has none
        assert_eq!(s.source_slds, 3);
        assert_eq!(s.kind(), SignatureKind::KeywordsSitemap);
    }

    #[test]
    fn single_sld_clusters_skipped() {
        let changes = vec![
            change("a.same.com", &["slot", "judi"], None, &[]),
            change("b.same.com", &["slot", "judi"], None, &[]),
        ];
        assert!(derive_signatures(&changes, 2).is_empty());
    }

    #[test]
    fn matching_requires_all_features() {
        let sig = Signature {
            id: 0,
            keywords: vec!["slot".into(), "judi".into()],
            min_sitemap_bytes: Some(HUGE_SITEMAP_BYTES),
            script_markers: vec![],
            requires_identifiers: false,
            source_members: 3,
            source_slds: 3,
        };
        // All features present: match.
        assert!(sig.matches(&snap("x.v.com", &["slot", "judi"], Some(500_000), &[])));
        // Majority keyword rule: 1 of 2 keywords still matches…
        assert!(sig.matches(&snap("x.v.com", &["slot"], Some(500_000), &[])));
        // …but zero keywords does not.
        assert!(!sig.matches(&snap("x.v.com", &["other"], Some(500_000), &[])));
        // Small sitemap: no match.
        assert!(!sig.matches(&snap("x.v.com", &["slot", "judi"], Some(10_000), &[])));
        // Meta keywords count too.
        let mut s = snap("x.v.com", &[], Some(500_000), &[]);
        s.meta_keywords = vec!["slot".into(), "judi".into()];
        assert!(sig.matches(&s));
        // Unreachable snapshots never match.
        let mut dead = snap("x.v.com", &["slot", "judi"], Some(500_000), &[]);
        dead.http_status = None;
        assert!(!sig.matches(&dead));
    }

    #[test]
    fn benign_validation_discards() {
        let changes = vec![
            change("a.v1.com", &["premium", "domains", "sale"], None, &[]),
            change("b.v2.com", &["premium", "domains", "sale"], None, &[]),
        ];
        let sigs = derive_signatures(&changes, 2);
        assert_eq!(sigs.len(), 1);
        // A benign (parked) snapshot with the same words kills it.
        let benign = snap(
            "parked.other.com",
            &["premium", "domains", "sale"],
            None,
            &[],
        );
        let (kept, discarded) = validate_signatures(sigs, &[&benign]);
        assert!(kept.is_empty());
        assert_eq!(discarded, 1);
    }

    #[test]
    fn script_marker_matching() {
        let sig = Signature {
            id: 0,
            keywords: vec!["slot".into()],
            min_sitemap_bytes: None,
            script_markers: vec!["popunder.js".into()],
            requires_identifiers: false,
            source_members: 2,
            source_slds: 2,
        };
        let mut s = snap("x.v.com", &["slot"], None, &[]);
        assert!(!sig.matches(&s));
        s.script_srcs = vec!["http://203.0.113.7/js/popunder.js".into()];
        assert!(sig.matches(&s));
        assert_eq!(sig.kind(), SignatureKind::KeywordsInfra);
    }

    #[test]
    fn identifier_requirement() {
        let changes = vec![
            change("a.v1.com", &["slot", "gacor"], None, &["phone:1"]),
            change("b.v2.com", &["slot", "gacor"], None, &["phone:2"]),
        ];
        let sigs = derive_signatures(&changes, 2);
        // The enhanced variant carries the identifier requirement.
        let enhanced = sigs.iter().find(|s| s.requires_identifiers).unwrap();
        assert!(!enhanced.matches(&snap("c.v3.com", &["slot", "gacor"], None, &[])));
        assert!(enhanced.matches(&snap("c.v3.com", &["slot", "gacor"], None, &["phone:9"])));
        // The plain variant matches on keywords alone (benign validation is
        // what decides whether it survives).
        assert!(sigs.iter().any(|s| !s.requires_identifiers
            && s.matches(&snap("c.v3.com", &["slot", "gacor"], None, &[]))));
    }

    #[test]
    fn non_suspicious_changes_ignored() {
        let mut rec = change("a.v1.com", &["slot", "judi"], None, &[]);
        rec.kinds = vec![ChangeKind::Dns];
        let changes = vec![rec, change("b.v2.com", &["slot", "judi"], None, &[])];
        // Only one suspicious member -> still forms a group of 1 -> but only
        // one SLD -> no signature.
        assert!(derive_signatures(&changes, 2).is_empty());
    }
}
