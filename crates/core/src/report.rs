//! Study results and figure/table computations.
//!
//! [`StudyResults`] is everything one longitudinal run produces; the methods
//! on it compute the exact series/rows each figure and table of the paper
//! reports. The `repro` harness in `crates/bench` renders them.

use crate::benign::ChangeCluster;
use crate::classify::Topic;
use crate::diff::ChangeRecord;
use crate::lifespan::AbuseInterval;
use crate::signature::{Signature, SignatureKind};
use crate::world::World;
use analysis::{Histogram, TopK};
use cloudsim::ServiceId;
use contentgen::abuse::SeoTechnique;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::{Scale, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use worldgen::OrgId;

/// One detected abused FQDN (the pipeline's output; Table/Figure unit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbuseRecord {
    pub fqdn: Name,
    pub sld: Name,
    pub org: Option<OrgId>,
    pub first_seen: SimTime,
    pub corrected_at: Option<SimTime>,
    /// Kinds of the signatures that matched (Figure 2).
    pub signature_kinds: Vec<SignatureKind>,
    pub topic: Topic,
    pub techniques: Vec<SeoTechnique>,
    pub language: Option<String>,
    pub cname_target: Option<Name>,
    pub service: Option<ServiceId>,
    pub sitemap_bytes: Option<u64>,
    /// Estimated uploaded HTML files (sitemap entries).
    pub page_count_est: u64,
    pub identifiers: Vec<String>,
    pub meta_keywords: Vec<String>,
    pub keywords: Vec<String>,
    pub generator: Option<String>,
    pub html: Option<String>,
}

/// Pipeline-vs-ground-truth evaluation (possible only in simulation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectionEval {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
}

impl DetectionEval {
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// One §2-style liveness measurement of a hijacked FQDN (taken one week
/// after the hijack, while the abuse is live).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LivenessSample {
    pub icmp: bool,
    pub tcp80: bool,
    pub tcp443: bool,
    pub http: bool,
}

/// Per-round DNS resolution-latency percentiles under the modeled network
/// clock. Pure timing telemetry: it is deliberately **not** part of the
/// serialized [`StudyResults`] — the determinism contract pins study results
/// across latency profiles (zero/datacenter/wan), and these numbers differ
/// by profile by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundLatency {
    pub day: SimTime,
    /// Crawls sampled this round.
    pub samples: usize,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
}

impl RoundLatency {
    /// Nearest-rank percentiles over one round's per-crawl DNS resolution
    /// times. Sorts in place; returns `None` for an empty round.
    pub fn from_samples(day: SimTime, samples: &mut [u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let pick = |p: f64| {
            let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        Some(RoundLatency {
            day,
            samples: samples.len(),
            p50_ns: pick(0.50),
            p95_ns: pick(0.95),
            p99_ns: pick(0.99),
            p999_ns: pick(0.999),
        })
    }
}

/// Everything one scenario run produces.
pub struct StudyResults {
    pub scale: Scale,
    pub horizon: SimTime,
    /// Monthly count of monitored FQDNs (Figure 1, left axis).
    pub monitored_monthly: Vec<(i32, f64)>,
    pub feed_size: usize,
    pub monitored_total: usize,
    /// Monitored FQDNs per service (Table 2 denominators).
    pub monitored_by_service: BTreeMap<ServiceId, u64>,
    pub abuse: Vec<AbuseRecord>,
    pub signatures: Vec<Signature>,
    pub signatures_discarded: usize,
    pub change_clusters: Vec<ChangeCluster>,
    pub changes_total: usize,
    pub world: World,
    pub detection: DetectionEval,
    /// IP-lottery opportunities evaluated and declined by attackers (§4.3).
    pub ip_lottery_declines: u64,
    /// Attacker cert attempts blocked by CAA (paid-only parents).
    pub caa_blocked_certs: u64,
    pub changes: Vec<ChangeRecord>,
    /// §2 probe comparison samples over live hijacks.
    pub liveness: Vec<LivenessSample>,
    /// Per-round DNS resolution-latency percentiles (timing telemetry;
    /// excluded from serialization — see [`RoundLatency`]).
    pub resolution_latency: Vec<RoundLatency>,
}

/// Serialized form of a full run, used by the parallel-equivalence tests to
/// byte-compare results across crawl thread counts. The `world` field is
/// projected to its ground truth (the rest of [`World`] is live simulation
/// machinery, not an observable result).
impl Serialize for StudyResults {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scale".into(), serde::to_value(&self.scale)),
            ("horizon".into(), serde::to_value(&self.horizon)),
            (
                "monitored_monthly".into(),
                serde::to_value(&self.monitored_monthly),
            ),
            ("feed_size".into(), serde::to_value(&self.feed_size)),
            (
                "monitored_total".into(),
                serde::to_value(&self.monitored_total),
            ),
            (
                "monitored_by_service".into(),
                serde::to_value(&self.monitored_by_service),
            ),
            ("abuse".into(), serde::to_value(&self.abuse)),
            ("signatures".into(), serde::to_value(&self.signatures)),
            (
                "signatures_discarded".into(),
                serde::to_value(&self.signatures_discarded),
            ),
            (
                "change_clusters".into(),
                serde::to_value(&self.change_clusters),
            ),
            ("changes_total".into(), serde::to_value(&self.changes_total)),
            ("truth".into(), serde::to_value(&self.world.truth)),
            ("detection".into(), serde::to_value(&self.detection)),
            (
                "ip_lottery_declines".into(),
                serde::to_value(&self.ip_lottery_declines),
            ),
            (
                "caa_blocked_certs".into(),
                serde::to_value(&self.caa_blocked_certs),
            ),
            ("changes".into(), serde::to_value(&self.changes)),
            ("liveness".into(), serde::to_value(&self.liveness)),
        ])
    }
}

impl StudyResults {
    /// §2's headline: fraction of hijacked domains each probe type deems
    /// responsive (paper: ICMP 72%, TCP 93%, HTTP 89%).
    pub fn liveness_rates(&self) -> Option<(f64, f64, f64)> {
        if self.liveness.is_empty() {
            return None;
        }
        let n = self.liveness.len() as f64;
        let icmp = self.liveness.iter().filter(|s| s.icmp).count() as f64 / n;
        let tcp = self.liveness.iter().filter(|s| s.tcp80 || s.tcp443).count() as f64 / n;
        let http = self.liveness.iter().filter(|s| s.http).count() as f64 / n;
        Some((icmp, tcp, http))
    }

    /// Whole-run DNS resolution-latency percentiles: the worst (max) of each
    /// per-round percentile, plus the total sample count. `None` when no
    /// round recorded latency telemetry.
    pub fn resolution_latency_summary(&self) -> Option<RoundLatency> {
        let last_day = self.resolution_latency.last()?.day;
        let mut acc = RoundLatency {
            day: last_day,
            samples: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            p999_ns: 0,
        };
        for r in &self.resolution_latency {
            acc.samples += r.samples;
            acc.p50_ns = acc.p50_ns.max(r.p50_ns);
            acc.p95_ns = acc.p95_ns.max(r.p95_ns);
            acc.p99_ns = acc.p99_ns.max(r.p99_ns);
            acc.p999_ns = acc.p999_ns.max(r.p999_ns);
        }
        Some(acc)
    }
}

/// An alias used across the workspace.
pub type StudyReport = StudyResults;

/// A month-indexed series of points, as plotted on the paper's time axes.
pub type MonthlyCurve = Vec<(i32, f64)>;

impl StudyResults {
    // ------------------------------------------------------------------
    // Figure 1: monitored vs cumulative hijacked over time.
    // ------------------------------------------------------------------
    pub fn fig1_series(&self) -> (MonthlyCurve, MonthlyCurve) {
        let mut detections = analysis::MonthlySeries::new();
        for a in &self.abuse {
            detections.increment(a.first_seen.month_index());
        }
        (self.monitored_monthly.clone(), detections.cumulative())
    }

    // ------------------------------------------------------------------
    // Figure 2: % of detected hijacks per signature kind.
    // ------------------------------------------------------------------
    pub fn fig2_signature_kinds(&self) -> Vec<(SignatureKind, f64)> {
        let mut counts: BTreeMap<SignatureKind, usize> = BTreeMap::new();
        for a in &self.abuse {
            // Attribute to the *least demanding* matching kind, mirroring
            // the paper's "identified with just keywords" framing.
            let k = a
                .signature_kinds
                .iter()
                .min()
                .copied()
                .unwrap_or(SignatureKind::KeywordsOnly);
            *counts.entry(k).or_insert(0) += 1;
        }
        let total = self.abuse.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(k, c)| (k, c as f64 / total))
            .collect()
    }

    // ------------------------------------------------------------------
    // Figure 3: topic distribution.
    // ------------------------------------------------------------------
    pub fn fig3_topics(&self) -> Vec<(String, f64)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for a in &self.abuse {
            *counts.entry(a.topic.as_str()).or_insert(0) += 1;
        }
        let total = self.abuse.len().max(1) as f64;
        let mut v: Vec<(String, f64)> = counts
            .into_iter()
            .map(|(t, c)| (t.to_string(), c as f64 / total))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v
    }

    // ------------------------------------------------------------------
    // Figure 4: Tranco rank vs hijacked-subdomain count per SLD.
    // ------------------------------------------------------------------
    pub fn fig4_rank_vs_count(&self) -> Vec<(u32, u32)> {
        let mut per_sld: HashMap<Name, u32> = HashMap::new();
        for a in &self.abuse {
            *per_sld.entry(a.sld.clone()).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for (sld, count) in per_sld {
            if let Some(org) = self.world.population.orgs.iter().find(|o| o.apex == sld) {
                if let Some(rank) = org.tranco_rank {
                    out.push((rank, count));
                }
            }
        }
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Figure 5: unique FQDNs vs SLDs vs SLD-level hijacks.
    // ------------------------------------------------------------------
    pub fn fig5_sld_stats(&self) -> (usize, usize, usize) {
        let fqdns: BTreeSet<&Name> = self.abuse.iter().map(|a| &a.fqdn).collect();
        let slds: BTreeSet<&Name> = self.abuse.iter().map(|a| &a.sld).collect();
        let apex_level = self.abuse.iter().filter(|a| a.fqdn == a.sld).count();
        (fqdns.len(), slds.len(), apex_level)
    }

    // ------------------------------------------------------------------
    // Figure 6: histogram of uploaded HTML files per site (bins of 5,000).
    // ------------------------------------------------------------------
    pub fn fig6_upload_histogram(&self) -> (Histogram, u64, f64) {
        let mut h = Histogram::new(5_000);
        let mut total = 0u64;
        for a in &self.abuse {
            h.add(a.page_count_est);
            total += a.page_count_est;
        }
        let mean = if self.abuse.is_empty() {
            0.0
        } else {
            total as f64 / self.abuse.len() as f64
        };
        (h, total, mean)
    }

    // ------------------------------------------------------------------
    // Figures 7/8/9: top victims per population.
    // ------------------------------------------------------------------
    fn top_victims<F: Fn(&worldgen::Organization) -> bool>(
        &self,
        filter: F,
        k: usize,
    ) -> Vec<(String, u32)> {
        let mut per_org: HashMap<OrgId, u32> = HashMap::new();
        for a in &self.abuse {
            if let Some(org) = a.org {
                *per_org.entry(org).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(String, u32)> = per_org
            .into_iter()
            .filter_map(|(id, c)| {
                let org = self.world.population.org(id);
                filter(org).then(|| (org.apex.to_string(), c))
            })
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    pub fn fig7_top_tranco(&self, k: usize) -> Vec<(String, u32)> {
        self.top_victims(|o| o.tranco_rank.is_some(), k)
    }

    pub fn fig8_top_fortune500(&self, k: usize) -> Vec<(String, u32)> {
        self.top_victims(|o| o.fortune500, k)
    }

    pub fn fig9_top_universities(&self, k: usize) -> Vec<(String, u32)> {
        self.top_victims(|o| o.category == worldgen::OrgCategory::University, k)
    }

    /// Victim rates: (% of Fortune 500 abused, % of Global 500 abused).
    pub fn enterprise_victim_rates(&self) -> (f64, f64) {
        let abused_orgs: BTreeSet<OrgId> = self.abuse.iter().filter_map(|a| a.org).collect();
        let f500 = self
            .world
            .population
            .orgs
            .iter()
            .filter(|o| o.fortune500)
            .count();
        let f500_hit = self
            .world
            .population
            .orgs
            .iter()
            .filter(|o| o.fortune500 && abused_orgs.contains(&o.id))
            .count();
        let g500 = self
            .world
            .population
            .orgs
            .iter()
            .filter(|o| o.global500)
            .count();
        let g500_hit = self
            .world
            .population
            .orgs
            .iter()
            .filter(|o| o.global500 && abused_orgs.contains(&o.id))
            .count();
        (
            f500_hit as f64 / f500.max(1) as f64,
            g500_hit as f64 / g500.max(1) as f64,
        )
    }

    // ------------------------------------------------------------------
    // Figure 10: registrar diversity of change clusters.
    // ------------------------------------------------------------------
    pub fn fig10_registrar_diversity(&self) -> Vec<(usize, f64)> {
        crate::benign::registrar_diversity_series(&self.change_clusters)
    }

    // ------------------------------------------------------------------
    // Figure 11 / Tables 2, 3: providers and services.
    // ------------------------------------------------------------------
    pub fn abused_by_service(&self) -> BTreeMap<ServiceId, u64> {
        let mut m = BTreeMap::new();
        for a in &self.abuse {
            if let Some(s) = a.service {
                *m.entry(s).or_insert(0) += 1;
            }
        }
        m
    }

    /// Table 2 rows: (service, monitored, abused, percent).
    pub fn table2_rows(&self) -> Vec<(ServiceId, u64, u64, f64)> {
        let abused = self.abused_by_service();
        let mut rows: Vec<(ServiceId, u64, u64, f64)> = self
            .monitored_by_service
            .iter()
            .map(|(&s, &mon)| {
                let ab = abused.get(&s).copied().unwrap_or(0);
                let pct = if mon > 0 {
                    100.0 * ab as f64 / mon as f64
                } else {
                    0.0
                };
                (s, mon, ab, pct)
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Figure 11: provider shares of abuse.
    pub fn fig11_provider_shares(&self) -> Vec<(String, f64)> {
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (s, c) in self.abused_by_service() {
            *counts
                .entry(cloudsim::provider::spec(s).provider.as_str())
                .or_insert(0) += c;
        }
        let total: u64 = counts.values().sum();
        let mut v: Vec<(String, f64)> = counts
            .into_iter()
            .map(|(p, c)| (p.to_string(), c as f64 / total.max(1) as f64))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v
    }

    // ------------------------------------------------------------------
    // Figure 12: abused content by victim sector.
    // ------------------------------------------------------------------
    pub fn fig12_sectors(&self) -> Vec<(String, u32)> {
        let mut counts: BTreeMap<&'static str, u32> = BTreeMap::new();
        for a in &self.abuse {
            if let Some(org) = a.org {
                *counts
                    .entry(self.world.population.org(org).sector)
                    .or_insert(0) += 1;
            }
        }
        let mut v: Vec<(String, u32)> = counts
            .into_iter()
            .map(|(s, c)| (s.to_string(), c))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    // ------------------------------------------------------------------
    // Figures 15/16: lifespans.
    // ------------------------------------------------------------------
    pub fn abuse_intervals(&self) -> Vec<AbuseInterval> {
        self.abuse
            .iter()
            .map(|a| AbuseInterval {
                fqdn: a.fqdn.clone(),
                first_seen: a.first_seen,
                corrected_at: a.corrected_at,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Figure 18: WHOIS domain age of abused SLDs.
    // ------------------------------------------------------------------
    pub fn fig18_domain_ages(&self) -> (Vec<i32>, f64) {
        let slds: BTreeSet<&Name> = self.abuse.iter().map(|a| &a.sld).collect();
        let mut ages = Vec::new();
        for sld in slds {
            if let Some(org) = self.world.population.orgs.iter().find(|o| &o.apex == sld) {
                ages.push(org.domain_age_days(self.horizon));
            }
        }
        let older_1y = ages.iter().filter(|&&a| a > 365).count();
        let frac = older_1y as f64 / ages.len().max(1) as f64;
        (ages, frac)
    }

    // ------------------------------------------------------------------
    // Figure 19: VirusTotal flags.
    // ------------------------------------------------------------------
    pub fn fig19_virustotal(&self) -> (usize, usize, Vec<(i32, u32)>) {
        let mut flagged1 = 0;
        let mut flagged2 = 0;
        let mut by_cert_month: BTreeMap<i32, u32> = BTreeMap::new();
        for a in &self.abuse {
            let flags = self
                .world
                .vt
                .vendor_flags(&a.fqdn, a.first_seen, self.horizon);
            if flags >= 1 {
                flagged1 += 1;
                if let Some(first_cert) = self.world.ct.first_issuance(&a.fqdn) {
                    *by_cert_month.entry(first_cert.month_index()).or_insert(0) += 1;
                }
            }
            if flags >= 2 {
                flagged2 += 1;
            }
        }
        (flagged1, flagged2, by_cert_month.into_iter().collect())
    }

    // ------------------------------------------------------------------
    // Tables 1/5: keyword rankings.
    // ------------------------------------------------------------------
    pub fn table1_index_keywords(&self, k: usize) -> Vec<(String, u64)> {
        let mut t = TopK::new();
        for a in &self.abuse {
            for kw in &a.keywords {
                t.add(kw.clone());
            }
        }
        t.top(k)
    }

    pub fn table5_meta_keywords(&self, k: usize) -> Vec<(String, u64)> {
        let mut t = TopK::new();
        for a in &self.abuse {
            for kw in &a.meta_keywords {
                t.add(kw.clone());
            }
        }
        t.top(k)
    }

    /// §5.2.1: fraction of abused pages with the keywords meta tag.
    pub fn meta_keyword_fraction(&self) -> f64 {
        let with = self
            .abuse
            .iter()
            .filter(|a| !a.meta_keywords.is_empty())
            .count();
        with as f64 / self.abuse.len().max(1) as f64
    }

    // ------------------------------------------------------------------
    // Table 6: TLD distribution.
    // ------------------------------------------------------------------
    pub fn table6_tlds(&self, k: usize) -> (Vec<(String, u64)>, usize) {
        let mut t = TopK::new();
        let mut all: BTreeSet<String> = BTreeSet::new();
        for a in &self.abuse {
            if let Some(tld) = a.sld.tld() {
                t.add(tld.to_string());
                all.insert(tld.to_string());
            }
        }
        (t.top(k), all.len())
    }

    // ------------------------------------------------------------------
    // §5.2.1: SEO technique shares.
    // ------------------------------------------------------------------
    pub fn seo_shares(&self) -> (f64, Vec<(SeoTechnique, f64)>) {
        let seo = self
            .abuse
            .iter()
            .filter(|a| crate::classify::is_seo(&a.techniques))
            .count();
        let seo_frac = seo as f64 / self.abuse.len().max(1) as f64;
        let mut counts: BTreeMap<SeoTechnique, usize> = BTreeMap::new();
        for a in &self.abuse {
            for t in &a.techniques {
                *counts.entry(*t).or_insert(0) += 1;
            }
        }
        let shares = counts
            .into_iter()
            .map(|(t, c)| (t, c as f64 / self.abuse.len().max(1) as f64))
            .collect();
        (seo_frac, shares)
    }

    // ------------------------------------------------------------------
    // §6: infrastructure clustering inputs.
    // ------------------------------------------------------------------
    pub fn infra_inputs(&self) -> Vec<crate::infra::DomainIdentifiers> {
        self.abuse
            .iter()
            .map(|a| crate::infra::DomainIdentifiers {
                fqdn: a.fqdn.clone(),
                identifiers: a.identifiers.clone(),
            })
            .collect()
    }

    /// §6: WordPress share via the generator meta tag.
    pub fn wordpress_share(&self) -> f64 {
        let wp = self
            .abuse
            .iter()
            .filter(|a| {
                a.generator
                    .as_deref()
                    .map(|g| g.contains("WordPress"))
                    .unwrap_or(false)
            })
            .count();
        wp as f64 / self.abuse.len().max(1) as f64
    }

    /// Parents (apexes) of abused FQDNs.
    pub fn abused_parents(&self) -> Vec<Name> {
        let set: BTreeSet<Name> = self.abuse.iter().map(|a| a.sld.clone()).collect();
        set.into_iter().collect()
    }
}
