//! Ruling out benign collective changes (§3.2, Figure 10).
//!
//! Registrars/parking providers rotate content identically across the many
//! domains they manage — a false-positive source for any "same change on
//! many domains" detector. The paper's rule-out: group identical changes
//! and check registrar diversity. Clusters spanning ≥2 registrars cannot be
//! registrar-driven (89% of real abuse clusters span ≥2; 33% span ≥4).

use crate::diff::ChangeRecord;
use crate::keywords::cluster_key;
use dns::Name;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One cluster of identical changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeCluster {
    /// Keyword fingerprint shared by the members.
    pub key: String,
    pub fqdns: Vec<Name>,
    /// Distinct registrars across the member SLDs.
    pub registrar_count: usize,
}

impl ChangeCluster {
    /// Could this cluster's change have been made by a single registrar?
    pub fn registrar_driven(&self) -> bool {
        self.registrar_count <= 1
    }
}

/// One record's cluster fingerprint: its first five content keywords, or its
/// first five meta keywords when the content yields none.
pub(crate) fn fingerprint(rec: &ChangeRecord) -> Option<String> {
    let mut fp: Vec<String> = rec.after.keywords.iter().take(5).cloned().collect();
    if fp.is_empty() {
        fp = rec.after.meta_keywords.iter().take(5).cloned().collect();
    }
    if fp.is_empty() {
        return None;
    }
    Some(cluster_key(&fp))
}

/// Fold records into a fingerprint → member-set map. Set insertion is
/// commutative and idempotent, so the map's *contents* are the same for any
/// feed order or partitioning — this is the merge step both the sharded
/// batch pass and the round-by-round incremental retro pass build on.
pub fn fold_cluster_map<'a, I>(groups: &mut HashMap<String, BTreeSet<Name>>, changes: I)
where
    I: IntoIterator<Item = &'a ChangeRecord>,
{
    for rec in changes {
        let Some(key) = fingerprint(rec) else {
            continue;
        };
        groups.entry(key).or_default().insert(rec.fqdn.clone());
    }
}

/// Shared tail of serial, sharded, and incremental clustering: sorted-key
/// emission plus registrar annotation. The groups map already carries member
/// sets, so the output depends only on its *contents*, never on insertion
/// order. Borrows the map — the incremental pass keeps folding into it
/// across rounds.
pub fn clusters_from_map<F>(
    groups: &HashMap<String, BTreeSet<Name>>,
    registrar_of: F,
) -> Vec<ChangeCluster>
where
    F: Fn(&Name) -> Option<u16>,
{
    let mut keys: Vec<&String> = groups.keys().collect();
    keys.sort();
    keys.into_iter()
        .map(|key| {
            let fqdns: Vec<Name> = groups[key].iter().cloned().collect();
            let registrars: BTreeSet<u16> = fqdns
                .iter()
                .filter_map(|f| f.sld())
                .filter_map(|sld| registrar_of(&sld))
                .collect();
            ChangeCluster {
                key: key.clone(),
                fqdns,
                registrar_count: registrars.len(),
            }
        })
        .collect()
}

/// Group change records by identical keyword fingerprints and annotate each
/// cluster with its registrar diversity. `registrar_of` maps an SLD to its
/// registrar (WHOIS in the paper; the population table here).
pub fn cluster_changes<F>(changes: &[ChangeRecord], registrar_of: F) -> Vec<ChangeCluster>
where
    F: Fn(&Name) -> Option<u16>,
{
    let mut groups: HashMap<String, BTreeSet<Name>> = HashMap::new();
    fold_cluster_map(&mut groups, changes);
    clusters_from_map(&groups, registrar_of)
}

/// [`cluster_changes`], shard-parallel: records are bucketed by the
/// pipeline's fixed FQDN hash, each bucket builds a partial fingerprint →
/// member-set map, and the partials are merged by set union — a commutative,
/// associative merge, so the merged map (and the sorted-key emission that
/// follows) is byte-identical to the serial pass for any thread count.
pub fn cluster_changes_sharded<F>(
    changes: &[ChangeRecord],
    registrar_of: F,
    exec: &crate::pipeline::ShardedExecutor,
) -> Vec<ChangeCluster>
where
    F: Fn(&Name) -> Option<u16> + Sync,
{
    let buckets = crate::snapshot::DEFAULT_SHARDS;
    let partials: Vec<HashMap<String, BTreeSet<Name>>> = exec.fold_buckets(
        changes,
        buckets,
        |rec| crate::snapshot::fqdn_shard(&rec.fqdn, buckets),
        |_b, members| {
            let mut groups: HashMap<String, BTreeSet<Name>> = HashMap::new();
            for (_, rec) in members {
                let Some(key) = fingerprint(rec) else {
                    continue;
                };
                groups.entry(key).or_default().insert(rec.fqdn.clone());
            }
            groups
        },
    );
    let mut groups: HashMap<String, BTreeSet<Name>> = HashMap::new();
    for partial in partials {
        for (key, members) in partial {
            groups.entry(key).or_default().extend(members);
        }
    }
    clusters_from_map(&groups, registrar_of)
}

/// Figure 10's series: of clusters with ≥2 member domains, what fraction
/// spans ≥ X registrars, for X = 1..=max.
pub fn registrar_diversity_series(clusters: &[ChangeCluster]) -> Vec<(usize, f64)> {
    let multi: Vec<&ChangeCluster> = clusters.iter().filter(|c| c.fqdns.len() >= 2).collect();
    if multi.is_empty() {
        return Vec::new();
    }
    let max = multi.iter().map(|c| c.registrar_count).max().unwrap_or(1);
    (1..=max)
        .map(|x| {
            let frac =
                multi.iter().filter(|c| c.registrar_count >= x).count() as f64 / multi.len() as f64;
            (x, frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::ChangeKind;
    use crate::snapshot::Snapshot;
    use dns::Rcode;
    use simcore::SimTime;

    fn change(fqdn: &str, kws: &[&str]) -> ChangeRecord {
        let mut s = Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(1), Rcode::NoError, None);
        s.http_status = Some(200);
        s.keywords = kws.iter().map(|k| k.to_string()).collect();
        ChangeRecord {
            fqdn: fqdn.parse().unwrap(),
            day: SimTime(1),
            kinds: vec![ChangeKind::Content],
            before_language: None,
            before_sitemap_bytes: None,
            before_serving: true,
            before_keywords: Vec::new(),
            after: s,
        }
    }

    /// Registrar: derived from the apex's first letter for the test.
    fn reg(sld: &Name) -> Option<u16> {
        sld.labels()[0].bytes().next().map(|b| b as u16)
    }

    #[test]
    fn clusters_by_fingerprint() {
        let changes = vec![
            change("a.alpha.com", &["slot", "judi"]),
            change("b.beta.com", &["judi", "slot"]), // same set, different order
            change("c.gamma.com", &["premium", "sale"]),
        ];
        let clusters = cluster_changes(&changes, reg);
        assert_eq!(clusters.len(), 2);
        let abuse = clusters.iter().find(|c| c.fqdns.len() == 2).unwrap();
        assert_eq!(abuse.registrar_count, 2);
        assert!(!abuse.registrar_driven());
    }

    #[test]
    fn single_registrar_cluster_flagged() {
        // Two parked domains of the same registrar rotating together.
        let changes = vec![
            change("x.aaa.com", &["premium", "domains"]),
            change("y.anotherof-a.com", &["premium", "domains"]),
        ];
        let clusters = cluster_changes(&changes, |_| Some(7)); // same registrar
        assert_eq!(clusters.len(), 1);
        assert!(clusters[0].registrar_driven());
    }

    #[test]
    fn diversity_series_shape() {
        let clusters = vec![
            ChangeCluster {
                key: "a".into(),
                fqdns: vec!["x.a.com".parse().unwrap(), "y.b.com".parse().unwrap()],
                registrar_count: 4,
            },
            ChangeCluster {
                key: "b".into(),
                fqdns: vec!["x.c.com".parse().unwrap(), "y.d.com".parse().unwrap()],
                registrar_count: 2,
            },
            ChangeCluster {
                key: "c".into(),
                fqdns: vec!["x.e.com".parse().unwrap(), "y.f.com".parse().unwrap()],
                registrar_count: 1,
            },
            // singleton ignored
            ChangeCluster {
                key: "d".into(),
                fqdns: vec!["x.g.com".parse().unwrap()],
                registrar_count: 1,
            },
        ];
        let series = registrar_diversity_series(&clusters);
        // x=1 -> 100%, x=2 -> 2/3, x=4 -> 1/3.
        assert_eq!(series[0], (1, 1.0));
        assert!((series[1].1 - 2.0 / 3.0).abs() < 1e-9);
        assert!((series[3].1 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_changes(&[], reg).is_empty());
        assert!(registrar_diversity_series(&[]).is_empty());
    }

    #[test]
    fn sharded_clustering_matches_serial() {
        let changes: Vec<ChangeRecord> = (0..60)
            .map(|i| {
                let fqdn = format!("h{i}.apex{}.com", i % 7);
                let kw = format!("kw{}", i % 5);
                change(&fqdn, &[&kw, "judi"])
            })
            .collect();
        let serial = cluster_changes(&changes, reg);
        assert!(serial.len() > 1);
        for threads in [1, 2, 8] {
            let exec = crate::pipeline::ShardedExecutor::new(
                threads,
                crate::exec_metric_names!("test.benign"),
            );
            let sharded = cluster_changes_sharded(&changes, reg, &exec);
            assert_eq!(serial.len(), sharded.len(), "threads={threads}");
            for (a, b) in serial.iter().zip(&sharded) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.fqdns, b.fqdns);
                assert_eq!(a.registrar_count, b.registrar_count);
            }
        }
    }
}
