//! The longitudinal scenario driver.
//!
//! Runs the full world — organizations provisioning and abandoning cloud
//! resources from 2016, attacker campaigns from 2020, certificate history
//! from 2017 — and, in the same event loop, the paper's monitoring pipeline
//! (weekly, per §3). At the horizon it performs the retrospective signature
//! derivation + validation + matching pass of §3.2 and assembles a
//! [`StudyResults`].
//!
//! [`Scenario::run`] is a thin orchestrator: the actual work lives in the
//! [`crate::pipeline`] stages — world advancement, Algorithm-1 collection,
//! the shard-parallel weekly crawl, diff/record, and the retrospective pass.
//! The pipeline-wide determinism contract (byte-identical results for any
//! `crawl_threads`) is documented in [`crate::pipeline`].

use crate::pipeline::{
    CollectStage, CrawlStage, DiffStage, Ev, IncrementalRetro, PersistError, PersistOptions,
    PersistStage, RetroStage, RoundSink, RoundView, RunState, Stage, WorldStage,
};
use crate::report::StudyResults;
use cloudsim::PlatformConfig;
use serde::{Deserialize, Serialize};
use simcore::{Date, Scale, SimTime};
use worldgen::WorldConfig;

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub world: WorldConfig,
    pub campaigns: attacker::CampaignConfig,
    pub platform: PlatformConfig,
    /// Monitoring cadence (paper: weekly).
    pub monitor_interval_days: i32,
    /// Minimum distinct SLDs for a signature cluster.
    pub min_signature_slds: usize,
    /// Replay the 2017 mass-issuance wave into CT history (Figure 20's
    /// first anomaly).
    pub historic_cert_wave: bool,
    /// The 2022 issuance boost window (Figure 20's second anomaly).
    pub cert_boost_from: SimTime,
    pub cert_boost_until: SimTime,
    /// Probability an org certifies a freshly provisioned subdomain.
    pub org_cert_probability: f64,
    /// Per-hijack probability the campaign also runs a cookie stealer.
    pub cookie_stealer_probability: f64,
    /// Worker threads for every parallel stage — the weekly crawl,
    /// Algorithm-1 classification, and the retrospective pass (0 or 1 =
    /// serial). Results are byte-identical for any value — see
    /// [`crate::pipeline`].
    #[serde(default)]
    pub crawl_threads: usize,
    /// Per-fetch probability of a transient crawl failure (0.0 disables the
    /// model). Keyed per (FQDN, day), so also thread-count-invariant.
    #[serde(default)]
    pub crawl_failure_rate: f64,
    /// Network latency profile for the event-driven crawl (one of
    /// [`simcore::LatencyProfile::NAMES`]; empty means the default `zero`
    /// profile). `off` restores the legacy blocking path; `zero`,
    /// `datacenter` and `wan` only move virtual time and cannot change
    /// results; `lossy` injects deterministic, thread-count-invariant query
    /// drops and is the one profile that does.
    #[serde(default)]
    pub latency_profile: String,
}

impl ScenarioConfig {
    /// Default configuration at the given scale denominator.
    pub fn at_scale(denominator: u32) -> Self {
        let scale = Scale::new(denominator);
        ScenarioConfig {
            seed: 42,
            world: WorldConfig {
                scale,
                ..Default::default()
            },
            campaigns: attacker::CampaignConfig {
                scale,
                ..Default::default()
            },
            platform: PlatformConfig::default(),
            monitor_interval_days: 7,
            min_signature_slds: 2,
            historic_cert_wave: true,
            cert_boost_from: Date::new(2022, 9, 9).to_sim(),
            cert_boost_until: Date::new(2022, 12, 16).to_sim(),
            org_cert_probability: 0.35,
            cookie_stealer_probability: 0.02,
            crawl_threads: 1,
            crawl_failure_rate: 0.0,
            latency_profile: "zero".into(),
        }
    }

    /// Resolve [`Self::latency_profile`] into a model. Panics on an unknown
    /// name — the `repro` CLI validates earlier; a config file with a typo
    /// should fail loudly, not silently crawl with a different clock.
    pub fn latency_model(&self) -> simcore::LatencyModel {
        if self.latency_profile.is_empty() {
            return simcore::LatencyModel::default();
        }
        simcore::LatencyProfile::by_name(&self.latency_profile).unwrap_or_else(|| {
            panic!(
                "unknown latency profile {:?} (expected one of {:?})",
                self.latency_profile,
                simcore::LatencyProfile::NAMES
            )
        })
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::at_scale(100)
    }
}

/// The scenario engine.
pub struct Scenario {
    cfg: ScenarioConfig,
    max_rounds: Option<u64>,
    incremental: bool,
    sink: Option<Box<dyn RoundSink>>,
}

impl Scenario {
    pub fn new(cfg: ScenarioConfig) -> Self {
        Scenario {
            cfg,
            max_rounds: None,
            incremental: false,
            sink: None,
        }
    }

    /// Stop after at most `rounds` monitoring rounds (the retrospective pass
    /// still runs over whatever was observed). Lets smoke runs bound their
    /// work without a state directory; persisted runs can equivalently use
    /// [`PersistOptions::max_rounds`].
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Run the retrospective pass incrementally: the streaming
    /// [`IncrementalRetro`] stage consumes each round's changes as the diff
    /// stage emits them, and the horizon pass shrinks to a finalize step.
    /// `StudyResults` is byte-identical either way (the
    /// `incremental_equivalence` suite pins this).
    ///
    /// A builder flag rather than a [`ScenarioConfig`] field on purpose:
    /// like `crawl_threads`, it cannot affect results, so it must not fork
    /// the persistence config fingerprint — a run recorded in batch mode can
    /// be resumed incrementally and vice versa, which is also how storelog
    /// replay feeds recorded rounds straight into the streaming retro pass
    /// without re-crawling.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Attach a [`RoundSink`]: an observer invoked after every committed
    /// monitoring round with a read-only [`RoundView`], and polled for a
    /// graceful stop at each round boundary. Service mode publishes its
    /// query views through this hook. The sink sees shared references only,
    /// so — like telemetry — it cannot perturb results; the
    /// `serve_equivalence` suite pins that byte for byte.
    pub fn round_sink(mut self, sink: Box<dyn RoundSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Run the full study and assemble results.
    ///
    /// Pure orchestration: builds the [`RunState`], instantiates the stages,
    /// dispatches events in scheduled order (for `MonitorWeek` the monitoring
    /// stages run in pipeline order: collect → crawl → diff), then hands the
    /// final state to the retrospective stage.
    pub fn run(self) -> StudyResults {
        self.run_inner(None)
            .expect("a run without persistence cannot fail")
    }

    /// Run the study against a state directory: every round's observations
    /// are appended to an on-disk log and sealed with a checkpoint, so an
    /// interrupted run can continue with `opts.resume` (replaying recorded
    /// rounds instead of crawling them) and still serialize byte-identically
    /// to an uninterrupted run. See [`crate::pipeline::persist`].
    pub fn run_persisted(self, opts: &PersistOptions) -> Result<StudyResults, PersistError> {
        self.run_inner(Some(opts))
    }

    fn run_inner(
        self,
        persist_opts: Option<&PersistOptions>,
    ) -> Result<StudyResults, PersistError> {
        let threads = self.cfg.crawl_threads;
        let failure_rate = self.cfg.crawl_failure_rate;
        let max_rounds = self.max_rounds;
        let incremental = self.incremental;
        let mut sink = self.sink;
        let mut rs = RunState::new(self.cfg);

        // Telemetry handles, resolved once. Everything recorded below is
        // out-of-band (wall clock + process-global telemetry state); nothing
        // feeds back into the simulation.
        let m_rounds = obs::counter("pipeline.rounds");
        let m_monitored = obs::gauge("pipeline.monitored");
        let m_bytes_per_fqdn = obs::gauge("pipeline.bytes_per_fqdn");
        let m_world_ns = obs::histogram("pipeline.world_ns");
        let mut rounds: u64 = 0;

        let mut world_stage = WorldStage::new(&rs);
        let mut collect = CollectStage::new(&rs, threads);
        let mut crawl = CrawlStage::new(threads, failure_rate).with_latency(rs.cfg.latency_model());
        let mut diff = DiffStage;
        let mut persist = match persist_opts {
            Some(opts) => Some(PersistStage::open(opts, &rs.cfg, rs.store.shard_count())?),
            None => None,
        };
        let mut incr = incremental.then(|| IncrementalRetro::new(threads));

        while let Some((now, ev)) = rs.q.pop() {
            if now > rs.horizon {
                break;
            }
            match ev {
                Ev::MonitorWeek => {
                    let round_started = std::time::Instant::now();
                    let changes_before = rs.changes.len();
                    let _round = obs::span("monitor.round", "pipeline")
                        .arg_i64("day", now.0 as i64)
                        .record_into("pipeline.round_ns");
                    {
                        let _s = obs::span("collect.weekly", "pipeline")
                            .arg_i64("day", now.0 as i64)
                            .record_into("pipeline.collect_ns");
                        collect.weekly(&mut rs, now);
                    }
                    // Inside the recorded history a resumed run substitutes
                    // the logged outcomes for the crawl — the only stage
                    // whose work is not cheaply deterministic to repeat.
                    let replayed = match persist.as_mut() {
                        Some(p) => {
                            let _s = obs::span("persist.replay_round", "persist")
                                .arg_i64("day", now.0 as i64)
                                .record_into("pipeline.replay_ns");
                            p.replay_round(&mut rs, now)?
                        }
                        None => false,
                    };
                    if !replayed {
                        {
                            let _s = obs::span("crawl.weekly", "pipeline")
                                .arg_i64("day", now.0 as i64)
                                .arg_i64("monitored", rs.monitored.len() as i64)
                                .record_into("pipeline.crawl_ns");
                            crawl.weekly(&mut rs, now);
                        }
                        if let Some(p) = persist.as_mut() {
                            let _s = obs::span("persist.record_round", "persist")
                                .arg_i64("day", now.0 as i64)
                                .record_into("pipeline.persist_ns");
                            p.record_round(&rs, now)?;
                        }
                    }
                    {
                        let _s = obs::span("diff.weekly", "pipeline")
                            .arg_i64("day", now.0 as i64)
                            .record_into("pipeline.diff_ns");
                        diff.weekly(&mut rs, now);
                    }
                    // Streaming retro: consume this round's changes right
                    // behind the diff stage. Replayed rounds flow through
                    // here too — resume feeds recorded segments straight
                    // into the retro pass without re-crawling.
                    if let Some(incr) = incr.as_mut() {
                        let _s = obs::span("incr.weekly", "retro")
                            .arg_i64("day", now.0 as i64)
                            .record_into("pipeline.incr_ns");
                        incr.weekly(&mut rs, now);
                    }
                    rounds += 1;
                    m_rounds.inc();
                    m_monitored.set(rs.monitored.len() as f64);
                    m_bytes_per_fqdn.set(rs.bytes_per_fqdn());
                    obs::progress!(
                        "round {rounds:>4}  day {:>5}  monitored {:>6}  changes +{:<5}  {:.1} ms",
                        now.0,
                        rs.monitored.len(),
                        rs.changes.len() - changes_before,
                        round_started.elapsed().as_secs_f64() * 1e3
                    );
                    let mut stop = false;
                    if let Some(p) = persist.as_mut() {
                        rs.rng_witness = world_stage.rng_cursor_digest();
                        p.finish_round(&rs, now)?;
                        stop = p.should_stop();
                    }
                    // The round is sealed: hand the committed state to the
                    // sink (read-only — query surfaces are out-of-band by
                    // construction) and honor a graceful stop request at
                    // this round boundary.
                    if let Some(sink) = sink.as_mut() {
                        sink.round_committed(RoundView {
                            rs: &rs,
                            now,
                            rounds_done: rounds,
                            provisional: incr.as_ref().and_then(|i| i.provisional_round()),
                        });
                        stop = stop || sink.stop_requested();
                    }
                    if stop || max_rounds.is_some_and(|m| rounds >= m) {
                        break;
                    }
                }
                other => {
                    let t = std::time::Instant::now();
                    world_stage.on_event(&mut rs, now, other);
                    m_world_ns.record(t.elapsed().as_nanos() as u64);
                }
            }
        }

        let _retro = obs::span("retro.assemble", "retro").record_into("pipeline.retro_ns");
        Ok(match incr {
            Some(incr) => incr.finalize(rs),
            None => RetroStage::new(threads).assemble(rs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::NamingModel;

    /// A very small but complete end-to-end run.
    fn small_results() -> StudyResults {
        let mut cfg = ScenarioConfig::at_scale(800);
        cfg.world.n_fortune1000 = 60;
        cfg.world.n_global500 = 30;
        cfg.seed = 7;
        Scenario::new(cfg).run()
    }

    #[test]
    fn end_to_end_detects_hijacks() {
        let r = small_results();
        assert!(r.monitored_total > 100, "monitored {}", r.monitored_total);
        assert!(!r.world.truth.is_empty(), "attackers must hijack something");
        assert!(!r.abuse.is_empty(), "pipeline must detect something");
        // Detection quality: the signature pipeline should be precise and
        // catch a majority of the hijacks.
        assert!(
            r.detection.precision() > 0.9,
            "precision {}",
            r.detection.precision()
        );
        assert!(
            r.detection.recall() > 0.5,
            "recall {} (tp={} fn={})",
            r.detection.recall(),
            r.detection.true_positives,
            r.detection.false_negatives
        );
    }

    #[test]
    fn no_ip_takeovers_and_declines_counted() {
        let r = small_results();
        // §4.3: every hijack used a freetext resource.
        for t in &r.world.truth {
            assert_eq!(
                cloudsim::provider::spec(t.service).naming,
                NamingModel::Freetext,
                "{:?}",
                t.service
            );
        }
        assert!(r.ip_lottery_declines > 0, "IP danglings must be evaluated");
    }

    #[test]
    fn monitored_grows_over_time() {
        let r = small_results();
        let series = &r.monitored_monthly;
        assert!(series.len() > 12);
        let first = series.iter().find(|(_, v)| *v > 0.0).unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last > first, "feed growth: {first} -> {last}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_results();
        let b = small_results();
        assert_eq!(a.world.truth.len(), b.world.truth.len());
        assert_eq!(a.abuse.len(), b.abuse.len());
        assert_eq!(a.monitored_total, b.monitored_total);
    }
}
