//! The longitudinal scenario driver.
//!
//! Runs the full world — organizations provisioning and abandoning cloud
//! resources from 2016, attacker campaigns from 2020, certificate history
//! from 2017 — and, in the same event loop, the paper's monitoring pipeline
//! (weekly, per §3). At the horizon it performs the retrospective signature
//! derivation + validation + matching pass of §3.2 and assembles a
//! [`StudyResults`].

use crate::collect::{CloudPointer, Collector, Feed};
use crate::diff::{record as diff_record, ChangeKind, ChangeRecord};
use crate::monitor::Crawler;
use crate::report::{AbuseRecord, DetectionEval, StudyResults};
use crate::signature::{derive_signatures, is_suspicious, match_all, validate_signatures};
use crate::snapshot::SnapshotStore;
use crate::world::{remediation_delay, HijackTruth, World};
use attacker::{CostModel, Scanner};
use certsim::CaId;
use cloudsim::{AccountId, NamingModel, PlatformConfig, ResourceId, ServiceId};
use contentgen::abuse::AbuseTopic;
use dns::{Name, Resolver};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{Date, EventQueue, RngTree, Scale, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use worldgen::{CaaPolicy, Population, WorldConfig};

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub world: WorldConfig,
    pub campaigns: attacker::CampaignConfig,
    pub platform: PlatformConfig,
    /// Monitoring cadence (paper: weekly).
    pub monitor_interval_days: i32,
    /// Minimum distinct SLDs for a signature cluster.
    pub min_signature_slds: usize,
    /// Replay the 2017 mass-issuance wave into CT history (Figure 20's
    /// first anomaly).
    pub historic_cert_wave: bool,
    /// The 2022 issuance boost window (Figure 20's second anomaly).
    pub cert_boost_from: SimTime,
    pub cert_boost_until: SimTime,
    /// Probability an org certifies a freshly provisioned subdomain.
    pub org_cert_probability: f64,
    /// Per-hijack probability the campaign also runs a cookie stealer.
    pub cookie_stealer_probability: f64,
}

impl ScenarioConfig {
    /// Default configuration at the given scale denominator.
    pub fn at_scale(denominator: u32) -> Self {
        let scale = Scale::new(denominator);
        ScenarioConfig {
            seed: 42,
            world: WorldConfig {
                scale,
                ..Default::default()
            },
            campaigns: attacker::CampaignConfig {
                scale,
                ..Default::default()
            },
            platform: PlatformConfig::default(),
            monitor_interval_days: 7,
            min_signature_slds: 2,
            historic_cert_wave: true,
            cert_boost_from: Date::new(2022, 9, 9).to_sim(),
            cert_boost_until: Date::new(2022, 12, 16).to_sim(),
            org_cert_probability: 0.35,
            cookie_stealer_probability: 0.02,
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::at_scale(100)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Provision(usize),
    Release(usize),
    Remediate(usize),
    OrgCertRenewal(usize),
    AttackerWeek,
    MonitorWeek,
    BenignRefresh,
    HistoricCertWave,
    /// §2 probe comparison against one live hijack.
    LivenessProbe(usize),
}

/// Mutable per-campaign execution state.
struct CampaignState {
    hijacked_hosts: Vec<String>,
    quota_used: u32,
}

/// The scenario engine.
pub struct Scenario {
    cfg: ScenarioConfig,
}

impl Scenario {
    pub fn new(cfg: ScenarioConfig) -> Self {
        Scenario { cfg }
    }

    /// Run the full study and assemble results.
    pub fn run(self) -> StudyResults {
        let cfg = self.cfg;
        let tree = RngTree::new(cfg.seed);
        let population = Population::generate(cfg.world.clone(), &tree);
        let campaigns = attacker::generate_campaigns(&cfg.campaigns, &tree);
        let mut world = World::new(population, campaigns, cfg.platform.clone(), tree.clone());

        let horizon = SimTime::monitor_end();
        let monitor_start = SimTime::monitor_start();

        // ----- feed -----
        let mut feed_entries: Vec<(Name, SimTime)> = Vec::new();
        for plan in &world.population.plans {
            feed_entries.push((
                plan.subdomain.clone(),
                plan.discovered_at.max(monitor_start),
            ));
        }
        // Non-cloud names (apexes) also flow through Algorithm 1 and must be
        // filtered out — the methodology's own selectivity.
        for org in &world.population.orgs {
            feed_entries.push((org.apex.clone(), monitor_start));
        }
        let feed = Feed::new(feed_entries);

        // ----- event queue -----
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (i, plan) in world.population.plans.iter().enumerate() {
            q.schedule(plan.create_at.max(SimTime::EPOCH), Ev::Provision(i));
            if let Some(r) = plan.release_at {
                q.schedule(r, Ev::Release(i));
            }
        }
        {
            let mut t = monitor_start;
            while t <= horizon {
                q.schedule(t, Ev::MonitorWeek);
                q.schedule(t, Ev::AttackerWeek);
                t += cfg.monitor_interval_days;
            }
            let mut m = Date::new(2016, 1, 1).to_sim();
            while m <= horizon {
                q.schedule(m, Ev::BenignRefresh);
                m = (m + 31).month_floor();
            }
            if cfg.historic_cert_wave {
                q.schedule(Date::new(2017, 8, 1).to_sim(), Ev::HistoricCertWave);
            }
        }

        // ----- execution state -----
        let scanner = Scanner::new();
        let collector = Collector::new();
        let cost_model = CostModel::default();
        let mut plan_resource: Vec<Option<ResourceId>> = vec![None; world.population.plans.len()];
        let mut open_freetext: Vec<usize> = Vec::new(); // dangling, hijackable
        let mut open_ip: Vec<usize> = Vec::new(); // dangling IP records (declined)
        let mut campaign_state: Vec<CampaignState> = world
            .campaigns
            .iter()
            .map(|_| CampaignState {
                hijacked_hosts: Vec::new(),
                quota_used: 0,
            })
            .collect();
        let mut monitored: Vec<Name> = Vec::new();
        let mut monitored_set: HashSet<Name> = HashSet::new();
        let mut monitored_by_service: BTreeMap<ServiceId, u64> = BTreeMap::new();
        let mut pending_candidates: Vec<Name> = Vec::new();
        let mut store = SnapshotStore::new();
        let mut changes: Vec<ChangeRecord> = Vec::new();
        let mut monitored_monthly = analysis::MonthlySeries::new();
        let mut last_feed_check = monitor_start - 1;
        let mut ip_lottery_declines = 0u64;
        let mut caa_blocked_certs = 0u64;
        let mut truth_steals_cookies: Vec<bool> = Vec::new();
        let mut liveness: Vec<crate::report::LivenessSample> = Vec::new();
        let mut benign_rng = tree.rng("scenario/benign");
        let mut attacker_rng = tree.rng("scenario/attacker");
        let mut org_rng = tree.rng("scenario/orgs");
        let mut refresh_round = 0u32;

        // FQDN -> plan index (for service attribution and remediation).
        let fqdn_plan: HashMap<Name, usize> = world
            .population
            .plans
            .iter()
            .enumerate()
            .map(|(i, p)| (p.subdomain.clone(), i))
            .collect();

        // ----- main loop -----
        while let Some((now, ev)) = q.pop() {
            if now > horizon {
                break;
            }
            match ev {
                Ev::Provision(idx) => {
                    let plan = world.population.plans[idx].clone();
                    let org = world.population.org(plan.org).clone();
                    let account = AccountId::Org(org.id.0);
                    let mut name = plan.resource_name.clone();
                    let mut rid = None;
                    for attempt in 0..3 {
                        let try_name = name.as_deref().map(|n| {
                            if attempt == 0 {
                                n.to_string()
                            } else {
                                format!("{n}-{attempt}")
                            }
                        });
                        match world.platform.register(
                            plan.service,
                            try_name.as_deref(),
                            plan.region.as_deref(),
                            account,
                            now,
                            &mut org_rng,
                        ) {
                            Ok(id) => {
                                name = try_name;
                                rid = Some(id);
                                break;
                            }
                            Err(cloudsim::RegisterError::NameTaken) => continue,
                            Err(_) => break,
                        }
                    }
                    let Some(rid) = rid else { continue };
                    plan_resource[idx] = Some(rid);
                    // Serve content; bind the org subdomain. Parked domains
                    // serve the registrar's parking rotation (the Figure 10
                    // confounder lives inside the monitored set).
                    let content = if org.parked {
                        contentgen::benign::parked_site(
                            &worldgen::org::registrar_name(org.registrar),
                            0,
                        )
                    } else if org.category == worldgen::OrgCategory::Popular
                        && org_rng.gen_bool(0.03)
                    {
                        // Benign sites whose vocabulary brushes the abuse
                        // lexicon — the §3.2 validation corpus needs them.
                        contentgen::benign::benign_topical_site(
                            &org.name,
                            &plan.subdomain.to_string(),
                            &mut org_rng,
                        )
                    } else {
                        contentgen::benign::benign_site(
                            match org.category {
                                worldgen::OrgCategory::University => {
                                    contentgen::BenignKind::University
                                }
                                worldgen::OrgCategory::Government => {
                                    contentgen::BenignKind::Government
                                }
                                _ => contentgen::BenignKind::Corporate,
                            },
                            &org.name,
                            org.sector,
                            &plan.subdomain.to_string(),
                            &mut org_rng,
                        )
                    };
                    world.platform.set_content(rid, content);
                    world
                        .platform
                        .bind_custom_domain(rid, plan.subdomain.clone());
                    // Publish the org-side DNS record.
                    let res = world.platform.resource(rid).unwrap();
                    let zone = world.org_zones.zone_mut_or_create(&org.apex);
                    match &res.generated_fqdn {
                        Some(target) => zone.add(dns::ResourceRecord::new(
                            plan.subdomain.clone(),
                            300,
                            dns::RecordData::Cname(target.clone()),
                        )),
                        None => zone.add(dns::ResourceRecord::new(
                            plan.subdomain.clone(),
                            300,
                            dns::RecordData::A(res.ip),
                        )),
                    }
                    // Legitimate certificate issuance (multi-SAN background
                    // of Figure 20).
                    if org_rng.gen_bool(cfg.org_cert_probability) {
                        let sans = if org_rng.gen_bool(0.2) {
                            vec![Name::parse(&format!("*.{}", org.apex)).unwrap()]
                        } else {
                            vec![plan.subdomain.clone(), org.apex.clone()]
                        };
                        let ca = match org.caa {
                            CaaPolicy::PaidOnly => CaId::DigiCert,
                            CaaPolicy::FreeCa => CaId::LetsEncrypt,
                            CaaPolicy::None => *[
                                CaId::LetsEncrypt,
                                CaId::DigiCert,
                                CaId::AzureCa,
                                CaId::Sectigo,
                            ]
                            .choose(&mut org_rng)
                            .unwrap(),
                        };
                        if world.try_issue_cert(ca, account, &sans, now).is_ok() {
                            let renew = now + ca.validity_days() - 7;
                            if renew > now && renew <= horizon {
                                q.schedule(renew, Ev::OrgCertRenewal(idx));
                            }
                        }
                    }
                }
                Ev::OrgCertRenewal(idx) => {
                    let Some(rid) = plan_resource[idx] else {
                        continue;
                    };
                    let plan = &world.population.plans[idx];
                    if !world
                        .platform
                        .resource(rid)
                        .map(|r| r.is_active() && !r.owner.is_attacker())
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    let org = world.population.org(plan.org).clone();
                    let sans = vec![plan.subdomain.clone(), org.apex.clone()];
                    let ca = match org.caa {
                        CaaPolicy::PaidOnly => CaId::DigiCert,
                        _ => CaId::LetsEncrypt,
                    };
                    if world
                        .try_issue_cert(ca, AccountId::Org(org.id.0), &sans, now)
                        .is_ok()
                    {
                        let renew = now + ca.validity_days() - 7;
                        if renew <= horizon {
                            q.schedule(renew, Ev::OrgCertRenewal(idx));
                        }
                    }
                }
                Ev::Release(idx) => {
                    let Some(rid) = plan_resource[idx] else {
                        continue;
                    };
                    // The attacker may already own the name (only possible if
                    // the org re-registered; guard anyway).
                    if world
                        .platform
                        .resource(rid)
                        .map(|r| r.owner.is_attacker())
                        .unwrap_or(true)
                    {
                        continue;
                    }
                    world.platform.release(rid, now);
                    let plan = &world.population.plans[idx];
                    if plan.purge_record_on_release {
                        let sub = plan.subdomain.clone();
                        if let Some(z) = world.org_zones.find_zone_mut(&sub) {
                            z.remove_name(&sub);
                        }
                    } else {
                        let naming = cloudsim::provider::spec(plan.service).naming;
                        match naming {
                            NamingModel::Freetext => open_freetext.push(idx),
                            NamingModel::IpPool => open_ip.push(idx),
                            NamingModel::RandomName => {} // unguessable; dead end
                        }
                    }
                }
                Ev::AttackerWeek => {
                    // §4.3 economics: every open IP dangling is evaluated and
                    // declined.
                    for &idx in &open_ip {
                        let plan = &world.population.plans[idx];
                        let org = world.population.org(plan.org);
                        let pool_free = world
                            .platform
                            .pool(plan.service)
                            .map(|p| p.free_count())
                            .unwrap_or(0);
                        let d = cost_model.decide(plan.service, org.tranco_rank, pool_free);
                        debug_assert!(!d.proceeds());
                        ip_lottery_declines += 1;
                    }
                    open_ip.clear(); // evaluated once, never pursued

                    for ci in 0..world.campaigns.len() {
                        let campaign = world.campaigns[ci].clone();
                        if !campaign.is_active(now)
                            || campaign_state[ci].quota_used >= campaign.target_hijacks
                        {
                            continue;
                        }
                        let n = simcore::Poisson::new(campaign.hijacks_per_week)
                            .sample(&mut attacker_rng)
                            .min((campaign.target_hijacks - campaign_state[ci].quota_used) as u64);
                        for _ in 0..n {
                            if open_freetext.is_empty() {
                                break;
                            }
                            // Sample a few candidates; prefer reputation.
                            let k = 6.min(open_freetext.len());
                            let mut picks: Vec<usize> = (0..open_freetext.len()).collect();
                            picks.shuffle(&mut attacker_rng);
                            picks.truncate(k);
                            let best_pos = picks
                                .into_iter()
                                .max_by(|&a, &b| {
                                    let va = cost_model.domain_value(
                                        world
                                            .population
                                            .org(world.population.plans[open_freetext[a]].org)
                                            .tranco_rank,
                                    );
                                    let vb = cost_model.domain_value(
                                        world
                                            .population
                                            .org(world.population.plans[open_freetext[b]].org)
                                            .tranco_rank,
                                    );
                                    va.partial_cmp(&vb).unwrap()
                                })
                                .unwrap();
                            let plan_idx = open_freetext.swap_remove(best_pos);
                            let plan = world.population.plans[plan_idx].clone();
                            // Cooldown-blocked names free up later: keep the
                            // opportunity on the list (the §7 mitigation
                            // delays attackers, it does not erase targets).
                            if let Some(res) =
                                plan_resource[plan_idx].and_then(|rid| world.platform.resource(rid))
                            {
                                if let Some(name) = &res.name {
                                    if !world.platform.name_available(
                                        plan.service,
                                        name,
                                        plan.region.as_deref(),
                                        now,
                                    ) {
                                        open_freetext.push(plan_idx);
                                        continue;
                                    }
                                }
                            }
                            // Verify via the real scanning primitive.
                            let findings = {
                                let resolver = Resolver::new(world.dns());
                                scanner.scan(
                                    std::slice::from_ref(&plan.subdomain),
                                    &resolver,
                                    &world.platform,
                                    now,
                                )
                            };
                            let Some(finding) = findings.into_iter().next() else {
                                continue;
                            };
                            let account = campaign.account();
                            let Ok(rid) = world.platform.register(
                                finding.service,
                                Some(&finding.resource_name),
                                finding.region.as_deref(),
                                account,
                                now,
                                &mut attacker_rng,
                            ) else {
                                continue;
                            };
                            // Verify the takeover actually worked: the minted
                            // FQDN must be the one the victim's record points
                            // at. Under the randomized-names mitigation the
                            // platform mints something else and the attacker
                            // walks away (this is the §4.3 determinism check
                            // in action).
                            let got = world
                                .platform
                                .resource(rid)
                                .and_then(|r| r.generated_fqdn.clone());
                            if got.as_ref() != Some(&finding.cloud_fqdn) {
                                world.platform.release(rid, now);
                                continue;
                            }
                            world
                                .platform
                                .bind_custom_domain(rid, finding.victim_fqdn.clone());
                            let spec = campaign.make_abuse_spec(
                                &campaign_state[ci].hijacked_hosts,
                                &mut attacker_rng,
                            );
                            let content = contentgen::abuse::build_abuse_site(
                                &spec,
                                &finding.victim_fqdn.to_string(),
                                &mut attacker_rng,
                            );
                            world.platform.set_content(rid, content);
                            campaign_state[ci]
                                .hijacked_hosts
                                .push(finding.victim_fqdn.to_string());
                            campaign_state[ci].quota_used += 1;
                            // Certificate?
                            let in_boost =
                                now >= cfg.cert_boost_from && now <= cfg.cert_boost_until;
                            let p_cert = if in_boost {
                                0.75
                            } else {
                                campaign.cert_probability
                            };
                            let mut cert = None;
                            let mut cert_at = None;
                            if attacker_rng.gen_bool(p_cert) {
                                let ca = if attacker_rng.gen_bool(0.85) {
                                    CaId::LetsEncrypt
                                } else {
                                    CaId::ZeroSsl
                                };
                                match world.try_issue_cert(
                                    ca,
                                    account,
                                    std::slice::from_ref(&finding.victim_fqdn),
                                    now,
                                ) {
                                    Ok(id) => {
                                        cert = Some(id);
                                        cert_at = Some(now);
                                    }
                                    Err(certsim::IssueError::CaaForbids(_)) => {
                                        caa_blocked_certs += 1;
                                    }
                                    Err(_) => {}
                                }
                            }
                            // Malware droppers on gambling sites (§5.4).
                            if spec.topic == AbuseTopic::Gambling {
                                let arts = world.malware_model.sample_site(
                                    &finding.victim_fqdn,
                                    now,
                                    &mut attacker_rng,
                                );
                                world.binaries.extend(arts);
                            }
                            // Ground truth + remediation scheduling.
                            let org = world.population.org(plan.org).clone();
                            let delay =
                                remediation_delay(org.remediation_median_days, &mut attacker_rng);
                            let truth_idx = world.truth.len();
                            world.truth.push(HijackTruth {
                                victim_fqdn: finding.victim_fqdn.clone(),
                                cloud_fqdn: finding.cloud_fqdn.clone(),
                                org: org.id,
                                campaign: campaign.id,
                                service: finding.service,
                                resource: rid,
                                start: now,
                                end: None,
                                topic: spec.topic,
                                technique: spec.technique,
                                page_count: spec.page_count,
                                identifiers_embedded: !spec.links.phones.is_empty()
                                    || !spec.links.social.is_empty(),
                                cert,
                                cert_issued_at: cert_at,
                            });
                            truth_steals_cookies
                                .push(attacker_rng.gen_bool(cfg.cookie_stealer_probability));
                            let rem = now + delay;
                            if rem <= horizon {
                                q.schedule(rem, Ev::Remediate(truth_idx));
                            }
                            if now + 7 <= horizon {
                                q.schedule(now + 7, Ev::LivenessProbe(truth_idx));
                            }
                        }
                    }

                    // Cookie exfiltration on live stealer hijacks (§5.5).
                    for (ti, t) in world.truth.iter().enumerate() {
                        if t.end.is_some()
                            || !truth_steals_cookies.get(ti).copied().unwrap_or(false)
                        {
                            continue;
                        }
                        let class = world.capability_of(t.service);
                        let https = t.cert.is_some();
                        let visitors = world.weekly_visitors(t.org);
                        let fqdn = t.victim_fqdn.clone();
                        world.vault.simulate_visits(
                            &fqdn,
                            class,
                            https,
                            visitors,
                            0.02,
                            now,
                            &mut attacker_rng,
                        );
                    }
                }
                Ev::Remediate(truth_idx) => {
                    let fqdn = world.truth[truth_idx].victim_fqdn.clone();
                    if world.truth[truth_idx].end.is_some() {
                        continue;
                    }
                    if let Some(z) = world.org_zones.find_zone_mut(&fqdn) {
                        z.remove_name(&fqdn);
                    }
                    world.truth[truth_idx].end = Some(now);
                }
                Ev::BenignRefresh => {
                    refresh_round += 1;
                    // Parking rotations: all parked apexes of one registrar
                    // flip together (the Figure 10 confounder).
                    let parked: Vec<(Name, String)> = world
                        .population
                        .orgs
                        .iter()
                        .filter(|o| o.parked)
                        .map(|o| (o.apex.clone(), worldgen::org::registrar_name(o.registrar)))
                        .collect();
                    for (apex, provider) in parked {
                        if let Some(ip) = world.origins.ip_of(&apex) {
                            world.origins.host(
                                apex,
                                ip,
                                contentgen::benign::parked_site(&provider, refresh_round),
                            );
                        }
                    }
                    // A slice of org cloud sites get routine content updates;
                    // parked cloud sites rotate with their registrar.
                    let active: Vec<(ResourceId, usize)> = plan_resource
                        .iter()
                        .enumerate()
                        .filter_map(|(i, r)| r.map(|rid| (rid, i)))
                        .filter(|(rid, _)| {
                            world
                                .platform
                                .resource(*rid)
                                .map(|r| r.is_active() && !r.owner.is_attacker())
                                .unwrap_or(false)
                        })
                        .collect();
                    for (rid, idx) in active {
                        let plan = &world.population.plans[idx];
                        let org = world.population.org(plan.org).clone();
                        if org.parked {
                            world.platform.set_content(
                                rid,
                                contentgen::benign::parked_site(
                                    &worldgen::org::registrar_name(org.registrar),
                                    refresh_round,
                                ),
                            );
                            continue;
                        }
                        if !benign_rng.gen_bool(0.02) {
                            continue;
                        }
                        let content = contentgen::benign::benign_site(
                            contentgen::BenignKind::Corporate,
                            &org.name,
                            org.sector,
                            &plan.subdomain.to_string(),
                            &mut benign_rng,
                        );
                        world.platform.set_content(rid, content);
                    }
                }
                Ev::HistoricCertWave => {
                    // Figure 20's 2017 anomaly: single-SAN LE certs mass
                    // issued for subdomains that will later dangle. Appended
                    // directly to CT (pre-study history reconstruction; see
                    // DESIGN.md substitutions).
                    let candidates: Vec<Name> = world
                        .population
                        .plans
                        .iter()
                        .filter(|p| p.deterministically_hijackable())
                        .map(|p| p.subdomain.clone())
                        .collect();
                    let mut rng = tree.rng("scenario/certwave2017");
                    let n = (candidates.len() as f64 * 0.5) as usize;
                    let mut picks = candidates;
                    picks.shuffle(&mut rng);
                    picks.truncate(n);
                    for (i, fqdn) in picks.into_iter().enumerate() {
                        let id = world.fresh_cert_id();
                        let cert = certsim::Certificate {
                            id,
                            subject: fqdn.clone(),
                            sans: vec![fqdn],
                            issuer: if i % 20 == 0 {
                                CaId::ZeroSsl
                            } else {
                                CaId::LetsEncrypt
                            },
                            not_before: now,
                            not_after: now + 90,
                            requested_by: AccountId::Attacker(u32::MAX),
                        };
                        world.ct.append(cert, now + (i as i32 % 14));
                    }
                }
                Ev::LivenessProbe(truth_idx) => {
                    // §2's methodology comparison, run while the hijack is
                    // live: ICMP and TCP probe the resolved IP; HTTP carries
                    // the FQDN in the Host header.
                    let t = &world.truth[truth_idx];
                    let fqdn = t.victim_fqdn.clone();
                    let outcome = {
                        let resolver = Resolver::new(world.dns());
                        resolver.resolve_a(&fqdn, now)
                    };
                    let web = world.web();
                    use httpsim::{probe::probe, ProbeKind, ProbeResult};
                    let (icmp, tcp80, tcp443, http) = match outcome.addresses.first() {
                        Some(&ip) => (
                            probe(&web, ProbeKind::IcmpPing, ip, &fqdn.to_string(), now)
                                .considers_alive(),
                            probe(&web, ProbeKind::TcpConnect(80), ip, &fqdn.to_string(), now)
                                .considers_alive(),
                            probe(&web, ProbeKind::TcpConnect(443), ip, &fqdn.to_string(), now)
                                .considers_alive(),
                            matches!(
                                probe(
                                    &web,
                                    ProbeKind::Http { https: false },
                                    ip,
                                    &fqdn.to_string(),
                                    now
                                ),
                                ProbeResult::HttpResponse(_)
                            ),
                        ),
                        None => (false, false, false, false),
                    };
                    liveness.push(crate::report::LivenessSample {
                        icmp,
                        tcp80,
                        tcp443,
                        http,
                    });
                }
                Ev::MonitorWeek => {
                    // Grow the monitored set from the feed via Algorithm 1.
                    let new_entries = feed.discovered_between(last_feed_check, now);
                    last_feed_check = now;
                    pending_candidates.extend(new_entries);
                    if !pending_candidates.is_empty() {
                        let resolver = Resolver::new(world.dns());
                        let mut still_pending = Vec::new();
                        for fqdn in pending_candidates.drain(..) {
                            match collector.classify(&fqdn, &resolver, now) {
                                CloudPointer::NotCloud => {
                                    // Non-cloud entries are retried a couple
                                    // of times then dropped (cheap heuristic
                                    // for the paper's periodic re-checks).
                                    still_pending.push((fqdn, 1u8));
                                }
                                ptr => {
                                    if monitored_set.insert(fqdn.clone()) {
                                        monitored.push(fqdn);
                                        if let Some(s) = ptr.service() {
                                            *monitored_by_service.entry(s).or_insert(0) += 1;
                                        }
                                    }
                                }
                            }
                        }
                        // Single retry round for not-cloud outcomes.
                        pending_candidates.extend(
                            still_pending
                                .into_iter()
                                .filter(|(_, tries)| *tries == 0)
                                .map(|(f, _)| f),
                        );
                    }
                    // Weekly crawl of the monitored set.
                    {
                        let resolver = Resolver::new(world.dns());
                        let web = world.web();
                        for fqdn in &monitored {
                            let snap = {
                                let prev = store.latest(fqdn);
                                Crawler::sample(fqdn, &resolver, &web, prev, now)
                            };
                            if let Some(prev) = store.latest(fqdn) {
                                if let Some(rec) = diff_record(prev, snap.clone()) {
                                    changes.push(rec);
                                }
                            }
                            store.insert(snap);
                        }
                    }
                    monitored_monthly.add(
                        now.month_index(),
                        0.0, // touch the bucket; set below
                    );
                    let m = now.month_index();
                    let current = monitored.len() as f64;
                    // Record the max within the month (overwrites upward).
                    if monitored_monthly.get(m) < current {
                        let delta = current - monitored_monthly.get(m);
                        monitored_monthly.add(m, delta);
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // Retrospective detection pass (§3.2).
        // ------------------------------------------------------------------
        // Registrar rule-out first (Figure 10's machinery): clusters of
        // identical changes confined to one registrar are registrar-driven
        // (parking rotations) and are excluded from signature derivation and
        // matching.
        let registrar_of = |sld: &Name| -> Option<u16> {
            world
                .population
                .orgs
                .iter()
                .find(|o| &o.apex == sld)
                .map(|o| o.registrar.0)
        };
        let suspicious_all: Vec<ChangeRecord> = changes
            .iter()
            .filter(|c| is_suspicious(c))
            .cloned()
            .collect();
        let change_clusters = crate::benign::cluster_changes(&suspicious_all, registrar_of);
        let registrar_driven_fqdns: HashSet<Name> = change_clusters
            .iter()
            .filter(|c| c.fqdns.len() >= 2 && c.registrar_driven())
            .flat_map(|c| c.fqdns.iter().cloned())
            .collect();
        let changes_ruled: Vec<ChangeRecord> = changes
            .iter()
            .filter(|c| !registrar_driven_fqdns.contains(&c.fqdn))
            .cloned()
            .collect();
        let sigs = derive_signatures(&changes_ruled, cfg.min_signature_slds);
        // Benign corpus: latest snapshots of monitored FQDNs that never
        // produced a suspicious change.
        let suspicious_fqdns: HashSet<&Name> = changes
            .iter()
            .filter(|c| is_suspicious(c))
            .map(|c| &c.fqdn)
            .collect();
        let benign_corpus: Vec<&crate::snapshot::Snapshot> = store
            .iter()
            .filter(|s| !suspicious_fqdns.contains(&s.fqdn) && s.is_serving())
            .take(4000)
            .collect();
        let (signatures, signatures_discarded) = validate_signatures(sigs, &benign_corpus);

        // Match every suspicious change's after-snapshot.
        let mut abuse_map: BTreeMap<Name, AbuseRecord> = BTreeMap::new();
        for rec in changes_ruled.iter().filter(|c| is_suspicious(c)) {
            let matched = match_all(&signatures, &rec.after);
            if matched.is_empty() {
                continue;
            }
            let kinds: Vec<_> = matched.iter().map(|s| s.kind()).collect();
            let entry = abuse_map.entry(rec.fqdn.clone()).or_insert_with(|| {
                let sld = rec.fqdn.sld().unwrap_or_else(|| rec.fqdn.clone());
                let org = world
                    .population
                    .orgs
                    .iter()
                    .find(|o| o.apex == sld)
                    .map(|o| o.id);
                let service = fqdn_plan
                    .get(&rec.fqdn)
                    .map(|&i| world.population.plans[i].service);
                let topic = crate::classify::classify_topic(&rec.after);
                let techniques = crate::classify::detect_techniques(&rec.after);
                AbuseRecord {
                    fqdn: rec.fqdn.clone(),
                    sld,
                    org,
                    first_seen: rec.day,
                    corrected_at: None,
                    signature_kinds: Vec::new(),
                    topic,
                    techniques,
                    language: rec.after.language.clone(),
                    cname_target: rec.after.cname_target.clone(),
                    service,
                    sitemap_bytes: rec.after.sitemap_bytes,
                    page_count_est: rec
                        .after
                        .sitemap_bytes
                        .map(|b| b.saturating_sub(120) / 80)
                        .unwrap_or(0),
                    identifiers: rec.after.identifiers.clone(),
                    meta_keywords: rec.after.meta_keywords.clone(),
                    keywords: rec.after.keywords.clone(),
                    generator: rec.after.generator.clone(),
                    html: rec.after.html.clone(),
                }
            });
            for k in kinds {
                if !entry.signature_kinds.contains(&k) {
                    entry.signature_kinds.push(k);
                }
            }
        }
        // Correction times: the first unreachability/DNS-removal change after
        // first_seen.
        for rec in &changes {
            if !rec
                .kinds
                .iter()
                .any(|k| matches!(k, ChangeKind::BecameUnreachable | ChangeKind::Dns))
            {
                continue;
            }
            if let Some(a) = abuse_map.get_mut(&rec.fqdn) {
                if rec.day > a.first_seen && a.corrected_at.map(|c| rec.day < c).unwrap_or(true) {
                    a.corrected_at = Some(rec.day);
                }
            }
        }
        let abuse: Vec<AbuseRecord> = abuse_map.into_values().collect();

        // Detection evaluation against ground truth.
        let truth_fqdns: HashSet<&Name> = world.truth.iter().map(|t| &t.victim_fqdn).collect();
        let detected_fqdns: HashSet<&Name> = abuse.iter().map(|a| &a.fqdn).collect();
        let tp = detected_fqdns.intersection(&truth_fqdns).count();
        let detection = DetectionEval {
            true_positives: tp,
            false_positives: detected_fqdns.len() - tp,
            false_negatives: truth_fqdns.len() - tp,
        };

        StudyResults {
            scale: cfg.world.scale,
            horizon,
            monitored_monthly: monitored_monthly.dense(),
            feed_size: feed.len(),
            monitored_total: monitored.len(),
            monitored_by_service,
            abuse,
            signatures,
            signatures_discarded,
            change_clusters,
            changes_total: changes.len(),
            world,
            detection,
            ip_lottery_declines,
            caa_blocked_certs,
            changes,
            liveness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A very small but complete end-to-end run.
    fn small_results() -> StudyResults {
        let mut cfg = ScenarioConfig::at_scale(800);
        cfg.world.n_fortune1000 = 60;
        cfg.world.n_global500 = 30;
        cfg.seed = 7;
        Scenario::new(cfg).run()
    }

    #[test]
    fn end_to_end_detects_hijacks() {
        let r = small_results();
        assert!(r.monitored_total > 100, "monitored {}", r.monitored_total);
        assert!(!r.world.truth.is_empty(), "attackers must hijack something");
        assert!(!r.abuse.is_empty(), "pipeline must detect something");
        // Detection quality: the signature pipeline should be precise and
        // catch a majority of the hijacks.
        assert!(
            r.detection.precision() > 0.9,
            "precision {}",
            r.detection.precision()
        );
        assert!(
            r.detection.recall() > 0.5,
            "recall {} (tp={} fn={})",
            r.detection.recall(),
            r.detection.true_positives,
            r.detection.false_negatives
        );
    }

    #[test]
    fn no_ip_takeovers_and_declines_counted() {
        let r = small_results();
        // §4.3: every hijack used a freetext resource.
        for t in &r.world.truth {
            assert_eq!(
                cloudsim::provider::spec(t.service).naming,
                NamingModel::Freetext,
                "{:?}",
                t.service
            );
        }
        assert!(r.ip_lottery_declines > 0, "IP danglings must be evaluated");
    }

    #[test]
    fn monitored_grows_over_time() {
        let r = small_results();
        let series = &r.monitored_monthly;
        assert!(series.len() > 12);
        let first = series.iter().find(|(_, v)| *v > 0.0).unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last > first, "feed growth: {first} -> {last}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_results();
        let b = small_results();
        assert_eq!(a.world.truth.len(), b.world.truth.len());
        assert_eq!(a.abuse.len(), b.abuse.len());
        assert_eq!(a.monitored_total, b.monitored_total);
    }
}
