//! Attacker-infrastructure clustering (§6, Figures 21/22/26/27/28).
//!
//! From the abused pages: extract identifier classes, build the identifier
//! co-occurrence graph over hijacked domains, and run average-linkage
//! hierarchical clustering on the Jaccard distance of per-identifier domain
//! sets, cut at 0.95 — the paper's exact recipe.

use analysis::{jaccard_distance, CoOccurrenceGraph, Dendrogram};
use attacker::CampaignIdentifiers;
use dns::Name;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The paper's dendrogram cutoff.
pub const CUTOFF: f64 = 0.95;

/// Input: one abused domain with its extracted (tagged) identifiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainIdentifiers {
    pub fqdn: Name,
    pub identifiers: Vec<String>,
}

/// One identifier cluster (candidate attacker infrastructure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfraCluster {
    /// Tagged identifiers in the cluster.
    pub identifiers: Vec<String>,
    /// Hijacked domains associated with any member identifier.
    pub domains: Vec<Name>,
}

/// Full §6 clustering output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfraReport {
    pub clusters: Vec<InfraCluster>,
    /// Domains covered by at least one identifier.
    pub covered_domains: usize,
    /// Total distinct identifiers.
    pub identifier_count: usize,
    /// Graph stats for Figure 27.
    pub graph_nodes: usize,
    pub graph_edges: usize,
    pub graph_components: usize,
    /// Phone country distribution (Figure 21).
    pub phone_countries: Vec<(String, usize)>,
    /// Backend-IP hosting orgs and geos (Figure 26).
    pub ip_orgs: Vec<(String, usize)>,
    pub ip_geos: Vec<(String, usize)>,
}

/// Run the full clustering, serial. Equivalent to
/// [`cluster_infrastructure_par`] with one thread.
pub fn cluster_infrastructure(domains: &[DomainIdentifiers]) -> InfraReport {
    cluster_infrastructure_par(domains, 1)
}

/// Run the full clustering with the HAC distance-matrix fill fanned out over
/// `threads` workers ([`Dendrogram::build_par`]). The fill is the O(n²)
/// hot spot at study scale; everything else (graph, aggregations) is cheap
/// and already iterates `BTreeMap`s, so the report is byte-identical for any
/// thread count.
pub fn cluster_infrastructure_par(domains: &[DomainIdentifiers], threads: usize) -> InfraReport {
    // Identifier -> set of domain indices.
    let mut domain_ids: BTreeMap<Name, u32> = BTreeMap::new();
    for d in domains {
        let next = domain_ids.len() as u32;
        domain_ids.entry(d.fqdn.clone()).or_insert(next);
    }
    let mut ident_domains: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for d in domains {
        let did = domain_ids[&d.fqdn];
        for ident in &d.identifiers {
            ident_domains.entry(ident.clone()).or_default().insert(did);
        }
    }
    let idents: Vec<String> = ident_domains.keys().cloned().collect();
    let sets: Vec<Vec<u32>> = idents
        .iter()
        .map(|i| ident_domains[i].iter().copied().collect())
        .collect();
    let covered: BTreeSet<u32> = sets.iter().flatten().copied().collect();

    // Co-occurrence graph (Figure 27): per-domain identifier lists.
    let ident_index: BTreeMap<&String, usize> =
        idents.iter().enumerate().map(|(i, s)| (s, i)).collect();
    let items: Vec<Vec<usize>> = domains
        .iter()
        .map(|d| {
            let mut v: Vec<usize> = d
                .identifiers
                .iter()
                .filter_map(|i| ident_index.get(i).copied())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let graph = CoOccurrenceGraph::from_items(idents.len(), &items);
    let components = graph.components();

    // Hierarchical clustering at the 0.95 cutoff (Figure 28 → Figure 22).
    let clusters_idx: Vec<Vec<usize>> = if idents.is_empty() {
        Vec::new()
    } else {
        let dend = Dendrogram::build_par(idents.len(), threads, |a, b| {
            jaccard_distance(&sets[a], &sets[b])
        });
        dend.cut(CUTOFF)
    };
    let id_by_index: BTreeMap<u32, &Name> = domain_ids.iter().map(|(n, i)| (*i, n)).collect();
    let mut clusters: Vec<InfraCluster> = clusters_idx
        .into_iter()
        .map(|members| {
            let identifiers: Vec<String> = members.iter().map(|&i| idents[i].clone()).collect();
            let mut dset: BTreeSet<u32> = BTreeSet::new();
            for &i in &members {
                dset.extend(sets[i].iter().copied());
            }
            InfraCluster {
                identifiers,
                domains: dset.iter().map(|d| id_by_index[d].clone()).collect(),
            }
        })
        .collect();
    clusters.sort_by(|a, b| {
        b.domains
            .len()
            .cmp(&a.domains.len())
            .then_with(|| b.identifiers.len().cmp(&a.identifiers.len()))
            .then_with(|| a.identifiers.cmp(&b.identifiers))
    });

    // Figure 21 / 26 aggregations from the tagged identifiers.
    let mut phone_countries: BTreeMap<String, usize> = BTreeMap::new();
    let mut ip_orgs: BTreeMap<String, usize> = BTreeMap::new();
    let mut ip_geos: BTreeMap<String, usize> = BTreeMap::new();
    for ident in &idents {
        if let Some(p) = ident.strip_prefix("phone:") {
            *phone_countries
                .entry(CampaignIdentifiers::phone_country(p).to_string())
                .or_insert(0) += 1;
        } else if let Some(ips) = ident.strip_prefix("ip:") {
            if let Ok(ip) = ips.parse::<Ipv4Addr>() {
                if let Some((org, geo)) = CampaignIdentifiers::ip_hosting(ip) {
                    *ip_orgs.entry(org.to_string()).or_insert(0) += 1;
                    *ip_geos.entry(geo.to_string()).or_insert(0) += 1;
                } else {
                    *ip_orgs.entry("Unknown".into()).or_insert(0) += 1;
                    *ip_geos.entry("Unknown".into()).or_insert(0) += 1;
                }
            }
        }
    }
    let sort_desc = |m: BTreeMap<String, usize>| {
        let mut v: Vec<(String, usize)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    };

    InfraReport {
        covered_domains: covered.len(),
        identifier_count: idents.len(),
        graph_nodes: graph.node_count(),
        graph_edges: graph.edge_count(),
        graph_components: components.len(),
        clusters,
        phone_countries: sort_desc(phone_countries),
        ip_orgs: sort_desc(ip_orgs),
        ip_geos: sort_desc(ip_geos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(fqdn: &str, ids: &[&str]) -> DomainIdentifiers {
        DomainIdentifiers {
            fqdn: fqdn.parse().unwrap(),
            identifiers: ids.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn recovers_two_campaigns() {
        // Campaign A identifiers co-occur on domains 1-3; campaign B on 4-5.
        let domains = vec![
            d("a.v1.com", &["phone:62111", "social:t.me/aaa"]),
            d("b.v2.com", &["phone:62111", "short:bit.ly/x"]),
            d("c.v3.com", &["social:t.me/aaa", "short:bit.ly/x"]),
            d("e.v4.com", &["phone:855222", "ip:198.51.100.9"]),
            d("f.v5.com", &["phone:855222", "ip:198.51.100.9"]),
            d("g.v6.com", &[]), // uncovered
        ];
        let r = cluster_infrastructure(&domains);
        assert_eq!(r.identifier_count, 5);
        assert_eq!(r.covered_domains, 5);
        assert_eq!(r.graph_components, 2);
        assert_eq!(r.clusters.len(), 2);
        // Sorted by domain count: A (3 domains) first.
        assert_eq!(r.clusters[0].domains.len(), 3);
        assert_eq!(r.clusters[0].identifiers.len(), 3);
        assert_eq!(r.clusters[1].domains.len(), 2);
    }

    #[test]
    fn loner_identifiers_stay_single() {
        let domains = vec![
            d("a.v1.com", &["phone:62111"]),
            d("b.v2.com", &["phone:62999"]),
        ];
        let r = cluster_infrastructure(&domains);
        assert_eq!(r.clusters.len(), 2);
        assert!(r.clusters.iter().all(|c| c.identifiers.len() == 1));
    }

    #[test]
    fn geo_aggregations() {
        let domains = vec![
            d(
                "a.v1.com",
                &["phone:62111", "phone:855222", "ip:198.51.100.9"],
            ),
            d("b.v2.com", &["phone:62333", "ip:192.0.2.77"]),
        ];
        let r = cluster_infrastructure(&domains);
        let indo = r
            .phone_countries
            .iter()
            .find(|(c, _)| c == "Indonesia")
            .unwrap();
        assert_eq!(indo.1, 2);
        assert!(r.phone_countries.iter().any(|(c, _)| c == "Cambodia"));
        assert!(r.ip_geos.iter().any(|(g, _)| g == "US"));
        assert!(r.ip_geos.iter().any(|(g, _)| g == "FR"));
    }

    #[test]
    fn empty_input() {
        let r = cluster_infrastructure(&[]);
        assert_eq!(r.clusters.len(), 0);
        assert_eq!(r.covered_domains, 0);
        assert_eq!(r.graph_components, 0);
    }

    #[test]
    fn parallel_report_matches_serial() {
        let domains: Vec<DomainIdentifiers> = (0..40)
            .map(|i| {
                d(
                    &format!("h{i}.v{}.com", i % 9),
                    &[
                        &format!("phone:62{}", i % 6),
                        &format!("social:t.me/c{}", i % 4),
                    ],
                )
            })
            .collect();
        let serial = cluster_infrastructure(&domains);
        for threads in [2, 8] {
            let par = cluster_infrastructure_par(&domains, threads);
            assert_eq!(par.clusters.len(), serial.clusters.len());
            for (a, b) in par.clusters.iter().zip(&serial.clusters) {
                assert_eq!(a.identifiers, b.identifiers, "threads={threads}");
                assert_eq!(a.domains, b.domains, "threads={threads}");
            }
            assert_eq!(par.phone_countries, serial.phone_countries);
        }
    }

    #[test]
    fn identical_domain_sets_merge_at_zero_distance() {
        let domains = vec![
            d("a.v1.com", &["phone:1", "phone:2"]),
            d("b.v2.com", &["phone:1", "phone:2"]),
        ];
        let r = cluster_infrastructure(&domains);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].identifiers.len(), 2);
    }
}
