use dangling_core::{Scenario, ScenarioConfig};
use std::collections::HashSet;

fn main() {
    let mut cfg = ScenarioConfig::at_scale(800);
    cfg.world.n_fortune1000 = 60;
    cfg.world.n_global500 = 30;
    cfg.seed = 7;
    let r = Scenario::new(cfg).run();
    let detected: HashSet<_> = r.abuse.iter().map(|a| a.fqdn.clone()).collect();
    println!(
        "truth={} detected={} sigs={} discarded={}",
        r.world.truth.len(),
        r.abuse.len(),
        r.signatures.len(),
        r.signatures_discarded
    );
    for s in &r.signatures {
        println!(
            "SIG kw={:?} sitemap={:?} markers={:?} ids={} members={}",
            s.keywords,
            s.min_sitemap_bytes,
            s.script_markers,
            s.requires_identifiers,
            s.source_members
        );
    }
    for t in &r.world.truth {
        let hit = detected.contains(&t.victim_fqdn);
        if !hit {
            // find change records for this fqdn
            let recs: Vec<_> = r
                .changes
                .iter()
                .filter(|c| c.fqdn == t.victim_fqdn)
                .collect();
            println!(
                "MISSED {} topic={:?} tech={:?} start={} end={:?} changes={}",
                t.victim_fqdn,
                t.topic,
                t.technique,
                t.start,
                t.end,
                recs.len()
            );
            for c in recs {
                println!(
                    "   day={} kinds={:?} kw={:?} meta={:?} sm={:?} serving={}",
                    c.day,
                    c.kinds,
                    c.after.keywords,
                    c.after.meta_keywords,
                    c.after.sitemap_bytes,
                    c.after.is_serving()
                );
            }
        }
    }
}
