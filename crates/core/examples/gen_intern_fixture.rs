//! Regenerate the `intern_equivalence` golden fixture.
//!
//! The fixture freezes the serialized `StudyResults` of the **pre-interning
//! string pipeline** (PR 9 semantics) for the small differential config that
//! `parallel_equivalence` also uses. The interned pipeline must keep
//! reproducing these exact bytes in every mode and at every thread count —
//! that is the headline contract of the FQDN-interning change.
//!
//! ```sh
//! cargo run --release -p dangling-core --example gen_intern_fixture
//! ```
//!
//! Only rerun this when the *study semantics* change intentionally (a new
//! stage, changed world model); never to paper over an interning
//! regression — the whole point of the fixture is that interning is a pure
//! representation change.

//! Two artifacts are written:
//!
//! - `results.digest` — `<byte length> <FNV-1a 64>` of the full serialized
//!   `StudyResults`: the byte-exact pin (the full JSON is ~8 MB — too heavy
//!   to commit).
//! - `results.head.json` — the same document minus the bulky `changes`
//!   array, committed in full so a divergence is diffable by eye.

use dangling_core::scenario::{Scenario, ScenarioConfig};

/// FNV-1a over the serialized document — same hash family the pipeline uses
/// for body hashes and view stamps.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The differential config: the same small-but-complete world
/// `parallel_equivalence` runs, with the transient-failure model on so the
/// RNG-keyed crawl path is part of the contract.
pub fn fixture_config() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = 1;
    cfg.crawl_failure_rate = 0.02;
    cfg.latency_profile = "zero".into();
    cfg
}

fn main() {
    let results = Scenario::new(fixture_config()).run();
    let json = serde_json::to_string(&results).expect("results serialize");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/intern_eq");
    std::fs::create_dir_all(&dir).expect("create fixture dir");

    let digest = format!("{} {:016x}\n", json.len(), fnv1a(json.as_bytes()));
    std::fs::write(dir.join("results.digest"), &digest).expect("write digest");

    let mut doc: serde_json::Value = serde_json::from_str(&json).expect("reparse");
    if let serde_json::Value::Object(fields) = &mut doc {
        fields.retain(|(k, _)| k != "changes");
    }
    let head = serde_json::to_string_pretty(&doc).expect("head serializes");
    std::fs::write(dir.join("results.head.json"), &head).expect("write head");

    println!(
        "wrote {}: digest {} / head {} bytes (full doc {} bytes)",
        dir.display(),
        digest.trim(),
        head.len(),
        json.len()
    );
}
