//! Property tests for the signature pipeline's determinism and safety
//! contracts (§3.2):
//!
//! - `derive_signatures` is invariant under input shuffling — it sorts its
//!   suspicious records by `(day, fqdn)` internally, and the pipeline
//!   guarantees that key is unique (one change per FQDN per round), so the
//!   generated records keep `(day, fqdn)` pairs unique too;
//! - a signature that survives `validate_signatures` never matches any
//!   document of the benign corpus it was validated against — the paper's
//!   "discard those that fire" loop, stated as an invariant;
//! - the sharded validation path is byte-identical to the serial one for
//!   any thread count;
//! - [`SignatureFold`] is *prefix-consistent*: folding the suspicious
//!   stream round by round yields, at every round boundary, exactly the
//!   signatures the batch derivation computes over the concatenated prefix —
//!   the invariant the incremental retro pass is built on;
//! - interrupting the fold at a round boundary and resuming from a cloned
//!   snapshot of its state is invisible in the derived signatures.

use dangling_core::diff::{ChangeKind, ChangeRecord};
use dangling_core::pipeline::ShardedExecutor;
use dangling_core::signature::{
    derive_signatures, is_suspicious, validate_signatures, validate_signatures_sharded,
    SignatureFold,
};
use dangling_core::snapshot::Snapshot;
use dns::Rcode;
use proptest::prelude::*;
use simcore::SimTime;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates from a seed.
fn shuffled<T>(mut v: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..v.len()).rev() {
        seed = splitmix(seed);
        v.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    v
}

/// Campaign vocabulary pools: records drawing from the same pool overlap
/// enough (≥ 0.5) to land in one derivation group; different pools do not.
const POOLS: &[&[&str]] = &[
    &["slot", "judi", "gacor", "daftar"],
    &["premium", "domains", "sale", "offer"],
    &["casino", "poker", "bonus", "spin"],
    &["replica", "watches", "luxury", "outlet"],
];

fn snap(fqdn: &str, kws: &[String], sitemap: Option<u64>, ids: &[String]) -> Snapshot {
    let mut s = Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(10), Rcode::NoError, None);
    s.http_status = Some(200);
    s.index_hash = 42;
    s.keywords = kws.to_vec();
    s.sitemap_bytes = sitemap;
    s.identifiers = ids.to_vec();
    s
}

/// One generated change: pool choice, which 3 of the pool's 4 words, a
/// mass-upload flag, and an identifier flag.
type ChangeSpec = (usize, usize, bool, bool);

/// Materialize specs as records with *unique* `(day, fqdn)` pairs: the FQDN
/// embeds the record index (every change record in one pipeline round has a
/// distinct FQDN), days cycle over a few rounds.
fn build_changes(specs: &[ChangeSpec]) -> Vec<ChangeRecord> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(pool, skip, huge, with_ids))| {
            let pool = POOLS[pool % POOLS.len()];
            let kws: Vec<String> = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != skip % pool.len())
                .map(|(_, w)| w.to_string())
                .collect();
            let fqdn = format!("h{i}.apex{}.com", i % 7);
            let ids: Vec<String> = if with_ids {
                vec![format!("phone:62{}", i % 3)]
            } else {
                Vec::new()
            };
            ChangeRecord {
                fqdn: fqdn.parse().unwrap(),
                day: SimTime(10 + (i as i32 % 4) * 7),
                kinds: vec![ChangeKind::BecameReachable],
                before_language: None,
                before_sitemap_bytes: None,
                before_serving: false,
                before_keywords: Vec::new(),
                after: snap(&fqdn, &kws, huge.then_some(800_000), &ids),
            }
        })
        .collect()
}

fn arb_specs() -> impl Strategy<Value = Vec<ChangeSpec>> {
    proptest::collection::vec(
        (0usize..POOLS.len(), 0usize..4, any::<bool>(), any::<bool>()),
        0..40,
    )
}

/// Benign documents: arbitrary keyword mixes, some drawn from the campaign
/// pools (so validation actually kills signatures sometimes).
fn arb_benign() -> impl Strategy<Value = Vec<Snapshot>> {
    proptest::collection::vec(
        (
            0usize..POOLS.len(),
            proptest::collection::vec("[a-z]{3,8}", 0..4),
            any::<bool>(),
            any::<bool>(),
        ),
        0..20,
    )
    .prop_map(|docs| {
        docs.into_iter()
            .enumerate()
            .map(|(i, (pool, extra, from_pool, huge))| {
                let mut kws: Vec<String> = extra;
                if from_pool {
                    kws.extend(POOLS[pool].iter().map(|w| w.to_string()));
                }
                snap(
                    &format!("benign{i}.other.com"),
                    &kws,
                    huge.then_some(900_000),
                    &[],
                )
            })
            .collect()
    })
}

/// The suspicious stream exactly as the pipeline delivers it to the
/// incremental retro pass: suspicious records only, batched into rounds by
/// strictly increasing day, FQDN-sorted within each round.
fn rounds_in_arrival_order(changes: &[ChangeRecord]) -> Vec<Vec<&ChangeRecord>> {
    let mut suspicious: Vec<&ChangeRecord> =
        changes.iter().filter(|rec| is_suspicious(rec)).collect();
    suspicious.sort_by(|a, b| (a.day, &a.fqdn).cmp(&(b.day, &b.fqdn)));
    let mut rounds: Vec<Vec<&ChangeRecord>> = Vec::new();
    for rec in suspicious {
        match rounds.last_mut() {
            Some(round) if round[0].day == rec.day => round.push(rec),
            _ => rounds.push(vec![rec]),
        }
    }
    rounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shuffling the change set never changes the derived signature list —
    /// not just the set: ids, ordering and source counts are all identical,
    /// because derivation canonicalizes on the unique `(day, fqdn)` key.
    #[test]
    fn derivation_invariant_under_shuffle(specs in arb_specs(), seed in any::<u64>()) {
        let changes = build_changes(&specs);
        let reference = derive_signatures(&changes, 2);
        let perm = shuffled(changes, seed);
        prop_assert_eq!(derive_signatures(&perm, 2), reference);
    }

    /// Every signature that survives validation is *safe*: it matches no
    /// document of the corpus it was validated against. And the counts add
    /// up — kept + discarded = derived.
    #[test]
    fn validated_signatures_never_match_benign(specs in arb_specs(), benign in arb_benign()) {
        let sigs = derive_signatures(&build_changes(&specs), 2);
        let total = sigs.len();
        let corpus: Vec<&Snapshot> = benign.iter().collect();
        let (kept, discarded) = validate_signatures(sigs, &corpus);
        prop_assert_eq!(kept.len() + discarded, total);
        for sig in &kept {
            for doc in &corpus {
                prop_assert!(
                    !sig.matches(doc),
                    "validated signature {} still fires on {}",
                    sig.id,
                    doc.fqdn
                );
            }
        }
    }

    /// The sharded validation path returns exactly the serial result for
    /// any thread count.
    #[test]
    fn sharded_validation_matches_serial(
        specs in arb_specs(),
        benign in arb_benign(),
        threads in 1usize..9,
    ) {
        let sigs = derive_signatures(&build_changes(&specs), 2);
        let corpus: Vec<&Snapshot> = benign.iter().collect();
        let (kept_serial, disc_serial) = validate_signatures(sigs.clone(), &corpus);
        let exec = ShardedExecutor::new(threads, dangling_core::exec_metric_names!("test.sigprop"));
        let (kept_par, disc_par) = validate_signatures_sharded(sigs, &corpus, &exec);
        prop_assert_eq!(kept_par, kept_serial);
        prop_assert_eq!(disc_par, disc_serial);
    }

    /// Prefix-consistency: after every round the streaming fold's signatures
    /// equal the batch derivation over the concatenation of all rounds so
    /// far. This is the exact invariant that makes the incremental retro
    /// pass's final results byte-identical to the batch pass.
    #[test]
    fn fold_is_prefix_consistent_at_every_round_boundary(specs in arb_specs()) {
        let changes = build_changes(&specs);
        let rounds = rounds_in_arrival_order(&changes);
        let mut fold = SignatureFold::new();
        let mut prefix: Vec<ChangeRecord> = Vec::new();
        for round in &rounds {
            for rec in round {
                fold.push(rec);
                prefix.push((*rec).clone());
            }
            prop_assert_eq!(
                fold.signatures(2),
                derive_signatures(&prefix, 2),
                "fold diverged from batch derivation after day {}",
                round[0].day.0
            );
        }
    }

    /// Interrupting the fold at any round boundary and resuming from a
    /// cloned snapshot of its state is invisible: the resumed fold derives
    /// exactly the signatures of the uninterrupted one. This is what lets a
    /// killed `--persist --incremental` run resume mid-study.
    #[test]
    fn fold_resume_at_round_boundary_is_invisible(specs in arb_specs(), cut in any::<usize>()) {
        let changes = build_changes(&specs);
        let rounds = rounds_in_arrival_order(&changes);
        let cut = if rounds.is_empty() { 0 } else { cut % (rounds.len() + 1) };

        let mut straight = SignatureFold::new();
        for rec in rounds.iter().flatten() {
            straight.push(rec);
        }

        let mut first = SignatureFold::new();
        for rec in rounds[..cut].iter().flatten() {
            first.push(rec);
        }
        let mut resumed = first.clone();
        for rec in rounds[cut..].iter().flatten() {
            resumed.push(rec);
        }

        prop_assert_eq!(resumed.group_count(), straight.group_count());
        prop_assert_eq!(resumed.len(), straight.len());
        prop_assert_eq!(resumed.signatures(2), straight.signatures(2));
    }
}

/// Regression pin for the incremental pass's validation shortcut: a
/// [`ShardedExecutor`] constructed with one thread takes the serial path,
/// and its sharded validation must be *exactly* `validate_signatures` — not
/// merely equivalent under reordering.
#[test]
fn one_thread_sharded_validation_is_the_serial_function() {
    let specs: Vec<ChangeSpec> = (0..24)
        .map(|i| (i % 4, i % 3, i % 5 == 0, i % 2 == 0))
        .collect();
    let sigs = derive_signatures(&build_changes(&specs), 2);
    assert!(!sigs.is_empty(), "pin needs signatures to validate");
    let benign: Vec<Snapshot> = (0..12)
        .map(|i| {
            let kws: Vec<String> = POOLS[i % POOLS.len()]
                .iter()
                .map(|w| w.to_string())
                .collect();
            snap(
                &format!("pin{i}.other.com"),
                &kws,
                (i % 2 == 0).then_some(900_000),
                &[],
            )
        })
        .collect();
    let corpus: Vec<&Snapshot> = benign.iter().collect();
    let (kept_serial, disc_serial) = validate_signatures(sigs.clone(), &corpus);
    assert!(disc_serial > 0, "pin needs the corpus to kill signatures");
    let exec = ShardedExecutor::new(1, dangling_core::exec_metric_names!("test.sigpin"));
    let (kept_one, disc_one) = validate_signatures_sharded(sigs, &corpus, &exec);
    assert_eq!(kept_one, kept_serial);
    assert_eq!(disc_one, disc_serial);
}
