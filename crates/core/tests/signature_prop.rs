//! Property tests for the signature pipeline's determinism and safety
//! contracts (§3.2):
//!
//! - `derive_signatures` is invariant under input shuffling — it sorts its
//!   suspicious records by `(day, fqdn)` internally, and the pipeline
//!   guarantees that key is unique (one change per FQDN per round), so the
//!   generated records keep `(day, fqdn)` pairs unique too;
//! - a signature that survives `validate_signatures` never matches any
//!   document of the benign corpus it was validated against — the paper's
//!   "discard those that fire" loop, stated as an invariant;
//! - the sharded validation path is byte-identical to the serial one for
//!   any thread count.

use dangling_core::diff::{ChangeKind, ChangeRecord};
use dangling_core::pipeline::ShardedExecutor;
use dangling_core::signature::{
    derive_signatures, validate_signatures, validate_signatures_sharded,
};
use dangling_core::snapshot::Snapshot;
use dns::Rcode;
use proptest::prelude::*;
use simcore::SimTime;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates from a seed.
fn shuffled<T>(mut v: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..v.len()).rev() {
        seed = splitmix(seed);
        v.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    v
}

/// Campaign vocabulary pools: records drawing from the same pool overlap
/// enough (≥ 0.5) to land in one derivation group; different pools do not.
const POOLS: &[&[&str]] = &[
    &["slot", "judi", "gacor", "daftar"],
    &["premium", "domains", "sale", "offer"],
    &["casino", "poker", "bonus", "spin"],
    &["replica", "watches", "luxury", "outlet"],
];

fn snap(fqdn: &str, kws: &[String], sitemap: Option<u64>, ids: &[String]) -> Snapshot {
    let mut s = Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(10), Rcode::NoError, None);
    s.http_status = Some(200);
    s.index_hash = 42;
    s.keywords = kws.to_vec();
    s.sitemap_bytes = sitemap;
    s.identifiers = ids.to_vec();
    s
}

/// One generated change: pool choice, which 3 of the pool's 4 words, a
/// mass-upload flag, and an identifier flag.
type ChangeSpec = (usize, usize, bool, bool);

/// Materialize specs as records with *unique* `(day, fqdn)` pairs: the FQDN
/// embeds the record index (every change record in one pipeline round has a
/// distinct FQDN), days cycle over a few rounds.
fn build_changes(specs: &[ChangeSpec]) -> Vec<ChangeRecord> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(pool, skip, huge, with_ids))| {
            let pool = POOLS[pool % POOLS.len()];
            let kws: Vec<String> = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != skip % pool.len())
                .map(|(_, w)| w.to_string())
                .collect();
            let fqdn = format!("h{i}.apex{}.com", i % 7);
            let ids: Vec<String> = if with_ids {
                vec![format!("phone:62{}", i % 3)]
            } else {
                Vec::new()
            };
            ChangeRecord {
                fqdn: fqdn.parse().unwrap(),
                day: SimTime(10 + (i as i32 % 4) * 7),
                kinds: vec![ChangeKind::BecameReachable],
                before_language: None,
                before_sitemap_bytes: None,
                before_serving: false,
                before_keywords: Vec::new(),
                after: snap(&fqdn, &kws, huge.then_some(800_000), &ids),
            }
        })
        .collect()
}

fn arb_specs() -> impl Strategy<Value = Vec<ChangeSpec>> {
    proptest::collection::vec(
        (0usize..POOLS.len(), 0usize..4, any::<bool>(), any::<bool>()),
        0..40,
    )
}

/// Benign documents: arbitrary keyword mixes, some drawn from the campaign
/// pools (so validation actually kills signatures sometimes).
fn arb_benign() -> impl Strategy<Value = Vec<Snapshot>> {
    proptest::collection::vec(
        (
            0usize..POOLS.len(),
            proptest::collection::vec("[a-z]{3,8}", 0..4),
            any::<bool>(),
            any::<bool>(),
        ),
        0..20,
    )
    .prop_map(|docs| {
        docs.into_iter()
            .enumerate()
            .map(|(i, (pool, extra, from_pool, huge))| {
                let mut kws: Vec<String> = extra;
                if from_pool {
                    kws.extend(POOLS[pool].iter().map(|w| w.to_string()));
                }
                snap(
                    &format!("benign{i}.other.com"),
                    &kws,
                    huge.then_some(900_000),
                    &[],
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shuffling the change set never changes the derived signature list —
    /// not just the set: ids, ordering and source counts are all identical,
    /// because derivation canonicalizes on the unique `(day, fqdn)` key.
    #[test]
    fn derivation_invariant_under_shuffle(specs in arb_specs(), seed in any::<u64>()) {
        let changes = build_changes(&specs);
        let reference = derive_signatures(&changes, 2);
        let perm = shuffled(changes, seed);
        prop_assert_eq!(derive_signatures(&perm, 2), reference);
    }

    /// Every signature that survives validation is *safe*: it matches no
    /// document of the corpus it was validated against. And the counts add
    /// up — kept + discarded = derived.
    #[test]
    fn validated_signatures_never_match_benign(specs in arb_specs(), benign in arb_benign()) {
        let sigs = derive_signatures(&build_changes(&specs), 2);
        let total = sigs.len();
        let corpus: Vec<&Snapshot> = benign.iter().collect();
        let (kept, discarded) = validate_signatures(sigs, &corpus);
        prop_assert_eq!(kept.len() + discarded, total);
        for sig in &kept {
            for doc in &corpus {
                prop_assert!(
                    !sig.matches(doc),
                    "validated signature {} still fires on {}",
                    sig.id,
                    doc.fqdn
                );
            }
        }
    }

    /// The sharded validation path returns exactly the serial result for
    /// any thread count.
    #[test]
    fn sharded_validation_matches_serial(
        specs in arb_specs(),
        benign in arb_benign(),
        threads in 1usize..9,
    ) {
        let sigs = derive_signatures(&build_changes(&specs), 2);
        let corpus: Vec<&Snapshot> = benign.iter().collect();
        let (kept_serial, disc_serial) = validate_signatures(sigs.clone(), &corpus);
        let exec = ShardedExecutor::new(threads, dangling_core::exec_metric_names!("test.sigprop"));
        let (kept_par, disc_par) = validate_signatures_sharded(sigs, &corpus, &exec);
        prop_assert_eq!(kept_par, kept_serial);
        prop_assert_eq!(disc_par, disc_serial);
    }
}
