//! §7 mitigation experiments as tests: each recommendation the paper makes,
//! run against the same world with and without the mitigation.

use dangling_core::{Scenario, ScenarioConfig};

fn cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(1000);
    cfg.world.n_fortune1000 = 50;
    cfg.world.n_global500 = 25;
    cfg.seed = seed;
    cfg
}

#[test]
fn baseline_has_hijacks() {
    let r = Scenario::new(cfg(41)).run();
    assert!(
        r.world.truth.len() >= 3,
        "baseline world must be attackable, got {}",
        r.world.truth.len()
    );
}

#[test]
fn randomized_identifiers_eliminate_the_attack() {
    let mut c = cfg(41);
    c.platform.randomize_freetext_names = true;
    let r = Scenario::new(c).run();
    assert_eq!(r.world.truth.len(), 0);
}

#[test]
fn cooldown_reduces_hijacks() {
    let base = Scenario::new(cfg(43)).run().world.truth.len();
    let mut c = cfg(43);
    c.platform.reregistration_cooldown_days = 365 * 4; // longer than the study
    let mitigated = Scenario::new(c).run().world.truth.len();
    assert!(
        mitigated < base,
        "4-year cooldown must reduce hijacks: {base} -> {mitigated}"
    );
}

#[test]
fn no_releases_means_no_danglings_means_no_hijacks() {
    // The causal chain of §1, run backwards: without released-but-unpurged
    // resources there is nothing to hijack. ("Purge stale DNS records.")
    let base = Scenario::new(cfg(47)).run();
    assert!(!base.world.truth.is_empty());
    let mut c = cfg(47);
    c.world.plan.release_probability = 0.0;
    let r = Scenario::new(c).run();
    assert_eq!(r.world.truth.len(), 0);
}

#[test]
fn monitoring_cadence_tradeoff() {
    // Weekly vs monthly crawls: recall of short-lived hijacks drops with
    // coarser cadence — the paper's weekly choice matters.
    let weekly = Scenario::new(cfg(53)).run();
    let mut c = cfg(53);
    c.monitor_interval_days = 28;
    let monthly = Scenario::new(c).run();
    assert!(
        monthly.detection.recall() <= weekly.detection.recall() + 0.05,
        "monthly {} vs weekly {}",
        monthly.detection.recall(),
        weekly.detection.recall()
    );
}
