//! The causal-trace contract (DESIGN.md §12), in two layers:
//!
//! - **End to end** — a wan-profile run with causal tracing on yields
//!   traces whose children are enclosed by their root span in virtual
//!   time, whose roots decompose exactly into queue-wait + service, and
//!   whose per-round critical path accounts for ≥95% of the round's
//!   virtual makespan (it is 1.0 by construction; the slack keeps the
//!   assertion honest if the decomposition ever gains a rounding step).
//! - **Property layer** — arbitrary trace forests emitted through the real
//!   [`obs::TraceCtx`] machinery export Perfetto flow arrows with globally
//!   unique ids, every `s`/`f` pair matched, and enclosure preserved
//!   through the emit → flush → export path.
//!
//! The causal sink is process-global, so every test that touches it holds
//! [`GLOBAL`] for its full duration.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use obs::causal::{SALT_DNS, SALT_ROOT};
use obs::{CausalSpan, TraceCtx};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Serializes access to the process-global causal sink across the tests in
/// this binary.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Parse the full Chrome-trace document and return the flow-event ids:
/// `(starts, finishes)` in document order.
fn flow_ids(doc: &str) -> (Vec<String>, Vec<String>) {
    let v: serde_json::Value = serde_json::from_str(doc).expect("trace JSON parses");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let mut starts = Vec::new();
    let mut finishes = Vec::new();
    for e in events {
        match e["ph"].as_str() {
            Some("s") => starts.push(e["id"].as_str().expect("flow id").to_string()),
            Some("f") => finishes.push(e["id"].as_str().expect("flow id").to_string()),
            _ => {}
        }
    }
    (starts, finishes)
}

fn assert_unique_matched_flows(doc: &str) {
    let (starts, finishes) = flow_ids(doc);
    let start_set: BTreeSet<&String> = starts.iter().collect();
    let finish_set: BTreeSet<&String> = finishes.iter().collect();
    assert_eq!(start_set.len(), starts.len(), "duplicate flow-start ids");
    assert_eq!(
        finish_set.len(),
        finishes.len(),
        "duplicate flow-finish ids"
    );
    assert_eq!(start_set, finish_set, "unmatched flow arrow endpoints");
}

/// Every child span must name an emitted root as parent and sit inside its
/// virtual-time window; every root must decompose exactly.
fn assert_causally_consistent(spans: &[CausalSpan]) {
    let roots: BTreeMap<u64, &CausalSpan> = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| (s.span_id, s))
        .collect();
    for s in spans {
        match s.parent {
            None => {
                assert_eq!(
                    s.queue_wait_ns + s.service_ns,
                    s.dur_ns,
                    "root {} ({}) does not decompose: {} + {} != {}",
                    s.fqdn,
                    s.trace.0,
                    s.queue_wait_ns,
                    s.service_ns,
                    s.dur_ns
                );
            }
            Some(p) => {
                let root = roots
                    .get(&p)
                    .unwrap_or_else(|| panic!("child {} has no emitted root", s.name));
                assert_eq!(root.trace, s.trace, "parent link crossed traces");
                assert!(
                    s.start_ns >= root.start_ns && s.end_ns() <= root.end_ns(),
                    "child {} [{}, {}] escapes root {} [{}, {}]",
                    s.name,
                    s.start_ns,
                    s.end_ns(),
                    root.fqdn,
                    root.start_ns,
                    root.end_ns()
                );
            }
        }
    }
}

/// End to end: a wan-profile run produces enclosed, exactly-decomposed
/// traces whose critical path explains each round's virtual makespan.
#[test]
fn wan_run_traces_decompose_the_round_makespan() {
    let _g = lock();
    obs::take_causal();
    obs::set_trace_sample(1);
    obs::set_causal_tracing(true);
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = 2;
    cfg.crawl_failure_rate = 0.02;
    cfg.latency_profile = "wan".into();
    let results = Scenario::new(cfg).max_rounds(20).run();
    obs::set_causal_tracing(false);
    let spans = obs::take_causal();
    assert!(results.monitored_total > 0, "run monitored nothing");
    assert!(!spans.is_empty(), "wan run emitted no causal spans");
    assert!(
        spans.iter().any(|s| s.name == "dns.query"),
        "no DNS child spans"
    );
    assert!(
        spans.iter().any(|s| s.name == "probe.connect"),
        "no connect child spans"
    );
    assert!(
        spans.iter().any(|s| s.name == "probe.request"),
        "no request child spans"
    );

    assert_causally_consistent(&spans);

    let rounds = obs::critical_paths(&spans, 5);
    assert!(!rounds.is_empty(), "no per-round critical paths");
    for rcp in &rounds {
        assert!(
            rcp.decomposed_fraction >= 0.95,
            "day {}: critical trace explains only {:.1}% of the {}ns makespan",
            rcp.day,
            rcp.decomposed_fraction * 100.0,
            rcp.makespan_ns
        );
        assert!(
            !rcp.top.is_empty() && rcp.top[0].fqdn == rcp.critical.fqdn,
            "day {}: top-K is not headed by the critical trace",
            rcp.day
        );
        assert_eq!(
            rcp.queue_wait_total_ns + rcp.service_total_ns,
            spans_total_for_day(&spans, rcp.day),
            "day {}: totals drifted from the root spans",
            rcp.day
        );
    }

    let mut buf = Vec::new();
    obs::write_chrome_trace_with_causal(&[], &spans, &mut buf).expect("export");
    assert_unique_matched_flows(&String::from_utf8(buf).expect("utf8 trace"));
}

fn spans_total_for_day(spans: &[CausalSpan], day: i64) -> u64 {
    spans
        .iter()
        .filter(|s| s.parent.is_none() && s.day == day)
        .map(|s| s.dur_ns)
        .sum()
}

/// One synthetic trace: a root window plus a chain of sequential child
/// waits, each `(gap_before_ns, dur_ns)`.
type TraceSpec = (u64, i64, Vec<(u64, u64)>);

fn arb_forest() -> impl Strategy<Value = Vec<TraceSpec>> {
    proptest::collection::vec(
        (
            0u64..100_000,
            0i64..6,
            proptest::collection::vec((0u64..1_000, 1u64..10_000), 0..6),
        ),
        1..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary trace forests pushed through the real emit → flush →
    /// export path keep children enclosed and export flow arrows with
    /// globally unique, fully matched ids.
    #[test]
    fn emitted_forests_export_unique_flows_and_enclosed_children(forest in arb_forest()) {
        let _g = lock();
        obs::take_causal();
        for (i, (base_ns, day, waits)) in forest.iter().enumerate() {
            let fqdn = format!("prop{i}.example");
            let tid = obs::trace_id(&fqdn, *day);
            let ctx = TraceCtx::root(tid, *base_ns, *day);
            let dns = ctx.child(SALT_DNS, *base_ns);
            let mut elapsed = 0u64;
            for (j, (gap, dur)) in waits.iter().enumerate() {
                dns.emit_child(j as u64, "dns.query", base_ns + elapsed + gap, *dur, Vec::new());
                elapsed += gap + dur;
            }
            obs::causal::emit(CausalSpan {
                trace: tid,
                span_id: obs::causal::span_id(tid, SALT_ROOT, 0),
                parent: None,
                name: "crawl",
                fqdn,
                day: *day,
                start_ns: 0,
                dur_ns: base_ns + elapsed,
                queue_wait_ns: *base_ns,
                service_ns: elapsed,
                args: Vec::new(),
            });
        }
        let spans = obs::take_causal();
        prop_assert_eq!(
            spans.len(),
            forest.iter().map(|(_, _, w)| w.len() + 1).sum::<usize>()
        );
        assert_causally_consistent(&spans);

        let mut buf = Vec::new();
        obs::write_chrome_trace_with_causal(&[], &spans, &mut buf).expect("export");
        let doc = String::from_utf8(buf).expect("utf8 trace");
        assert_unique_matched_flows(&doc);

        // Exactly one flow arrow lands on every child span: the arrow id
        // *is* the destination span id, so the start-id set equals the
        // child span-id set.
        let (starts, _) = flow_ids(&doc);
        let children: BTreeSet<String> = spans
            .iter()
            .filter(|s| s.parent.is_some())
            .map(|s| format!("{:#018x}", s.span_id))
            .collect();
        prop_assert_eq!(starts.into_iter().collect::<BTreeSet<_>>(), children);
    }

    /// Span ids never collide across the forest — the uniqueness the flow
    /// arrows rely on.
    #[test]
    fn span_ids_are_unique_across_traces(forest in arb_forest()) {
        let mut seen = BTreeSet::new();
        for (i, (_, day, waits)) in forest.iter().enumerate() {
            let tid = obs::trace_id(&format!("prop{i}.example"), *day);
            prop_assert!(seen.insert(obs::causal::span_id(tid, SALT_ROOT, 0)));
            for j in 0..waits.len() {
                prop_assert!(seen.insert(obs::causal::span_id(tid, SALT_DNS, j as u64)));
            }
        }
    }
}
