//! Corruption-injection matrix for the v2 binary storelog.
//!
//! Every injected corruption must end in one of two outcomes:
//!
//! - **healed** — torn-tail recovery rolls the dir back to the newest fully
//!   consistent commit, and what remains decodes to an exact per-shard
//!   prefix of the pristine history, or
//! - **rejected** — opening or decoding fails with a hard checksum/format
//!   error.
//!
//! Never a third outcome: silently decoding different history. Bit flips
//! and truncations are caught by the frame checksums (healed); splices of
//! *individually checksum-valid* frames — duplicate, remove, reorder,
//! cross-shard import — are the interesting half, caught structurally by
//! the codec's intern/chain/membership validations (rejected).

use dangling_core::pipeline::obs_codec::ShardCodec;
use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::snapshot::fqdn_shard;
use dangling_core::PersistOptions;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use storelog::frame;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("slcorr_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(3000);
    cfg.world.n_fortune1000 = 20;
    cfg.world.n_global500 = 10;
    cfg.seed = 5;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// One v2 recording of eight rounds, shared (read-only) by every test.
fn recorded() -> &'static TempDir {
    static DIR: OnceLock<TempDir> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = TempDir::new("rec");
        let mut opts = PersistOptions::new(&dir.0);
        opts.max_rounds = Some(8);
        Scenario::new(study_cfg(2))
            .run_persisted(&opts)
            .expect("recording run");
        dir
    })
}

fn copy_dir(src: &Path, tag: &str) -> TempDir {
    let dst = TempDir::new(tag);
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.0.join(entry.file_name())).unwrap();
    }
    dst
}

/// Decode a dir's whole committed history exactly like resume replay does:
/// per-shard streaming `ShardCodec` decode plus the FQDN shard-membership
/// check. Returns the per-shard record history (JSON-serialized for
/// comparison) or the first hard error.
fn decode_all(dir: &Path) -> Result<Vec<Vec<String>>, String> {
    let reader = storelog::LogReader::open(dir).map_err(|e| e.to_string())?;
    let shards = reader.shard_count();
    let mut out = Vec::with_capacity(shards);
    for shard in 0..shards {
        let stream = reader.stream_shard(shard).map_err(|e| e.to_string())?;
        let mut codec = ShardCodec::new();
        let mut recs = Vec::new();
        for payload in stream.iter() {
            let rec = codec
                .decode(payload)
                .map_err(|e| format!("shard {shard}: {e}"))?;
            if fqdn_shard(&rec.snap.fqdn, shards) != shard {
                return Err(format!(
                    "shard {shard}: record for {} belongs elsewhere",
                    rec.snap.fqdn
                ));
            }
            recs.push(serde_json::to_string(&rec).unwrap());
        }
        out.push(recs);
    }
    Ok(out)
}

fn pristine() -> &'static Vec<Vec<String>> {
    static P: OnceLock<Vec<Vec<String>>> = OnceLock::new();
    P.get_or_init(|| decode_all(&recorded().0).expect("pristine dir decodes"))
}

/// The two legal outcomes; anything else (silently different history)
/// panics with a description of the divergence.
fn assert_healed_or_rejected(dir: &Path, what: &str) {
    match decode_all(dir) {
        Err(_) => {} // rejected — a hard error, never wrong data
        Ok(shards) => {
            let good = pristine();
            assert_eq!(shards.len(), good.len(), "{what}: shard count changed");
            for (s, (got, want)) in shards.iter().zip(good).enumerate() {
                assert!(
                    got.len() <= want.len() && got[..] == want[..got.len()],
                    "{what}: shard {s} decoded {} records that are not a \
                     prefix of the pristine history — silent corruption",
                    got.len()
                );
            }
        }
    }
}

/// The busiest shard (most committed bytes) and its path.
fn busiest_shard(dir: &Path) -> (usize, PathBuf) {
    (0..16)
        .map(|i| (i, dir.join(format!("shard-{i:03}.seg"))))
        .max_by_key(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .unwrap()
}

fn flip_byte(path: &Path, offset: u64, mask: u8) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ mask]).unwrap();
}

#[test]
fn bit_flips_without_checksum_fixup_heal_or_reject() {
    let (_, seg) = busiest_shard(&recorded().0);
    let seg_name = seg.file_name().unwrap().to_owned();
    let len = std::fs::metadata(&seg).unwrap().len();
    assert!(
        len > frame::HEADER_LEN as u64 * 3,
        "busiest shard too small"
    );
    // Length header, checksum, record tag, varint region, mid-file, tail.
    let offsets = [
        0,
        5,
        frame::HEADER_LEN as u64,
        frame::HEADER_LEN as u64 + 3,
        len / 2,
        len - 1,
    ];
    for off in offsets {
        let dir = copy_dir(&recorded().0, "flip");
        flip_byte(&dir.0.join(&seg_name), off, 0x10);
        assert_healed_or_rejected(&dir.0, &format!("segment flip at {off}"));
    }
    // Same treatment for the commit log.
    let clen = std::fs::metadata(recorded().0.join("commits.log"))
        .unwrap()
        .len();
    for off in [2, clen / 2, clen - 1] {
        let dir = copy_dir(&recorded().0, "cflip");
        flip_byte(&dir.0.join("commits.log"), off, 0x10);
        assert_healed_or_rejected(&dir.0, &format!("commit flip at {off}"));
    }
}

#[test]
fn truncations_heal_at_any_cut_point() {
    let (_, seg) = busiest_shard(&recorded().0);
    let seg_name = seg.file_name().unwrap().to_owned();
    let bytes = std::fs::read(&seg).unwrap();
    // An exact frame boundary, a cut mid-frame, and a near-total loss.
    let scan = frame::scan(&bytes, 0);
    assert!(scan.frames.len() >= 3);
    let cuts = [scan.frames[1].end, scan.frames[2].end - 3, 1];
    for cut in cuts {
        let dir = copy_dir(&recorded().0, "trunc");
        OpenOptions::new()
            .write(true)
            .open(dir.0.join(&seg_name))
            .unwrap()
            .set_len(cut)
            .unwrap();
        assert_healed_or_rejected(&dir.0, &format!("segment truncated to {cut}"));
    }
    let clen = std::fs::metadata(recorded().0.join("commits.log"))
        .unwrap()
        .len();
    for cut in [clen - 3, clen / 2] {
        let dir = copy_dir(&recorded().0, "ctrunc");
        OpenOptions::new()
            .write(true)
            .open(dir.0.join("commits.log"))
            .unwrap()
            .set_len(cut)
            .unwrap();
        assert_healed_or_rejected(&dir.0, &format!("commit log truncated to {cut}"));
    }
}

// ---------------------------------------------------------------------------
// Frame-granularity splices: every frame individually checksum-valid, and
// the commit log rewritten so the offsets are consistent too — the frame
// layer sees nothing wrong. Only the codec's structural validations stand
// between such a dir and silently wrong history.
// ---------------------------------------------------------------------------

/// Rewrite one shard's committed frame list through `mangle`, then replace
/// `commits.log` with a single commit whose offsets match the rewritten
/// segments exactly (carrying over the original final checkpoint payload).
fn splice(dir: &Path, shard: usize, mangle: impl FnOnce(&mut Vec<Vec<u8>>)) {
    let reader = storelog::LogReader::open(dir).unwrap();
    let shards = reader.shard_count();
    let app = reader.last_commit().unwrap().app.clone();
    let mut segments: Vec<Vec<Vec<u8>>> = (0..shards)
        .map(|s| {
            let stream = reader.stream_shard(s).unwrap();
            stream.iter().map(<[u8]>::to_vec).collect()
        })
        .collect();
    drop(reader);
    mangle(&mut segments[shard]);

    let mut offsets = Vec::with_capacity(shards);
    for (s, payloads) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        for p in payloads {
            frame::encode_into(p, &mut bytes);
        }
        offsets.push(bytes.len() as u64);
        std::fs::write(dir.join(format!("shard-{s:03}.seg")), bytes).unwrap();
    }
    let mut commit = Vec::new();
    commit.extend_from_slice(&(shards as u32).to_le_bytes());
    for o in &offsets {
        commit.extend_from_slice(&o.to_le_bytes());
    }
    commit.extend_from_slice(&app);
    let mut log = Vec::new();
    frame::encode_into(&commit, &mut log);
    std::fs::write(dir.join("commits.log"), log).unwrap();
}

/// Index of the first delta record (tag 0x02) in a shard's frame list.
fn first_delta(payloads: &[Vec<u8>]) -> usize {
    payloads
        .iter()
        .position(|p| p.first() == Some(&0x02))
        .expect("an 8-round shard holds delta records")
}

#[test]
fn duplicated_delta_frame_is_rejected() {
    let (shard, _) = busiest_shard(&recorded().0);
    let dir = copy_dir(&recorded().0, "dup_delta");
    splice(&dir.0, shard, |frames| {
        let i = first_delta(frames);
        let copy = frames[i].clone();
        frames.insert(i + 1, copy);
    });
    let err = decode_all(&dir.0).expect_err("duplicated delta must not decode");
    assert!(err.contains("chain check"), "unexpected rejection: {err}");
}

#[test]
fn duplicated_full_frame_is_rejected() {
    let (shard, _) = busiest_shard(&recorded().0);
    let dir = copy_dir(&recorded().0, "dup_full");
    splice(&dir.0, shard, |frames| {
        let copy = frames[0].clone();
        assert_eq!(copy[0], 0x01, "first frame of a shard is a full record");
        frames.insert(1, copy);
    });
    decode_all(&dir.0).expect_err("duplicated full record must not decode");
}

#[test]
fn removed_leading_frame_is_rejected() {
    let (shard, _) = busiest_shard(&recorded().0);
    let dir = copy_dir(&recorded().0, "rm");
    splice(&dir.0, shard, |frames| {
        frames.remove(0);
    });
    decode_all(&dir.0).expect_err("removing a committed frame must not decode");
}

#[test]
fn reordered_frames_are_rejected() {
    // Move an FQDN's delta in front of its full record: the delta now
    // references a name the stream has not defined yet (or chains to the
    // wrong predecessor) — a hard structural error either way.
    let (shard, _) = busiest_shard(&recorded().0);
    let dir = copy_dir(&recorded().0, "reorder");
    splice(&dir.0, shard, |frames| {
        let i = first_delta(frames);
        let delta = frames.remove(i);
        frames.insert(0, delta);
    });
    decode_all(&dir.0).expect_err("reordered frames must not decode");
}

#[test]
fn cross_shard_frame_import_is_rejected() {
    // A frame lifted verbatim from another shard's segment is individually
    // well-formed but belongs to a different partition. Two independent
    // defenses stand in its way: the foreign record's inline intern
    // definitions collide with strings the receiving shard already
    // interned, and even when they don't, the decoded FQDN fails the
    // replay path's shard-membership check.
    let (shard, _) = busiest_shard(&recorded().0);
    let donor = (0..16)
        .find(|&s| {
            s != shard
                && std::fs::metadata(recorded().0.join(format!("shard-{s:03}.seg")))
                    .map(|m| m.len() > frame::HEADER_LEN as u64)
                    .unwrap_or(false)
        })
        .expect("another populated shard exists");
    let donor_bytes = std::fs::read(recorded().0.join(format!("shard-{donor:03}.seg"))).unwrap();
    let foreign = frame::payloads(&donor_bytes, 0)
        .next()
        .expect("donor shard has frames")
        .to_vec();
    let dir = copy_dir(&recorded().0, "xshard");
    splice(&dir.0, shard, |frames| frames.push(foreign));
    let err = decode_all(&dir.0).expect_err("cross-shard frame must not decode");
    assert!(
        err.contains("belongs") || err.contains("duplicate"),
        "unexpected rejection: {err}"
    );

    // Second leg: a synthetic foreign record whose gibberish labels cannot
    // collide with anything interned — it decodes cleanly, so only the
    // membership check stands, and it must fire.
    use dangling_core::pipeline::persist::ObsRecord;
    use dangling_core::snapshot::Snapshot;
    let foreign_name: dns::Name = (0..)
        .map(|i| format!("zzqx{i}.vvkw{i}.qqjj{i}"))
        .map(|s| dns::Name::parse(&s).unwrap())
        .find(|n| fqdn_shard(n, 16) != shard)
        .unwrap();
    let rec = ObsRecord {
        round: simcore::SimTime(0),
        seq: 0,
        snap: Snapshot::unreachable(
            foreign_name,
            simcore::SimTime(0),
            dns::Rcode::NxDomain,
            None,
        ),
        change: None,
    };
    let mut codec = ShardCodec::new();
    let mut payload = Vec::new();
    codec.encode_into(&rec, &mut payload);
    let dir = copy_dir(&recorded().0, "xshard2");
    splice(&dir.0, shard, |frames| frames.push(payload));
    let err = decode_all(&dir.0).expect_err("foreign-partition record must not decode");
    assert!(err.contains("belongs"), "unexpected rejection: {err}");
}

#[test]
fn spliced_dir_refuses_resume_with_a_decode_error() {
    // End to end: the full resume path (not just the decode helper) must
    // surface a spliced dir as a hard PersistError instead of replaying it.
    let (shard, _) = busiest_shard(&recorded().0);
    let dir = copy_dir(&recorded().0, "resume");
    splice(&dir.0, shard, |frames| {
        let i = first_delta(frames);
        let copy = frames[i].clone();
        frames.insert(i + 1, copy);
    });
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let err = match Scenario::new(study_cfg(2)).run_persisted(&opts) {
        Ok(_) => panic!("resume on a spliced dir must fail"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("decode"),
        "expected a decode error, got: {err}"
    );
}

#[test]
fn forged_checksum_mutations_never_panic() {
    // Out of the corruption threat model (an adversary rewriting checksums
    // is modification, not corruption) but the decoder must still be total:
    // flip payload bytes, recompute the frame checksum so the frame layer
    // accepts it, and require decode to return Ok-or-Err — never panic,
    // never allocate unboundedly.
    let (_, seg) = busiest_shard(&recorded().0);
    let seg_name = seg.file_name().unwrap().to_owned();
    let bytes = std::fs::read(&seg).unwrap();
    let scan = frame::scan(&bytes, 0);
    let target = &scan.frames[first_delta(
        &scan
            .frames
            .iter()
            .map(|f| f.payload.clone())
            .collect::<Vec<_>>(),
    )];
    let start = target.end as usize - target.payload.len();
    for i in (0..target.payload.len()).step_by(3) {
        let dir = copy_dir(&recorded().0, "forge");
        let mut mutated = bytes.clone();
        mutated[start + i] ^= 0x2d;
        let payload = &mutated[start..start + target.payload.len()];
        let sum = frame::fnv64(payload).to_le_bytes();
        mutated[start - 8..start].copy_from_slice(&sum);
        std::fs::write(dir.0.join(&seg_name), &mutated).unwrap();
        // Must return (healed, rejected, or — since the checksum was forged
        // — decoded-with-forged-bytes); panicking fails the test.
        let _ = decode_all(&dir.0);
    }
}
