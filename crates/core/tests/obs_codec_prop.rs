//! Property tests for the v2 binary `ObsRecord` codec: streamed
//! encode→decode identity over arbitrary record sequences (unicode strings,
//! max-length names, None-heavy snapshots, change metadata), intern
//! determinism, and totality of the decoder under truncation.

use dangling_core::diff::ChangeKind;
use dangling_core::pipeline::obs_codec::ShardCodec;
use dangling_core::pipeline::persist::{ChangeMeta, ObsRecord};
use dangling_core::snapshot::Snapshot;
use dns::{Name, Rcode};
use proptest::prelude::*;
use simcore::SimTime;
use std::net::Ipv4Addr;

/// Arbitrary valid names: 1–4 labels over the accepted alphabet, plus a
/// slot for maximum-length labels (63 chars — the DNS wire limit edge).
fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        4 => proptest::collection::vec("[a-z0-9_-]{1,12}", 1..5)
            .prop_map(|l| Name::parse(&l.join(".")).expect("valid labels")),
        1 => proptest::collection::vec("[a-z]{63}", 1..4)
            .prop_map(|l| Name::parse(&l.join(".")).expect("valid max labels")),
    ]
}

fn arb_rcode() -> impl Strategy<Value = Rcode> {
    prop_oneof![
        Just(Rcode::NoError),
        Just(Rcode::NxDomain),
        Just(Rcode::ServFail),
        Just(Rcode::Refused),
    ]
}

/// Snapshots over the full field surface: unicode titles/html, optional
/// everything, arbitrary 64-bit hashes and sitemap sizes (including
/// `u64::MAX`, which must not overflow the varint paths).
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        (
            arb_name(),
            0i32..3000,
            arb_rcode(),
            proptest::option::of(arb_name()),
            proptest::option::of(any::<[u8; 4]>()),
            proptest::option::of(100u16..600),
            any::<u64>(),
            any::<u32>(),
        ),
        (
            proptest::option::of("\\PC{0,24}"),
            proptest::option::of("[a-z]{2}"),
            proptest::collection::vec("[a-z]{2,10}", 0..5),
            proptest::collection::vec("[a-z]{2,10}", 0..4),
            proptest::option::of("[A-Za-z0-9 .]{0,16}"),
            proptest::option::of(any::<u64>()),
            proptest::collection::vec("[a-z/.:]{3,20}", 0..4),
            proptest::option::of("\\PC{0,60}"),
        ),
    )
        .prop_map(
            |(
                (fqdn, day, rcode, cname, ip, status, hash, size),
                (title, language, keywords, meta, generator, sitemap, srcs, html),
            )| {
                let mut s = Snapshot::unreachable(fqdn, SimTime(day), rcode, None);
                s.cname_target = cname;
                s.ip = ip.map(Ipv4Addr::from);
                s.http_status = status;
                s.index_hash = hash;
                s.index_size = size;
                s.title = title;
                s.language = language;
                s.keywords = keywords.clone();
                s.meta_keywords = meta;
                s.generator = generator;
                s.sitemap_bytes = sitemap;
                s.script_srcs = srcs;
                s.identifiers = keywords; // reuse: interned lists may repeat
                s.html = html;
                s
            },
        )
}

fn arb_change() -> impl Strategy<Value = ChangeMeta> {
    (
        proptest::collection::vec(0u8..8, 1..4),
        proptest::option::of("[a-z]{2}"),
        proptest::option::of(any::<u64>()),
        any::<bool>(),
        proptest::collection::vec("[a-z]{2,8}", 0..4),
    )
        .prop_map(|(codes, lang, sitemap, serving, kws)| ChangeMeta {
            kinds: codes
                .into_iter()
                .map(|c| {
                    [
                        ChangeKind::Dns,
                        ChangeKind::HttpStatus,
                        ChangeKind::Content,
                        ChangeKind::Language,
                        ChangeKind::SitemapAppeared,
                        ChangeKind::SitemapGrew,
                        ChangeKind::BecameUnreachable,
                        ChangeKind::BecameReachable,
                    ][c as usize]
                })
                .collect(),
            before_language: lang,
            before_sitemap_bytes: sitemap,
            before_serving: serving,
            before_keywords: kws,
        })
}

fn arb_stream() -> impl Strategy<Value = Vec<ObsRecord>> {
    proptest::collection::vec(
        (
            arb_snapshot(),
            proptest::option::of(arb_change()),
            any::<u32>(),
        ),
        1..24,
    )
    .prop_map(|items| {
        // Repeated FQDNs across the stream are likely and intended: later
        // records of the same name become deltas automatically.
        items
            .into_iter()
            .map(|(snap, change, seq)| ObsRecord {
                round: SimTime(snap.day.0),
                seq: seq % 10_000,
                snap,
                change,
            })
            .collect()
    })
}

fn assert_records_equal(a: &ObsRecord, b: &ObsRecord) {
    // ObsRecord has no PartialEq; JSON is its canonical equality surface
    // (it is what the v1 log stored).
    assert_eq!(
        serde_json::to_string(a).unwrap(),
        serde_json::to_string(b).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Streamed encode→decode identity: any record sequence round-trips
    /// byte-exactly through one shard's codec context, in order.
    #[test]
    fn stream_roundtrips(records in arb_stream()) {
        let mut enc = ShardCodec::new();
        let mut payloads = Vec::new();
        for r in &records {
            let mut buf = Vec::new();
            enc.encode_into(r, &mut buf);
            payloads.push(buf);
        }
        let mut dec = ShardCodec::new();
        for (r, p) in records.iter().zip(&payloads) {
            let back = dec.decode(p).expect("own payload decodes");
            assert_records_equal(&back, r);
        }
        prop_assert_eq!(enc.observed_names(), dec.observed_names());
    }

    /// Intern determinism: encoding the same stream through two fresh
    /// contexts yields byte-identical payloads (table ids depend only on
    /// stream content and order, never on hash-map iteration or timing).
    #[test]
    fn encoding_is_deterministic(records in arb_stream()) {
        let (mut a, mut b) = (ShardCodec::new(), ShardCodec::new());
        for r in &records {
            let (mut pa, mut pb) = (Vec::new(), Vec::new());
            a.encode_into(r, &mut pa);
            b.encode_into(r, &mut pb);
            prop_assert_eq!(pa, pb);
        }
    }

    /// Totality under truncation: every proper prefix of a valid payload
    /// must decode to an error (never panic, never a record).
    #[test]
    fn truncated_payloads_error(records in arb_stream()) {
        let mut enc = ShardCodec::new();
        let mut dec = ShardCodec::new();
        for r in &records {
            let mut buf = Vec::new();
            enc.encode_into(r, &mut buf);
            // Decode prefixes against a clone so the real context advances
            // only by the intact payload.
            for cut in [0, buf.len() / 2, buf.len().saturating_sub(1)] {
                if cut < buf.len() {
                    let mut probe = dec.clone();
                    prop_assert!(probe.decode(&buf[..cut]).is_err());
                }
            }
            dec.decode(&buf).expect("intact payload decodes");
        }
    }

    /// Replaying an encoded stream into a second encoder reproduces the
    /// original encoder's context: re-encoding the next record yields the
    /// same bytes (the resume writer-handoff invariant).
    #[test]
    fn decode_rebuilds_the_encoder_context(records in arb_stream()) {
        let mut enc = ShardCodec::new();
        let mut dec = ShardCodec::new();
        let mut last = None;
        for r in &records {
            let mut buf = Vec::new();
            enc.encode_into(r, &mut buf);
            dec.decode(&buf).expect("decodes");
            last = Some(r);
        }
        if let Some(r) = last {
            // One more observation of the final record's FQDN, a week on.
            let mut next = r.clone();
            next.snap.day = SimTime(next.snap.day.0 + 7);
            next.round = SimTime(next.round.0 + 7);
            let (mut via_enc, mut via_dec) = (Vec::new(), Vec::new());
            enc.encode_into(&next, &mut via_enc);
            dec.encode_into(&next, &mut via_dec);
            prop_assert_eq!(via_enc, via_dec);
        }
    }
}
