//! Property tests for the detection pipeline: keyword extraction, diffing,
//! signature matching, the capability model, and the serde round-trips the
//! persistence log depends on.

use dangling_core::capability::{can_steal_cookie, capabilities};
use dangling_core::diff::{diff, ChangeKind};
use dangling_core::keywords::{cluster_key, extract_keywords, overlap, rank_tokens};
use dangling_core::signature::Signature;
use dangling_core::snapshot::{body_hash, Snapshot};
use dns::{Name, Rcode};
use proptest::prelude::*;
use simcore::SimTime;
use std::net::Ipv4Addr;

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec("[a-z]{3,8}", 0..8),
        proptest::collection::vec("[a-z]{3,8}", 0..5),
        proptest::option::of(0u64..2_000_000),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(kws, meta, sitemap, serving, hash)| {
            let mut s = Snapshot::unreachable(
                "x.victim.com".parse().unwrap(),
                SimTime(10),
                Rcode::NoError,
                None,
            );
            if serving {
                s.http_status = Some(200);
            }
            s.index_hash = hash;
            s.keywords = kws;
            s.meta_keywords = meta;
            s.sitemap_bytes = sitemap;
            s
        })
}

/// Arbitrary valid names in dotted form: 1–4 labels over the accepted
/// alphabet (lowercase alphanumerics, `-`, `_`), each ≤63 chars.
fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec("[a-z0-9_-]{1,12}", 1..5)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("generated labels are valid"))
}

/// Snapshots exercising the full field surface the observation log must
/// round-trip: unicode titles, arbitrary keyword sets, optional IPs, and
/// None-heavy variants (the common unreachable case).
fn arb_persisted_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        arb_name(),
        0i32..3000,
        proptest::option::of("\\PC{0,24}"),
        proptest::option::of(any::<[u8; 4]>()),
        proptest::option::of(100u16..600),
        proptest::collection::vec("[a-z]{2,10}", 0..6),
        any::<u64>(),
        proptest::option::of(0u64..5_000_000),
        proptest::option::of("\\PC{0,80}"),
    )
        .prop_map(
            |(fqdn, day, title, ip, status, keywords, hash, sitemap, html)| {
                let mut s = Snapshot::unreachable(fqdn, SimTime(day), Rcode::NoError, None);
                s.title = title;
                s.ip = ip.map(Ipv4Addr::from);
                s.http_status = status;
                s.keywords = keywords;
                s.index_hash = hash;
                s.sitemap_bytes = sitemap;
                s.html = html;
                s
            },
        )
}

fn arb_signature() -> impl Strategy<Value = Signature> {
    (
        proptest::collection::vec("[a-z]{3,8}", 1..4),
        proptest::option::of(Just(400_000u64)),
        any::<bool>(),
    )
        .prop_map(
            |(keywords, min_sitemap_bytes, requires_identifiers)| Signature {
                id: 0,
                keywords,
                min_sitemap_bytes,
                script_markers: Vec::new(),
                requires_identifiers,
                source_members: 2,
                source_slds: 2,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Keyword extraction is total, deterministic, bounded, and lowercase.
    #[test]
    fn keywords_total_and_bounded(html in "\\PC{0,500}", k in 0usize..20) {
        let a = extract_keywords(&html, k);
        let b = extract_keywords(&html, k);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= k);
        for kw in &a {
            prop_assert_eq!(kw.clone(), kw.to_lowercase());
        }
    }

    /// cluster_key is order- and duplicate-insensitive.
    #[test]
    fn cluster_key_canonical(mut kws in proptest::collection::vec("[a-z]{2,6}", 0..8)) {
        let k1 = cluster_key(&kws);
        kws.reverse();
        let dup = kws.first().cloned();
        if let Some(d) = dup {
            kws.push(d);
        }
        prop_assert_eq!(cluster_key(&kws), k1);
    }

    /// overlap is symmetric and within [0, 1].
    #[test]
    fn overlap_symmetric(
        a in proptest::collection::vec("[a-z]{2,5}", 0..8),
        b in proptest::collection::vec("[a-z]{2,5}", 0..8),
    ) {
        let ab = overlap(&a, &b);
        let ba = overlap(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        if !a.is_empty() {
            prop_assert_eq!(overlap(&a, &a), 1.0);
        }
    }

    /// diff(x, x) is always empty; diff never panics on arbitrary pairs.
    #[test]
    fn diff_reflexive_and_total(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert!(diff(&a, &a).is_empty());
        let kinds = diff(&a, &b);
        // No duplicates.
        let mut sorted: Vec<ChangeKind> = kinds.clone();
        sorted.sort_by_key(|k| format!("{k:?}"));
        sorted.dedup();
        prop_assert_eq!(sorted.len(), kinds.len());
    }

    /// An unreachable snapshot never matches any signature.
    #[test]
    fn dead_snapshots_never_match(sig in arb_signature(), mut snap in arb_snapshot()) {
        snap.http_status = None;
        prop_assert!(!sig.matches(&snap));
    }

    /// Matching is monotone in snapshot richness: adding the signature's own
    /// keywords and raising the sitemap never turns a match into a non-match.
    #[test]
    fn matching_monotone(sig in arb_signature(), mut snap in arb_snapshot()) {
        snap.http_status = Some(200);
        snap.identifiers = vec!["phone:62".into()];
        let before = sig.matches(&snap);
        snap.keywords.extend(sig.keywords.iter().cloned());
        snap.sitemap_bytes = Some(snap.sitemap_bytes.unwrap_or(0).max(10_000_000));
        let after = sig.matches(&snap);
        prop_assert!(!before || after);
        // And the enriched snapshot always matches.
        prop_assert!(after);
    }

    /// Names serialize as their dotted string and parse back to an equal
    /// name — the on-disk representation every observation record uses.
    #[test]
    fn name_serde_roundtrips_dotted(n in arb_name()) {
        let text = serde_json::to_string(&n).unwrap();
        prop_assert!(text.starts_with('"'), "names must serialize as strings");
        let back: Name = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, n);
    }

    /// Snapshots round-trip through JSON exactly, across unicode titles,
    /// optional IPs/statuses/HTML, and None-heavy unreachable shapes. The
    /// resume guarantee reduces to this property: the replayed crawl batch
    /// equals the recorded one field-for-field.
    #[test]
    fn snapshot_serde_roundtrips(s in arb_persisted_snapshot()) {
        let text = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, s);
    }

    /// body_hash is deterministic and collision-free on short distinct inputs
    /// differing in one byte.
    #[test]
    fn body_hash_sensitivity(data in proptest::collection::vec(any::<u8>(), 1..128), idx in any::<prop::sample::Index>()) {
        let h1 = body_hash(&data);
        prop_assert_eq!(h1, body_hash(&data));
        let mut flipped = data.clone();
        let i = idx.index(flipped.len());
        flipped[i] ^= 0xFF;
        prop_assert_ne!(h1, body_hash(&flipped));
    }

    /// rank_tokens respects k and never returns stopword-class junk tokens.
    #[test]
    fn rank_tokens_bounds(tokens in proptest::collection::vec("[a-z]{1,8}", 0..60), k in 0usize..10) {
        let ranked = rank_tokens(tokens, k);
        prop_assert!(ranked.len() <= k);
        for t in &ranked {
            prop_assert!(t.len() >= 3);
            prop_assert!(!t.chars().all(|c| c.is_ascii_digit()));
        }
    }

    /// Capability monotonicity: anything stealable from static content is
    /// stealable from a full webserver (given the same HTTPS capability).
    #[test]
    fn capability_monotone(https in any::<bool>(), http_only in any::<bool>(), secure in any::<bool>()) {
        use cloudsim::CapabilityClass::*;
        if can_steal_cookie(StaticContent, https, http_only, secure) {
            prop_assert!(can_steal_cookie(FullWebserver, https, http_only, secure));
        }
        // Full webserver capabilities strictly dominate.
        let s = capabilities(StaticContent);
        let f = capabilities(FullWebserver);
        for (a, b) in [
            (s.file, f.file),
            (s.content, f.content),
            (s.html, f.html),
            (s.javascript, f.javascript),
            (s.headers, f.headers),
            (s.https, f.https),
        ] {
            prop_assert!(!a || b);
        }
    }
}
