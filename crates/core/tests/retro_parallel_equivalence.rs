//! The retrospective pass's determinism contract, end to end: with every
//! parallel stage live — the crawl, Algorithm-1 classification, benign
//! clustering, signature validation and signature matching — a full-horizon
//! scenario run must serialize [`dangling_core::StudyResults`] to the *same
//! bytes* across
//!
//! - thread counts `{1} ∪ RETRO_EQ_THREADS` (default `2,4,8`),
//! - fresh runs and `--resume` replays of a recorded history, and
//! - tracing off and on (telemetry must stay out-of-band everywhere).
//!
//! The whole matrix lives in one `#[test]` because the tracing flag is
//! process-global — concurrent test functions would race on it.
//!
//! The config runs the *full* study window (the attacker campaigns only
//! start in 2020, so a round-bounded run would leave the retro pass with no
//! abuse to find) with the transient-failure model on, so the RNG-keyed
//! crawl path is exercised alongside the retro stages.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::PersistOptions;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("retro_eq_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// Thread counts beyond the serial baseline: `RETRO_EQ_THREADS=2,8` style
/// override (the CI matrix runs one count per leg), `2,4,8` by default.
fn threads_under_test() -> Vec<usize> {
    std::env::var("RETRO_EQ_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8])
}

fn run_fresh(threads: usize) -> String {
    let results = Scenario::new(study_cfg(threads)).run();
    serde_json::to_string(&results).expect("results serialize")
}

fn run_replayed(dir: &TempDir, threads: usize) -> String {
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let results = Scenario::new(study_cfg(threads))
        .run_persisted(&opts)
        .expect("replay run");
    serde_json::to_string(&results).expect("results serialize")
}

#[test]
fn retro_pass_is_byte_identical_across_threads_replay_and_tracing() {
    let threads = threads_under_test();

    // Serial baseline, tracing off — and a meaningfulness gate: every
    // parallel retro stage must have real work or the comparison is vacuous.
    obs::set_tracing(false);
    let baseline_results = Scenario::new(study_cfg(1)).run();
    assert!(
        !baseline_results.world.truth.is_empty(),
        "scenario must contain hijacks for the retro pass to chase"
    );
    assert!(
        !baseline_results.abuse.is_empty(),
        "retro matching must detect abuse"
    );
    assert!(
        !baseline_results.signatures.is_empty(),
        "retro derivation must produce signatures"
    );
    assert!(
        !baseline_results.change_clusters.is_empty(),
        "retro clustering must produce clusters"
    );
    let baseline = serde_json::to_string(&baseline_results).expect("results serialize");

    // Fresh runs, tracing off.
    for &t in &threads {
        assert_eq!(
            run_fresh(t),
            baseline,
            "fresh untraced run diverged at {t} threads"
        );
    }

    // Fresh runs, tracing on (serial included: tracing itself must be
    // invisible at every thread count).
    obs::set_tracing(true);
    assert_eq!(run_fresh(1), baseline, "traced serial run diverged");
    for &t in &threads {
        assert_eq!(
            run_fresh(t),
            baseline,
            "fresh traced run diverged at {t} threads"
        );
    }
    obs::set_tracing(false);
    let spans = obs::take_spans();
    for name in [
        "collect.weekly",
        "crawl.weekly",
        "retro.cluster",
        "retro.validate_signatures",
        "retro.match_all",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "traced runs must collect the {name} span"
        );
    }

    // Record the full history once, then replay it at every thread count in
    // both tracing modes. Replays re-run the retro pass over the recorded
    // observations — the cheap legs of the matrix.
    let dir = TempDir::new("replay");
    {
        let opts = PersistOptions::new(&dir.0);
        let recorded = Scenario::new(study_cfg(1))
            .run_persisted(&opts)
            .expect("recording run");
        assert_eq!(
            serde_json::to_string(&recorded).expect("results serialize"),
            baseline,
            "recording the run changed the results"
        );
    }
    for &t in threads.iter().chain(std::iter::once(&1)) {
        assert_eq!(
            run_replayed(&dir, t),
            baseline,
            "untraced replay diverged at {t} threads"
        );
    }
    obs::set_tracing(true);
    for &t in &threads {
        assert_eq!(
            run_replayed(&dir, t),
            baseline,
            "traced replay diverged at {t} threads"
        );
    }
    obs::set_tracing(false);
    assert!(
        obs::take_spans()
            .iter()
            .any(|s| s.name == "persist.replay_round"),
        "traced replays must collect replay spans"
    );
}
