//! Batch-vs-streaming differential harness for the retrospective pass: a
//! full-horizon scenario run with the incremental retro pass
//! ([`dangling_core`]'s `repro --incremental` path) must serialize
//! [`dangling_core::StudyResults`] to the *same bytes* as the one-shot batch
//! pass across
//!
//! - thread counts `{1} ∪ INCR_EQ_THREADS` (default `2,4,8`),
//! - fresh runs and `--resume` replays of a recorded history, and
//! - tracing off and on (telemetry must stay out-of-band everywhere).
//!
//! The replay legs also pin the "segments → retro without re-crawling"
//! contract: a full-history replay into the incremental pass must drive
//! *zero* crawl rounds (the `pipeline.crawl_ns` histogram — recorded whether
//! or not tracing is on — must not grow) while still replaying recorded
//! rounds (`persist.rounds_replayed` must grow). The history is recorded in
//! *batch* mode and resumed in *incremental* mode on purpose: the retro-pass
//! mode is a builder flag, not part of the persisted config fingerprint, so
//! recorded histories are mode-portable.
//!
//! The whole matrix lives in one `#[test]` because the tracing flag is
//! process-global — concurrent test functions would race on it.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::PersistOptions;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("incr_eq_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Same full-window config as `retro_parallel_equivalence`: the attacker
/// campaigns only start in 2020, so a round-bounded run would leave both
/// retro passes with no abuse to find — and the comparison vacuous.
fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// Thread counts beyond the serial baseline: `INCR_EQ_THREADS=2,8` style
/// override (the CI matrix runs one count per leg), `2,4,8` by default.
fn threads_under_test() -> Vec<usize> {
    std::env::var("INCR_EQ_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8])
}

fn run_incremental(threads: usize) -> String {
    let results = Scenario::new(study_cfg(threads)).incremental(true).run();
    serde_json::to_string(&results).expect("results serialize")
}

/// Replay a recorded history with the incremental pass on, asserting the
/// crawl stays idle for the whole replay while recorded rounds stream in.
fn run_replayed_incremental(dir: &TempDir, threads: usize) -> String {
    let crawls_before = obs::histogram("pipeline.crawl_ns").snapshot().count;
    let replayed_before = obs::counter("persist.rounds_replayed").get();
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let results = Scenario::new(study_cfg(threads))
        .incremental(true)
        .run_persisted(&opts)
        .expect("replay run");
    assert_eq!(
        obs::histogram("pipeline.crawl_ns").snapshot().count,
        crawls_before,
        "full-history replay at {threads} threads must not re-run the crawl"
    );
    assert!(
        obs::counter("persist.rounds_replayed").get() > replayed_before,
        "replay at {threads} threads must stream recorded rounds"
    );
    serde_json::to_string(&results).expect("results serialize")
}

#[test]
fn incremental_retro_is_byte_identical_to_batch() {
    let threads = threads_under_test();

    // Batch serial baseline, tracing off — and a meaningfulness gate: the
    // streaming pass must have real signatures/clusters/matches to reproduce
    // or every byte-comparison below is vacuous.
    obs::set_tracing(false);
    let baseline_results = Scenario::new(study_cfg(1)).run();
    assert!(
        !baseline_results.world.truth.is_empty(),
        "scenario must contain hijacks for the retro pass to chase"
    );
    assert!(
        !baseline_results.abuse.is_empty(),
        "retro matching must detect abuse"
    );
    assert!(
        !baseline_results.signatures.is_empty(),
        "retro derivation must produce signatures"
    );
    assert!(
        !baseline_results.change_clusters.is_empty(),
        "retro clustering must produce clusters"
    );
    let baseline = serde_json::to_string(&baseline_results).expect("results serialize");

    // Fresh incremental runs, tracing off (serial first: streaming vs batch
    // with no parallelism in the mix isolates the fold itself).
    assert_eq!(
        run_incremental(1),
        baseline,
        "serial incremental run diverged from batch"
    );
    for &t in &threads {
        assert_eq!(
            run_incremental(t),
            baseline,
            "fresh untraced incremental run diverged at {t} threads"
        );
    }

    // Fresh incremental runs, tracing on (serial included: tracing itself
    // must be invisible at every thread count).
    obs::set_tracing(true);
    assert_eq!(
        run_incremental(1),
        baseline,
        "traced serial incremental run diverged"
    );
    for &t in &threads {
        assert_eq!(
            run_incremental(t),
            baseline,
            "fresh traced incremental run diverged at {t} threads"
        );
    }
    obs::set_tracing(false);
    let spans = obs::take_spans();
    for name in [
        "incr.weekly",
        "retro.incr.round",
        "retro.incr.validate",
        "retro.incr.finalize",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "traced incremental runs must collect the {name} span"
        );
    }

    // Record the full history once in *batch* mode, then replay it into the
    // incremental pass at every thread count in both tracing modes. The
    // mode flip is deliberate: it pins that the retro-pass mode stays out of
    // the persisted config fingerprint, and each replay leg asserts the
    // recorded rounds stream into the retro pass without re-crawling.
    let dir = TempDir::new("replay");
    {
        let opts = PersistOptions::new(&dir.0);
        let recorded = Scenario::new(study_cfg(1))
            .run_persisted(&opts)
            .expect("recording run");
        assert_eq!(
            serde_json::to_string(&recorded).expect("results serialize"),
            baseline,
            "recording the run changed the results"
        );
    }
    for &t in threads.iter().chain(std::iter::once(&1)) {
        assert_eq!(
            run_replayed_incremental(&dir, t),
            baseline,
            "untraced incremental replay diverged at {t} threads"
        );
    }
    obs::set_tracing(true);
    for &t in &threads {
        assert_eq!(
            run_replayed_incremental(&dir, t),
            baseline,
            "traced incremental replay diverged at {t} threads"
        );
    }
    obs::set_tracing(false);
    let spans = obs::take_spans();
    for name in ["persist.replay_round", "retro.incr.round"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "traced incremental replays must collect the {name} span"
        );
    }
}
