//! The persistence subsystem's headline guarantee: a run interrupted at any
//! round boundary and resumed from its state directory serializes
//! [`dangling_core::StudyResults`] **byte-identically** to an uninterrupted
//! run — at any crawl thread count, including recording and resuming at
//! different thread counts.
//!
//! Same scenario as `parallel_equivalence` (transient-failure model on, so
//! the RNG-keyed crawl path is exercised), with the `max_rounds` knob as the
//! kill switch: it stops the simulation right after a commit, exactly the
//! state a crash at a round boundary leaves behind.

use dangling_core::pipeline::persist::compact_state_dir;
use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::{PersistError, PersistOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("resume_eq_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// The uninterrupted, non-persisted reference run (computed once).
fn baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let results = Scenario::new(study_cfg(1)).run();
        serde_json::to_string(&results).expect("results serialize")
    })
}

fn run_persisted(
    dir: &TempDir,
    threads: usize,
    resume: bool,
    max_rounds: Option<u64>,
) -> Result<String, PersistError> {
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = resume;
    opts.max_rounds = max_rounds;
    let results = Scenario::new(study_cfg(threads)).run_persisted(&opts)?;
    Ok(serde_json::to_string(&results).expect("results serialize"))
}

#[test]
fn interrupted_plus_resumed_is_byte_identical() {
    // Span collection on for the interrupted/resumed legs: telemetry must be
    // invisible to the recorded log and the replayed results alike. (The
    // baseline may or may not have run traced — irrelevant, by the same
    // contract.)
    obs::set_tracing(true);
    // (threads while recording, threads while resuming): same-count serial
    // and parallel, plus a cross-count resume — the log is thread-agnostic.
    for (record_threads, resume_threads) in [(1, 1), (4, 4), (1, 4)] {
        let dir = TempDir::new("kill");
        // Record 20 rounds, then die at the boundary.
        run_persisted(&dir, record_threads, false, Some(20)).expect("recording run");
        let resumed = run_persisted(&dir, resume_threads, true, None).expect("resumed run");
        assert_eq!(
            &resumed,
            baseline(),
            "resume diverged (recorded at {record_threads} threads, \
             resumed at {resume_threads})"
        );
    }
    obs::set_tracing(false);
    assert!(
        obs::take_spans()
            .iter()
            .any(|s| s.name == "persist.replay_round"),
        "traced resumed runs must have collected replay spans"
    );
}

#[test]
fn uninterrupted_persisted_run_matches_plain_run() {
    // Recording itself must not perturb results, and a second resume over a
    // fully recorded history (pure replay, zero crawls) must also agree.
    let dir = TempDir::new("full");
    let recorded = run_persisted(&dir, 1, false, None).expect("recorded run");
    assert_eq!(&recorded, baseline(), "persistence changed the results");
    let replayed = run_persisted(&dir, 4, true, None).expect("pure replay");
    assert_eq!(&replayed, baseline(), "full replay diverged");
}

#[test]
fn compaction_preserves_resume_equivalence() {
    let dir = TempDir::new("compact");
    run_persisted(&dir, 4, false, Some(30)).expect("recording run");
    let stats = compact_state_dir(&dir.0).expect("compaction");
    assert!(
        stats.records_after < stats.records_before,
        "30 weekly rounds must contain superseded no-change records \
         ({} -> {})",
        stats.records_before,
        stats.records_after
    );
    let resumed = run_persisted(&dir, 1, true, None).expect("resume after compaction");
    assert_eq!(&resumed, baseline(), "compaction broke replay");
}

#[test]
fn mismatched_config_is_refused() {
    let dir = TempDir::new("mismatch");
    run_persisted(&dir, 1, false, Some(3)).expect("recording run");

    // A different failure rate forks history: refused.
    let mut cfg = study_cfg(1);
    cfg.crawl_failure_rate = 0.5;
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let Err(err) = Scenario::new(cfg).run_persisted(&opts) else {
        panic!("resume with a different failure rate must be refused");
    };
    assert!(
        matches!(err, PersistError::ConfigMismatch { .. }),
        "expected ConfigMismatch, got {err}"
    );

    // A different seed likewise.
    let mut cfg = study_cfg(1);
    cfg.seed = 12;
    let Err(err) = Scenario::new(cfg).run_persisted(&opts) else {
        panic!("resume with a different seed must be refused");
    };
    assert!(matches!(err, PersistError::ConfigMismatch { .. }));

    // Re-running without --resume must refuse to clobber the recording.
    let Err(err) = run_persisted(&dir, 1, false, Some(3)) else {
        panic!("re-running onto a populated state dir must be refused");
    };
    assert!(
        matches!(err, PersistError::AlreadyExists(_)),
        "expected AlreadyExists, got {err}"
    );
}
