//! v1→v2 state-dir migration: the committed fixture under
//! `tests/fixtures/v1_state/` is a tiny v1 (JSON-payload) recording; it
//! must keep migrating cleanly and replaying byte-identically on every
//! future build — the compatibility gate MIGRATIONS.md promises.
//!
//! Regenerate the fixture (only after an intentional, documented format or
//! scenario change) with:
//!
//! ```sh
//! cargo test -p dangling-core --test storelog_migrate -- --ignored regenerate
//! ```

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::{migrate_state_dir, PersistOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("slmig_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
        // migrate_state_dir publishes a sibling backup; sweep it too.
        let mut bak = self.0.as_os_str().to_owned();
        bak.push(".v1.bak");
        let _ = std::fs::remove_dir_all(PathBuf::from(bak));
    }
}

/// The exact scenario the fixture was recorded with. Changing anything here
/// (or in what `ScenarioConfig` serializes) invalidates the fixture — that
/// is the point: resume refuses mismatched configs, so this test fails
/// loudly instead of the fixture rotting silently.
fn fixture_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(12_000);
    cfg.world.n_fortune1000 = 2;
    cfg.world.n_global500 = 1;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

const FIXTURE_ROUNDS: u64 = 4;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1_state")
}

fn copy_fixture(tag: &str) -> TempDir {
    let dst = TempDir::new(tag);
    for entry in std::fs::read_dir(fixture_path()).expect("fixture dir exists — see module docs")
    {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.0.join(entry.file_name())).unwrap();
    }
    dst
}

fn resume_to_completion(dir: &Path, threads: usize) -> String {
    let mut opts = PersistOptions::new(dir);
    opts.resume = true;
    let results = Scenario::new(fixture_cfg(threads))
        .run_persisted(&opts)
        .expect("resume");
    serde_json::to_string(&results).expect("results serialize")
}

#[test]
fn fixture_is_v1() {
    let (version, shards) = storelog::read_format(&fixture_path()).expect("fixture readable");
    assert_eq!(version, 1, "fixture must stay a v1 dir");
    assert_eq!(shards, 16);
}

#[test]
fn migrated_fixture_replays_byte_identically_to_the_v1_original() {
    let v1 = copy_fixture("orig");
    let v2 = copy_fixture("mig");

    let stats = migrate_state_dir(&v2.0).expect("migration");
    assert_eq!(stats.rounds, FIXTURE_ROUNDS);
    assert!(stats.records > 0);
    assert!(
        stats.bytes_after * 3 <= stats.bytes_before,
        "binary payloads should be far smaller: {} -> {} bytes",
        stats.bytes_before,
        stats.bytes_after
    );
    assert_eq!(storelog::read_format(&v2.0).unwrap().0, 2);
    // The original moved to the sibling backup, byte-for-byte.
    let mut bak = v2.0.as_os_str().to_owned();
    bak.push(".v1.bak");
    assert_eq!(
        storelog::read_format(&PathBuf::from(bak)).unwrap().0,
        1,
        "the v1 original must survive as the .v1.bak sibling"
    );

    // Both dirs resume into identical studies — the recorded rounds replay
    // (JSON vs binary decode), the rest of the horizon re-crawls live.
    let out_v1 = resume_to_completion(&v1.0, 2);
    let out_v2 = resume_to_completion(&v2.0, 2);
    assert_eq!(out_v1, out_v2, "migration changed replayed history");

    // And both equal the uninterrupted in-memory run.
    let baseline = serde_json::to_string(&Scenario::new(fixture_cfg(1)).run()).unwrap();
    assert_eq!(out_v1, baseline, "fixture resume diverged from baseline");
}

#[test]
fn migrate_refuses_v2_dirs_and_existing_backups() {
    let dir = copy_fixture("refuse");
    migrate_state_dir(&dir.0).expect("first migration");
    // Already v2: a second migration must refuse, not double-transcode.
    let err = migrate_state_dir(&dir.0).expect_err("v2 dir refused");
    assert!(err.to_string().contains("expects a v1"), "{err}");

    // A fresh v1 copy whose backup name is already taken must refuse too
    // (never clobber the only pristine copy).
    let dir2 = copy_fixture("bak");
    let mut bak = dir2.0.as_os_str().to_owned();
    bak.push(".v1.bak");
    std::fs::create_dir_all(PathBuf::from(bak)).unwrap();
    let err = migrate_state_dir(&dir2.0).expect_err("existing backup refused");
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn unknown_future_format_is_refused_with_a_migration_pointer() {
    // The exact failure mode a v1-era reader exhibits on a v2 dir (its
    // FORMAT gate predates v2): an unsupported version must be a hard
    // error pointing at MIGRATIONS.md, never a silent decode attempt.
    let dir = copy_fixture("future");
    std::fs::write(dir.0.join("FORMAT"), "storelog 999\nshards 16\n").unwrap();
    let err = match storelog::LogReader::open(&dir.0) {
        Ok(_) => panic!("future version must be refused"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("MIGRATIONS.md"), "{msg}");
    assert!(
        msg.contains(&format!("v{}", storelog::FORMAT_VERSION)),
        "error should name the supported range: {msg}"
    );
}

/// Rebuilds `tests/fixtures/v1_state/`. Run explicitly (see module docs)
/// after an intentional scenario/config change; commit the result.
#[test]
#[ignore = "regenerates the committed fixture; run explicitly"]
fn regenerate_v1_fixture() {
    let path = fixture_path();
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).unwrap();
    let mut opts = PersistOptions::new(&path);
    opts.max_rounds = Some(FIXTURE_ROUNDS);
    opts.format = Some(1);
    Scenario::new(fixture_cfg(2))
        .run_persisted(&opts)
        .expect("fixture recording");
    let (version, _) = storelog::read_format(&path).unwrap();
    assert_eq!(version, 1);
}
