//! Crash recovery: a state directory mangled mid-write (torn segment tail,
//! torn commit frame, truncated segment behind an intact commit) must lose
//! **at most the final unflushed round** — and since lost rounds are simply
//! re-crawled deterministically on resume, the final results stay
//! byte-identical to an uninterrupted run in every case.

use dangling_core::pipeline::persist::Checkpoint;
use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::{PersistError, PersistOptions, RoundSink, RoundView};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use storelog::LogReader;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("crash_rec_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(3000);
    cfg.world.n_fortune1000 = 20;
    cfg.world.n_global500 = 10;
    cfg.seed = 5;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

fn baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let results = Scenario::new(study_cfg(1)).run();
        serde_json::to_string(&results).expect("results serialize")
    })
}

fn run_persisted(
    dir: &TempDir,
    resume: bool,
    max_rounds: Option<u64>,
) -> Result<String, PersistError> {
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = resume;
    opts.max_rounds = max_rounds;
    let results = Scenario::new(study_cfg(2)).run_persisted(&opts)?;
    Ok(serde_json::to_string(&results).expect("results serialize"))
}

/// Like [`run_persisted`], but with the streaming retro pass on: replayed
/// rounds feed `IncrementalRetro` straight from the recovered segments,
/// re-crawled rounds feed it live.
fn run_persisted_incremental(
    dir: &TempDir,
    resume: bool,
    max_rounds: Option<u64>,
) -> Result<String, PersistError> {
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = resume;
    opts.max_rounds = max_rounds;
    let results = Scenario::new(study_cfg(2))
        .incremental(true)
        .run_persisted(&opts)?;
    Ok(serde_json::to_string(&results).expect("results serialize"))
}

/// The round the state dir's newest surviving commit sealed.
fn recovered_round(dir: &TempDir) -> i32 {
    let reader = LogReader::open(&dir.0).expect("state dir opens");
    let commit = reader.last_commit().expect("at least one commit survives");
    let cp: Checkpoint = serde_json::from_slice(&commit.app).expect("checkpoint parses");
    cp.round.0
}

fn record_twelve_rounds(tag: &str) -> TempDir {
    let dir = TempDir::new(tag);
    run_persisted(&dir, false, Some(12)).expect("recording run");
    dir
}

#[test]
fn garbage_after_last_commit_is_invisible() {
    let dir = record_twelve_rounds("tail");
    let before = recovered_round(&dir);
    // A crash mid-append leaves partial frames past the committed offsets.
    let mut f = OpenOptions::new()
        .append(true)
        .open(dir.0.join("shard-000.seg"))
        .unwrap();
    f.write_all(&[0xAB; 137]).unwrap();
    drop(f);
    assert_eq!(recovered_round(&dir), before, "no committed round lost");
    let resumed = run_persisted(&dir, true, None).expect("resume");
    assert_eq!(&resumed, baseline());
}

#[test]
fn torn_commit_frame_loses_only_the_final_round() {
    let dir = record_twelve_rounds("commit");
    let before = recovered_round(&dir);
    // Chop into the last commit frame: its checksum fails, the reader falls
    // back to the previous commit — one monitoring interval earlier.
    let commits = dir.0.join("commits.log");
    let len = std::fs::metadata(&commits).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&commits)
        .unwrap()
        .set_len(len - 5)
        .unwrap();
    let after = recovered_round(&dir);
    assert_eq!(
        after,
        before - 7,
        "exactly one weekly round rolls back ({before} -> {after})"
    );
    let resumed = run_persisted(&dir, true, None).expect("resume");
    assert_eq!(&resumed, baseline(), "re-crawling the lost round diverged");
}

#[test]
fn truncated_segment_invalidates_commits_that_point_past_it() {
    let dir = record_twelve_rounds("seg");
    let before = recovered_round(&dir);
    // Tear the tail of a populated segment: the newest commit's offset for
    // that shard now points past the valid prefix, so recovery must reject
    // it and fall back — losing at most the final round.
    let seg = (0..16)
        .map(|i| dir.0.join(format!("shard-{i:03}.seg")))
        .find(|p| std::fs::metadata(p).map(|m| m.len() > 8).unwrap_or(false))
        .expect("some shard holds records");
    let len = std::fs::metadata(&seg).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let after = recovered_round(&dir);
    assert!(
        after == before || after == before - 7,
        "at most the final round rolls back ({before} -> {after})"
    );
    let resumed = run_persisted(&dir, true, None).expect("resume");
    assert_eq!(&resumed, baseline());
}

/// A [`RoundSink`] that requests a graceful stop after `stop_after`
/// committed rounds — the crash-free sibling of the kill tests: service
/// mode's SIGTERM path stops at a round boundary via exactly this hook.
struct StopSink {
    stop_after: u64,
    seen: u64,
}

impl RoundSink for StopSink {
    fn round_committed(&mut self, _view: RoundView<'_>) {
        self.seen += 1;
    }

    fn stop_requested(&self) -> bool {
        self.seen >= self.stop_after
    }
}

#[test]
fn graceful_sink_stop_seals_the_round_and_resumes_to_batch_results() {
    // Stop after four committed rounds through the RoundSink hook (no
    // crash, no torn bytes): the fourth round must be fully sealed, and a
    // later incremental resume must replay it — not re-crawl it — and
    // still land on the batch baseline byte for byte.
    let dir = TempDir::new("sink");
    let opts = PersistOptions::new(&dir.0);
    Scenario::new(study_cfg(2))
        .incremental(true)
        .round_sink(Box::new(StopSink {
            stop_after: 4,
            seen: 0,
        }))
        .run_persisted(&opts)
        .expect("graceful-stop run");
    // The sink stop must land on the same sealed boundary as
    // `max_rounds = 4` — both are "after the fourth committed round".
    let reference_round = {
        let reference = TempDir::new("sink_ref");
        run_persisted(&reference, false, Some(4)).expect("reference run");
        recovered_round(&reference)
    };
    assert_eq!(
        recovered_round(&dir),
        reference_round,
        "the stop must land exactly after the fourth sealed weekly round"
    );
    let replayed_before = obs::counter("persist.rounds_replayed").get();
    let resumed = run_persisted_incremental(&dir, true, None).expect("resume");
    assert!(
        obs::counter("persist.rounds_replayed").get() >= replayed_before + 4,
        "all four sealed rounds must replay instead of re-crawling"
    );
    assert_eq!(
        &resumed,
        baseline(),
        "graceful stop + resume diverged from the uninterrupted run"
    );
}

#[test]
fn incremental_run_killed_mid_round_resumes_to_batch_results() {
    // Record twelve rounds with the streaming retro pass live, then simulate
    // a kill mid-round: the in-flight round's segment bytes reached disk but
    // its commit frame was torn. Recovery must roll back exactly one round,
    // and the resumed *incremental* run — recovered rounds replayed from the
    // segments, the lost round and the rest of the horizon re-crawled live —
    // must reproduce the uninterrupted *batch* results byte for byte.
    let dir = TempDir::new("incr");
    run_persisted_incremental(&dir, false, Some(12)).expect("recording run");
    let before = recovered_round(&dir);
    let commits = dir.0.join("commits.log");
    let len = std::fs::metadata(&commits).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&commits)
        .unwrap()
        .set_len(len - 5)
        .unwrap();
    let after = recovered_round(&dir);
    assert_eq!(
        after,
        before - 7,
        "exactly one weekly round rolls back ({before} -> {after})"
    );
    let resumed = run_persisted_incremental(&dir, true, None).expect("resume");
    assert_eq!(
        &resumed,
        baseline(),
        "incremental resume after a mid-round kill diverged from batch"
    );
}
