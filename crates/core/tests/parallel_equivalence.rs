//! The parallel crawl's determinism contract, end to end: a full scenario
//! run must serialize to the *same bytes* for any crawl thread count.
//!
//! The config enables the transient-failure model (nonzero
//! `crawl_failure_rate`) so the RNG-keyed crawl path is exercised too — a
//! sequential RNG shared across threads would break equality immediately.

use dangling_core::scenario::{Scenario, ScenarioConfig};

fn run_with_profile(threads: usize, latency_profile: &str) -> String {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg.latency_profile = latency_profile.into();
    let results = Scenario::new(cfg).run();
    serde_json::to_string(&results).expect("results serialize")
}

fn run_serialized(threads: usize) -> String {
    run_with_profile(threads, "zero")
}

#[test]
fn parallel_crawl_is_byte_identical_to_serial() {
    // Span collection on for the whole test: telemetry must be invisible to
    // results at every thread count (the obs crate's out-of-band contract).
    obs::set_tracing(true);
    let serial = run_serialized(1);
    assert!(serial.len() > 1000, "run produced a non-trivial result");
    for threads in [2, 4, 8] {
        let par = run_serialized(threads);
        assert_eq!(
            serial, par,
            "StudyResults diverged between 1 and {threads} crawl threads"
        );
    }
    obs::set_tracing(false);
    let spans = obs::take_spans();
    assert!(
        spans.iter().any(|s| s.name == "crawl.weekly"),
        "tracing was enabled, so pipeline spans must have been collected"
    );

    // The interned-path pin: this exact config is also the committed
    // pre-interning golden fixture (see intern_equivalence.rs), so thread
    // equivalence alone is not enough — the bytes must still be the string
    // pipeline's bytes.
    let digest = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/intern_eq/results.digest"
    ))
    .expect("committed fixture digest");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in serial.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        format!("{} {h:016x}\n", serial.len()),
        digest,
        "results match across thread counts but diverge from the \
         pre-interning fixture"
    );
}

/// The lossy profile injects dropped DNS queries (retries, SERVFAIL after
/// the retry budget) — it *changes* results relative to the zero profile,
/// but every drop is drawn from a stream keyed by (fqdn, day, ordinal), so
/// the changed results are still byte-identical for any thread count.
#[test]
fn lossy_transport_is_thread_count_invariant() {
    let serial = run_with_profile(1, "lossy");
    assert!(serial.len() > 1000, "run produced a non-trivial result");
    for threads in [2, 4, 8] {
        let par = run_with_profile(threads, "lossy");
        assert_eq!(
            serial, par,
            "lossy StudyResults diverged between 1 and {threads} crawl threads"
        );
    }
}
