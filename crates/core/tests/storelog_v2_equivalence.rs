//! Differential v1/v2 storelog harness: the same study recorded with JSON
//! (v1) and binary interned/delta (v2) payloads must produce byte-identical
//! `StudyResults` — fresh, replayed at every thread count, resumed through
//! the incremental retro pass, and after a mid-round kill. On top of the
//! equivalence, the v2 segments must be ≥5× smaller than v1's.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::{PersistError, PersistOptions};
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("slv2_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Same harness configuration as the crash-recovery suite.
fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(3000);
    cfg.world.n_fortune1000 = 20;
    cfg.world.n_global500 = 10;
    cfg.seed = 5;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

fn baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let results = Scenario::new(study_cfg(1)).run();
        serde_json::to_string(&results).expect("results serialize")
    })
}

fn run_persisted(
    dir: &TempDir,
    format: Option<u32>,
    resume: bool,
    max_rounds: Option<u64>,
    threads: usize,
    incremental: bool,
) -> Result<String, PersistError> {
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = resume;
    opts.max_rounds = max_rounds;
    opts.format = format;
    let results = Scenario::new(study_cfg(threads))
        .incremental(incremental)
        .run_persisted(&opts)?;
    Ok(serde_json::to_string(&results).expect("results serialize"))
}

fn segment_bytes(dir: &TempDir) -> u64 {
    (0..64)
        .filter_map(|i| std::fs::metadata(dir.0.join(format!("shard-{i:03}.seg"))).ok())
        .map(|m| m.len())
        .sum()
}

/// A fully recorded run per format, shared across the tests below (the
/// recording runs are the expensive part; full-history replays are cheap).
fn recorded(format: u32) -> &'static (TempDir, String) {
    static V1: OnceLock<(TempDir, String)> = OnceLock::new();
    static V2: OnceLock<(TempDir, String)> = OnceLock::new();
    let cell = match format {
        1 => &V1,
        2 => &V2,
        _ => unreachable!(),
    };
    cell.get_or_init(|| {
        let dir = TempDir::new(&format!("rec_v{format}"));
        let out = run_persisted(&dir, Some(format), false, None, 2, false).expect("recording run");
        (dir, out)
    })
}

#[test]
fn v1_and_v2_recordings_match_the_in_memory_baseline() {
    let (v1_dir, v1_out) = recorded(1);
    let (v2_dir, v2_out) = recorded(2);
    assert_eq!(v1_out, baseline(), "v1 recording diverged");
    assert_eq!(v2_out, baseline(), "v2 recording diverged");
    assert_eq!(storelog::read_format(&v1_dir.0).unwrap().0, 1);
    assert_eq!(storelog::read_format(&v2_dir.0).unwrap().0, 2);
}

#[test]
fn v2_segments_are_at_least_5x_smaller_than_v1() {
    let (v1_dir, _) = recorded(1);
    let (v2_dir, _) = recorded(2);
    let (v1_bytes, v2_bytes) = (segment_bytes(v1_dir), segment_bytes(v2_dir));
    assert!(v1_bytes > 0 && v2_bytes > 0);
    assert!(
        v2_bytes * 5 <= v1_bytes,
        "v2 segments {v2_bytes} B vs v1 {v1_bytes} B — ratio {:.1}x < 5x",
        v1_bytes as f64 / v2_bytes as f64
    );
}

#[test]
fn full_history_replay_is_thread_count_invariant_in_both_formats() {
    // Resuming a complete recording replays the whole horizon from the
    // segments (no live rounds). Both decoders — serial JSON and the
    // shard-parallel binary path — must land on the baseline byte for byte
    // at every thread count.
    for format in [1u32, 2] {
        let (dir, _) = recorded(format);
        for threads in [1usize, 2, 4, 8] {
            let replayed = run_persisted(dir, None, true, None, threads, false)
                .unwrap_or_else(|e| panic!("v{format} replay at {threads} threads: {e}"));
            assert_eq!(
                &replayed,
                baseline(),
                "v{format} replay at {threads} threads diverged"
            );
        }
    }
}

#[test]
fn incremental_resume_of_partial_recordings_matches_in_both_formats() {
    // Record 12 rounds, then resume with the streaming retro pass on:
    // recorded rounds replay straight from the segments, the rest of the
    // horizon is crawled live, and the v1/v2 results must both equal the
    // uninterrupted batch baseline.
    for format in [1u32, 2] {
        let dir = TempDir::new(&format!("partial_v{format}"));
        run_persisted(&dir, Some(format), false, Some(12), 2, true).expect("recording run");
        assert_eq!(storelog::read_format(&dir.0).unwrap().0, format);
        let resumed = run_persisted(&dir, None, true, None, 4, true).expect("resume");
        assert_eq!(
            &resumed,
            baseline(),
            "v{format} incremental resume diverged"
        );
        // The resumed appends continued in the dir's own format.
        assert_eq!(storelog::read_format(&dir.0).unwrap().0, format);
    }
}

#[test]
fn v2_run_killed_mid_round_resumes_to_batch_results() {
    // The crash-recovery scenario on the binary format: segment bytes of
    // the in-flight round reached disk but the commit frame was torn.
    // Recovery rolls back exactly one round; the resumed incremental run
    // re-encodes live rounds through codec contexts recovered from the
    // committed prefix and must reproduce the batch baseline.
    let dir = TempDir::new("kill_v2");
    run_persisted(&dir, Some(2), false, Some(12), 2, true).expect("recording run");
    let commits = dir.0.join("commits.log");
    let len = std::fs::metadata(&commits).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&commits)
        .unwrap()
        .set_len(len - 5)
        .unwrap();
    let resumed = run_persisted(&dir, None, true, None, 4, true).expect("resume after kill");
    assert_eq!(
        &resumed,
        baseline(),
        "v2 resume after a mid-round kill diverged from batch"
    );
}

#[test]
fn compaction_preserves_replay_in_both_formats() {
    // Compact a partial recording (v2 transcodes through fresh codec
    // contexts; v1 drops frames in place), then resume: results must stay
    // on the baseline and the dir must actually have shrunk.
    for format in [1u32, 2] {
        let dir = TempDir::new(&format!("compact_v{format}"));
        run_persisted(&dir, Some(format), false, Some(12), 2, false).expect("recording run");
        let before = segment_bytes(&dir);
        let stats = dangling_core::compact_state_dir(&dir.0).expect("compact");
        assert!(
            stats.records_after < stats.records_before,
            "v{format} compaction dropped nothing \
             ({} -> {} records)",
            stats.records_before,
            stats.records_after
        );
        assert!(segment_bytes(&dir) < before);
        let resumed = run_persisted(&dir, None, true, None, 2, false).expect("resume");
        assert_eq!(
            &resumed,
            baseline(),
            "v{format} post-compaction resume diverged"
        );
    }
}
