//! The virtual-time determinism contract (DESIGN.md §10), end to end:
//! switching the crawl between the legacy blocking path (`off`) and the
//! event-driven completion-queue path under any loss-free latency profile
//! (`zero`, `datacenter`, `wan`) moves **only timing telemetry** — the
//! serialized `StudyResults` are byte-identical.
//!
//! Why this holds: a crawl's outcome is a pure function of its own
//! operation sequence — every task reads the pre-round store, the simulated
//! authority and web are static within a round, and per-worker DNS caches
//! only ever return what a fresh resolution would. Latency therefore
//! reorders *completions*, never *observations*; only the `lossy` profile
//! (which drops queries) can change results, and its thread-count
//! invariance is pinned by `parallel_equivalence`.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::StudyResults;

fn run_with_profile(latency_profile: &str) -> StudyResults {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = 2;
    cfg.crawl_failure_rate = 0.02;
    cfg.latency_profile = latency_profile.into();
    Scenario::new(cfg).run()
}

#[test]
fn latency_profiles_change_timing_telemetry_never_results() {
    let off = run_with_profile("off");
    let off_json = serde_json::to_string(&off).expect("results serialize");
    assert!(off_json.len() > 1000, "run produced a non-trivial result");

    for profile in ["zero", "datacenter", "wan"] {
        let evented = run_with_profile(profile);
        let evented_json = serde_json::to_string(&evented).expect("results serialize");
        assert_eq!(
            off_json, evented_json,
            "StudyResults diverged between the blocking path and the \
             event-driven path under the {profile} profile"
        );

        // The telemetry side: nonzero-latency profiles must actually have
        // consumed virtual time, the degenerate clocks must not — which is
        // what proves the byte-equality above compared a run that really
        // modeled latency, not a silently disabled one.
        let summary = evented.resolution_latency_summary();
        match profile {
            "zero" => {
                let s = summary.expect("evented path records round latency");
                assert_eq!(s.p99_ns, 0, "zero profile consumed virtual time");
                assert!(s.samples > 0);
            }
            _ => {
                let s = summary.expect("evented path records round latency");
                assert!(
                    s.p50_ns > 0,
                    "{profile} profile recorded no simulated resolution latency"
                );
            }
        }
    }

    // The blocking path never touches the network clock at all.
    assert!(
        off.resolution_latency.iter().all(|r| r.p99_ns == 0),
        "off profile must not accumulate simulated latency"
    );
}
