//! The FQDN-interning differential harness: the interned pipeline must be
//! **byte-identical to the pre-interning string pipeline** in every mode and
//! at every thread count.
//!
//! Interning rewrote the identity type flowing through every stage
//! (`dns::Name` labels are dense `u32` ids now, not `Arc<[String]>`), so no
//! in-process A/B comparison is possible — the string pipeline no longer
//! exists in this tree. The oracle is a *committed golden fixture* generated
//! from the last pre-interning commit by
//! `examples/gen_intern_fixture.rs`:
//!
//! - `tests/fixtures/intern_eq/results.digest` — byte length + FNV-1a 64 of
//!   the full serialized `StudyResults` (the byte-exact pin),
//! - `tests/fixtures/intern_eq/results.head.json` — the same document minus
//!   the bulky `changes` array, committed so a divergence is diffable.
//!
//! Every test here runs the same differential config (the
//! `parallel_equivalence` scenario with the transient-failure model on) and
//! asserts the digest across {1, 2, 4, 8} crawl threads in fresh,
//! `--resume`-replay and `--incremental` modes. If any of these fail,
//! interning leaked into results — ids escaped into an output, an ordering
//! switched from strings to ids, or a shard hash changed.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::PersistOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fixture_config(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg.latency_profile = "zero".into();
    cfg
}

/// FNV-1a 64 — the same hash `gen_intern_fixture` wrote the digest with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The committed pre-interning digest: (byte length, FNV-1a 64).
fn golden() -> (usize, u64) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/intern_eq/results.digest"
    );
    let text = std::fs::read_to_string(path).expect("committed fixture digest");
    let mut parts = text.split_whitespace();
    let len = parts.next().and_then(|s| s.parse().ok()).expect("length");
    let hash = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .expect("hash");
    (len, hash)
}

fn assert_matches_golden(json: &str, context: &str) {
    let (want_len, want_hash) = golden();
    assert_eq!(
        (json.len(), fnv1a(json.as_bytes())),
        (want_len, want_hash),
        "{context}: interned StudyResults diverged from the pre-interning \
         string pipeline (diff against tests/fixtures/intern_eq/\
         results.head.json; regenerate via the gen_intern_fixture example \
         ONLY for intentional semantic changes)"
    );
}

fn serialize(results: &dangling_core::StudyResults) -> String {
    serde_json::to_string(results).expect("results serialize")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("intern_eq_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn fresh_runs_match_pre_interning_bytes_at_every_thread_count() {
    for threads in [1, 2, 4, 8] {
        let json = serialize(&Scenario::new(fixture_config(threads)).run());
        assert_matches_golden(&json, &format!("fresh, {threads} threads"));
    }
}

#[test]
fn incremental_runs_match_pre_interning_bytes_at_every_thread_count() {
    for threads in [1, 2, 4, 8] {
        let json = serialize(
            &Scenario::new(fixture_config(threads))
                .incremental(true)
                .run(),
        );
        assert_matches_golden(&json, &format!("--incremental, {threads} threads"));
    }
}

#[test]
fn resume_replay_matches_pre_interning_bytes_at_every_thread_count() {
    // Record the full history once (interned recorder), then replay it at
    // every thread count: the storelog round-trip must neither perturb the
    // interned pipeline nor depend on id-assignment order — a recorded
    // label's id on replay can differ from recording time, and must not
    // matter.
    let dir = TempDir::new("replay");
    let recorded = {
        let opts = PersistOptions::new(&dir.0);
        serialize(
            &Scenario::new(fixture_config(1))
                .run_persisted(&opts)
                .expect("recording run"),
        )
    };
    assert_matches_golden(&recorded, "--persist recording, 1 thread");
    for threads in [1, 2, 4, 8] {
        let mut opts = PersistOptions::new(&dir.0);
        opts.resume = true;
        let replayed = serialize(
            &Scenario::new(fixture_config(threads))
                .run_persisted(&opts)
                .expect("replay run"),
        );
        assert_matches_golden(&replayed, &format!("--resume replay, {threads} threads"));
    }
}

/// Interrupted-then-resumed runs cross the storelog boundary mid-history:
/// the resumed process re-interns every label from the log in replay order,
/// then keeps crawling with those ids — the id-stability-across-resume case
/// the interner proptests pin at the unit level, proven here end to end.
#[test]
fn interrupted_resume_matches_pre_interning_bytes() {
    let dir = TempDir::new("kill");
    {
        let mut opts = PersistOptions::new(&dir.0);
        opts.max_rounds = Some(20);
        Scenario::new(fixture_config(4))
            .run_persisted(&opts)
            .expect("interrupted recording");
    }
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let resumed = serialize(
        &Scenario::new(fixture_config(2))
            .run_persisted(&opts)
            .expect("resumed run"),
    );
    assert_matches_golden(&resumed, "interrupted at round 20, resumed");
}
