//! The obs crate's hard contract, end to end: telemetry is strictly
//! out-of-band. A scenario run serializes [`dangling_core::StudyResults`] to
//! the *same bytes* whether span collection is on or off, at any crawl
//! thread count — spans and metrics read the wall clock and write telemetry
//! state, never an RNG stream or stage-visible simulation state.
//!
//! Uses the round-budget knob ([`Scenario::max_rounds`]) so every variant
//! runs the same bounded history quickly; the budget is part of the compared
//! configuration, so the four serializations are mutually comparable.

use dangling_core::scenario::{Scenario, ScenarioConfig};

const ROUNDS: u64 = 40;

fn run_serialized(threads: usize, tracing: bool) -> String {
    obs::set_tracing(tracing);
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    let results = Scenario::new(cfg).max_rounds(ROUNDS).run();
    obs::set_tracing(false);
    serde_json::to_string(&results).expect("results serialize")
}

/// One test fn (not four): the tracing flag is process-global, so the
/// variants must run sequentially.
#[test]
fn results_are_byte_identical_with_telemetry_on_or_off() {
    let baseline = run_serialized(1, false);
    assert!(baseline.len() > 1000, "run produced a non-trivial result");
    for (threads, tracing) in [(1, true), (4, false), (4, true)] {
        let variant = run_serialized(threads, tracing);
        assert_eq!(
            baseline, variant,
            "StudyResults diverged at {threads} thread(s) with tracing={tracing} \
             — telemetry leaked into the simulation"
        );
    }
    // The traced variants must actually have collected spans — otherwise the
    // equality above proves nothing about telemetry.
    let spans = obs::take_spans();
    assert!(
        spans.iter().any(|s| s.name == "monitor.round"),
        "traced runs collected no round spans"
    );
    assert!(
        spans.iter().any(|s| s.name == "crawl.weekly"),
        "traced runs collected no crawl spans"
    );

    // Causal leg: the per-crawl virtual-time trace machinery obeys the
    // same contract — byte-identical results with causal tracing on, at
    // any thread count and any deterministic sampling modulus.
    for (threads, sample) in [(1, 1), (1, 16), (4, 1), (4, 16)] {
        obs::set_trace_sample(sample);
        obs::set_causal_tracing(true);
        let variant = run_serialized(threads, false);
        obs::set_causal_tracing(false);
        let causal = obs::take_causal();
        obs::set_trace_sample(1);
        assert_eq!(
            baseline, variant,
            "StudyResults diverged at {threads} thread(s) with causal tracing \
             (sample 1-in-{sample}) — causal spans leaked into the simulation"
        );
        assert!(
            causal
                .iter()
                .any(|s| s.name == "crawl" && s.parent.is_none()),
            "causal run ({threads} threads, sample {sample}) collected no root spans"
        );
        assert!(
            causal.iter().any(|s| s.name == "dns.query"),
            "causal run ({threads} threads, sample {sample}) collected no DNS child spans"
        );
        if sample > 1 {
            // Sampling is a pure hash of the trace id: every surviving
            // trace satisfies the modulus, and sampling strictly shrinks
            // the kept-trace set rather than perturbing it.
            assert!(
                causal.iter().all(|s| s.trace.0 % sample == 0),
                "sampled run kept a trace outside the 1-in-{sample} hash class"
            );
        }
    }
}
