//! The paper-scale memory budget, pinned by regression test: resident bytes
//! per monitored FQDN ([`dangling_core::bytes_per_fqdn_of`]) must stay under
//! [`dangling_core::BYTES_PER_FQDN_BUDGET`] — at 3.1M FQDNs the budget is
//! what keeps the whole study on one commodity machine.
//!
//! Two layers:
//! - a synthetic 100k-FQDN store with crawl-realistic feature mixes, so the
//!   per-snapshot cost model is exercised at scale without a slow full run,
//! - a real (reduced-scale) scenario run asserting the
//!   `pipeline.bytes_per_fqdn` gauge is published and under budget — the
//!   same gauge the CI obs smoke checks, so budget drift fails CI twice.

use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::snapshot::{Snapshot, SnapshotStore};
use dangling_core::{bytes_per_fqdn_of, BYTES_PER_FQDN_BUDGET};
use dns::{Name, Rcode};
use simcore::SimTime;

/// A crawl-realistic page in the style the synthetic world serves: enough
/// title/keyword/script material to populate every extracted feature.
fn page_html(i: usize) -> String {
    format!(
        "<html><head><title>Welcome to site {i} on our platform</title>\
         <meta name=\"keywords\" content=\"hosting, cloud, site{i}, platform, web\">\
         <meta name=\"generator\" content=\"SiteBuilder 4.2\">\
         <script src=\"https://cdn.example.net/assets/app-{}.js\"></script>\
         </head><body><p>This is the landing page of site {i}. Contact \
         support at mail{}@corp{}.example for onboarding and billing \
         questions about your deployment.</p></body></html>",
        i % 97,
        i % 13,
        i % 29
    )
}

#[test]
fn synthetic_100k_fqdn_store_stays_under_budget() {
    let n = 100_000;
    let mut store = SnapshotStore::new();
    let mut monitored: Vec<Name> = Vec::with_capacity(n);
    for i in 0..n {
        // Worldgen's FQDN shape: subdomain.apex.tld, apexes shared across
        // many subdomains (the label vocabulary the interner deduplicates).
        let fqdn: Name = format!("s{i}.victim{}.com", i % 2_500).parse().unwrap();
        let day = SimTime(7 * (i as i32 % 400));
        let mut snap = Snapshot::unreachable(fqdn.clone(), day, Rcode::NoError, None);
        if i % 10 != 0 {
            // Serving site with extracted features; HTML is retained only on
            // the change that populated the features (5%: the most recent
            // rounds' first-sight or changed sites), matching the crawl's
            // retain-on-change policy.
            snap.http_status = Some(200);
            snap.index_hash = i as u64;
            snap.ingest_content(&page_html(i), i % 20 == 0);
            snap.cname_target = Some(format!("site-{i}.azurewebsites.net").parse().unwrap());
        }
        store.insert(snap);
        monitored.push(fqdn);
    }

    let bpf = bytes_per_fqdn_of(&store, &monitored);
    assert!(
        bpf > 0.0 && bpf.is_finite(),
        "measurement must be meaningful, got {bpf}"
    );
    assert!(
        bpf <= BYTES_PER_FQDN_BUDGET,
        "100k-FQDN store costs {bpf:.0} bytes/FQDN, over the {} budget \
         ({}k FQDNs -> {:.0} MiB total)",
        BYTES_PER_FQDN_BUDGET,
        n / 1000,
        bpf * n as f64 / (1024.0 * 1024.0)
    );
    // The budget must also not be absurdly slack — if measured cost falls
    // to a fraction of the budget, tighten the budget instead of letting
    // regressions hide inside it.
    assert!(
        bpf >= BYTES_PER_FQDN_BUDGET * 0.25,
        "measured {bpf:.0} bytes/FQDN is under a quarter of the \
         {BYTES_PER_FQDN_BUDGET} budget — tighten BYTES_PER_FQDN_BUDGET"
    );
}

#[test]
fn scenario_publishes_bytes_per_fqdn_gauge_under_budget() {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    let results = Scenario::new(cfg).run();
    assert!(results.monitored_total > 100);

    let gauge = obs::gauge("pipeline.bytes_per_fqdn").get();
    assert!(
        gauge > 0.0,
        "the pipeline must publish pipeline.bytes_per_fqdn every round"
    );
    assert!(
        gauge <= BYTES_PER_FQDN_BUDGET,
        "end-to-end run costs {gauge:.0} bytes/FQDN, over the \
         {BYTES_PER_FQDN_BUDGET} budget"
    );
}
