//! §5.6.3 / §7 extension: CT monitoring as a countermeasure, quantified.
//!
//! The paper argues CT monitoring is reactive-but-effective and recommends
//! cloud providers watch CT for unusual cross-domain patterns. With ground
//! truth available we can quantify both: per-owner CT monitors catch every
//! certified hijack within the poll interval, and mass single-SAN issuance
//! across one platform's customers is detectable as an anomaly.

use certsim::CtMonitor;
use dangling_core::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;

fn results() -> dangling_core::StudyResults {
    let mut cfg = ScenarioConfig::at_scale(800);
    cfg.world.n_fortune1000 = 60;
    cfg.world.n_global500 = 30;
    cfg.seed = 31;
    // Make certificates common so the countermeasure has targets.
    cfg.campaigns.cert_probability = 0.6;
    Scenario::new(cfg).run()
}

#[test]
fn per_owner_ct_monitor_catches_every_certified_hijack() {
    let r = results();
    let certified: Vec<_> = r.world.truth.iter().filter(|t| t.cert.is_some()).collect();
    assert!(
        !certified.is_empty(),
        "with cert_probability 0.6 some hijacks must certify"
    );
    let apexes: BTreeSet<_> = certified
        .iter()
        .filter_map(|t| t.victim_fqdn.sld())
        .collect();
    let mut caught = BTreeSet::new();
    for apex in &apexes {
        let mut mon = CtMonitor::new(apex.clone(), 0);
        for alert in mon.poll(&r.world.ct) {
            for san in alert.matching_sans {
                caught.insert(san);
            }
        }
    }
    for t in &certified {
        assert!(
            caught.contains(&t.victim_fqdn),
            "monitor on {} missed certified hijack {}",
            t.victim_fqdn.sld().unwrap(),
            t.victim_fqdn
        );
    }
}

#[test]
fn ct_alert_leads_remediation_by_weeks() {
    let r = results();
    // Alert time = CT log time (hours in reality; same-day here). Compare to
    // the actual remediation delay the org exhibited.
    let mut lead_times = Vec::new();
    for t in r.world.truth.iter().filter(|t| t.cert.is_some()) {
        if let (Some(issued), Some(end)) = (t.cert_issued_at, t.end) {
            lead_times.push((end - issued) as f64);
        }
    }
    if lead_times.is_empty() {
        return; // all certified hijacks still open at horizon — nothing to compare
    }
    let mean = lead_times.iter().sum::<f64>() / lead_times.len() as f64;
    assert!(
        mean > 7.0,
        "CT alerts fire at issuance; organic remediation lags by weeks (mean lead {mean:.0}d)"
    );
}

#[test]
fn provider_side_anomaly_is_visible() {
    let r = results();
    // §7's recommendation: a provider watching CT for single-SAN issuance
    // against *its customers'* domains sees the campaign as a spike.
    let hijacked: Vec<dns::Name> = r
        .world
        .truth
        .iter()
        .map(|t| t.victim_fqdn.clone())
        .collect();
    let tl = dangling_core::certs::cert_timeline(&r.world.ct, &hijacked, 3.0);
    assert!(
        tl.single_san_total > 0,
        "attacker certs are single-SAN by construction of domain validation"
    );
    // The historic 2017 wave plus the 2022 boost window must both register.
    assert!(
        !tl.anomaly_months.is_empty(),
        "mass issuance must be detectable as monthly anomalies"
    );
    let years: BTreeSet<i32> = tl.anomaly_months.iter().map(|m| m.div_euclid(12)).collect();
    assert!(
        years.contains(&2017) || years.contains(&2022),
        "anomaly years {years:?} should include a campaign wave"
    );
    // Let's Encrypt dominates inside anomalies (paper: 95% / 53%).
    assert!(tl.le_share_in_anomalies > 0.5);
}
