//! # certsim — certificate authorities, CAA, and Certificate Transparency
//!
//! §5.6 of the paper analyses fraudulent-but-valid certificates on hijacked
//! domains: hijackers control the webserver root, pass HTTP-based domain
//! validation, and obtain real certificates (mostly from Let's Encrypt, free
//! of charge). The paper then shows that **CAA records are not an effective
//! countermeasure** (an attacker simply uses one of the authorized CAs, and
//! almost nobody restricts issuance to paid CAs anyway) while **CT
//! monitoring is** (reactive but cheap and reliable).
//!
//! This crate implements all three mechanisms:
//! - [`ca`] — CAs with free/paid tiers and domain-validated issuance,
//! - [`caa`] — RFC 8659 CAA evaluation (climbing lookup lives in
//!   `dns::Resolver::find_caa`),
//! - [`ct`] — an append-only CT log with per-domain history queries and the
//!   single-SAN/multi-SAN classification behind Figure 20, plus the
//!   [`ct::CtMonitor`] countermeasure of §5.6.3.

pub mod ca;
pub mod caa;
pub mod cert;
pub mod ct;

pub use ca::{issue, CaId, DomainControl, IssueError};
pub use caa::{caa_permits, CaaDecision};
pub use cert::{CertId, Certificate};
pub use ct::{CtAlert, CtEntry, CtLog, CtMonitor};
