//! Certificate Transparency log and monitoring.
//!
//! [`CtLog`] is the append-only history §5.6.1 queries: for every hijacked
//! subdomain the study pulls *all* certificates ever logged for it, splits
//! single-SAN from multi-SAN/wildcard, and finds the two anomaly windows
//! where hijacker campaigns mass-issued single-SAN certificates.
//! [`CtMonitor`] is the §5.6.3 countermeasure: a domain owner subscribes to
//! their apex and gets an alert for every newly logged certificate covering
//! any subdomain.

use crate::cert::Certificate;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtEntry {
    /// Log index (monotone).
    pub index: u64,
    pub logged_at: SimTime,
    pub cert: Certificate,
}

/// An append-only CT log with a per-apex index.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CtLog {
    entries: Vec<CtEntry>,
    /// SLD apex → entry indices (covers lookups by subdomain).
    by_apex: HashMap<Name, Vec<u64>>,
}

impl CtLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a certificate at time `now`; returns the log index.
    pub fn append(&mut self, cert: Certificate, now: SimTime) -> u64 {
        let index = self.entries.len() as u64;
        for san in &cert.sans {
            // Index under the registrable apex so subdomain queries are fast.
            let apex = san.sld().unwrap_or_else(|| san.clone());
            self.by_apex.entry(apex).or_default().push(index);
        }
        self.entries.push(CtEntry {
            index,
            logged_at: now,
            cert,
        });
        index
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, index: u64) -> Option<&CtEntry> {
        self.entries.get(index as usize)
    }

    pub fn iter(&self) -> impl Iterator<Item = &CtEntry> {
        self.entries.iter()
    }

    /// Every entry whose certificate covers `host` exactly (incl. via
    /// wildcard SANs). This is the per-subdomain history of §5.6.1.
    pub fn history_for(&self, host: &Name) -> Vec<&CtEntry> {
        let apex = host.sld().unwrap_or_else(|| host.clone());
        let Some(idxs) = self.by_apex.get(&apex) else {
            return Vec::new();
        };
        idxs.iter()
            .map(|&i| &self.entries[i as usize])
            .filter(|e| e.cert.covers(host))
            .collect()
    }

    /// Every entry whose certificate names `apex` or any of its subdomains.
    pub fn history_under(&self, apex: &Name) -> Vec<&CtEntry> {
        let Some(idxs) = self.by_apex.get(apex) else {
            return Vec::new();
        };
        idxs.iter().map(|&i| &self.entries[i as usize]).collect()
    }

    /// The earliest issuance covering `host` (Figure 19's x-axis: "date of
    /// first certificate issuance").
    pub fn first_issuance(&self, host: &Name) -> Option<SimTime> {
        self.history_for(host).first().map(|e| e.logged_at)
    }
}

/// A §5.6.3 alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtAlert {
    pub watched: Name,
    pub entry_index: u64,
    pub logged_at: SimTime,
    /// SANs that fall under the watched apex.
    pub matching_sans: Vec<Name>,
}

/// A third-party CT monitor subscription for one apex domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtMonitor {
    watched: Name,
    cursor: u64,
}

impl CtMonitor {
    /// Watch `apex` starting from the current end of `log` (pass a fresh log
    /// position to also receive historical alerts).
    pub fn new(apex: Name, from_index: u64) -> Self {
        CtMonitor {
            watched: apex,
            cursor: from_index,
        }
    }

    pub fn watched(&self) -> &Name {
        &self.watched
    }

    /// Drain alerts for all entries logged since the last poll.
    pub fn poll(&mut self, log: &CtLog) -> Vec<CtAlert> {
        let mut alerts = Vec::new();
        while let Some(entry) = log.get(self.cursor) {
            let matching: Vec<Name> = entry
                .cert
                .sans
                .iter()
                .filter(|san| {
                    let base = if san.is_wildcard() {
                        Name::from_labels(san.labels()[1..].iter().cloned()).ok()
                    } else {
                        Some((*san).clone())
                    };
                    base.map(|b| b == self.watched || b.is_subdomain_of(&self.watched))
                        .unwrap_or(false)
                })
                .cloned()
                .collect();
            if !matching.is_empty() {
                alerts.push(CtAlert {
                    watched: self.watched.clone(),
                    entry_index: entry.index,
                    logged_at: entry.logged_at,
                    matching_sans: matching,
                });
            }
            self.cursor += 1;
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CaId;
    use crate::cert::CertId;
    use cloudsim::AccountId;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn cert(id: u64, sans: &[&str], by: AccountId) -> Certificate {
        Certificate {
            id: CertId(id),
            subject: n(sans[0]),
            sans: sans.iter().map(|s| n(s)).collect(),
            issuer: CaId::LetsEncrypt,
            not_before: SimTime(0),
            not_after: SimTime(90),
            requested_by: by,
        }
    }

    #[test]
    fn history_by_exact_and_wildcard() {
        let mut log = CtLog::new();
        log.append(
            cert(1, &["www.example.com"], AccountId::Org(1)),
            SimTime(10),
        );
        log.append(cert(2, &["*.example.com"], AccountId::Org(1)), SimTime(20));
        log.append(cert(3, &["other.net"], AccountId::Org(2)), SimTime(30));
        let h = log.history_for(&n("www.example.com"));
        assert_eq!(h.len(), 2); // exact + wildcard
        assert_eq!(log.history_for(&n("x.example.com")).len(), 1); // wildcard only
        assert_eq!(log.history_under(&n("example.com")).len(), 2);
        assert_eq!(log.first_issuance(&n("www.example.com")), Some(SimTime(10)));
        // The wildcard covers arbitrary subdomains of example.com...
        assert_eq!(
            log.first_issuance(&n("nope.example.com")),
            Some(SimTime(20))
        );
        // ...but not other apexes or deeper-than-one-label names.
        assert_eq!(log.first_issuance(&n("nope.example.net")), None);
        assert_eq!(log.history_for(&n("a.b.example.com")).len(), 1); // RFC 4592 wildcard: any depth
    }

    #[test]
    fn monitor_alerts_on_subdomain_issuance() {
        let mut log = CtLog::new();
        let mut mon = CtMonitor::new(n("example.com"), 0);
        assert!(mon.poll(&log).is_empty());
        // Attacker hijacks a subdomain and issues a cert (§5.6.3 scenario).
        log.append(
            cert(1, &["hijacked.example.com"], AccountId::Attacker(0)),
            SimTime(100),
        );
        log.append(cert(2, &["unrelated.net"], AccountId::Org(9)), SimTime(101));
        let alerts = mon.poll(&log);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].matching_sans, vec![n("hijacked.example.com")]);
        assert_eq!(alerts[0].logged_at, SimTime(100));
        // Poll is a cursor: no duplicate alerts.
        assert!(mon.poll(&log).is_empty());
    }

    #[test]
    fn monitor_catches_wildcards() {
        let mut log = CtLog::new();
        let mut mon = CtMonitor::new(n("example.com"), 0);
        log.append(cert(1, &["*.example.com"], AccountId::Org(1)), SimTime(5));
        assert_eq!(mon.poll(&log).len(), 1);
    }

    #[test]
    fn monitor_ignores_other_apexes() {
        let mut log = CtLog::new();
        let mut mon = CtMonitor::new(n("example.com"), 0);
        log.append(cert(1, &["a.example.org"], AccountId::Org(1)), SimTime(5));
        // note: example.org != example.com; and "badexample.com" isn't a
        // subdomain either.
        log.append(cert(2, &["badexample.com"], AccountId::Org(1)), SimTime(6));
        assert!(mon.poll(&log).is_empty());
    }

    #[test]
    fn historical_subscription() {
        let mut log = CtLog::new();
        log.append(cert(1, &["old.example.com"], AccountId::Org(1)), SimTime(1));
        // Subscribing from index 0 replays history.
        let mut mon = CtMonitor::new(n("example.com"), 0);
        assert_eq!(mon.poll(&log).len(), 1);
        // Subscribing from the end does not.
        let mut mon2 = CtMonitor::new(n("example.com"), log.len() as u64);
        assert!(mon2.poll(&log).is_empty());
    }
}
