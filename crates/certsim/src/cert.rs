//! X.509-lite certificates.
//!
//! Only the fields the paper's analysis touches: SAN list (single vs multi —
//! Figure 20's discriminator), wildcard flags, issuer, validity window, and
//! the requesting account (ground truth the real study lacked; used for
//! evaluating the detection methodology, never *by* it).

use crate::ca::CaId;
use cloudsim::AccountId;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Certificate serial / handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CertId(pub u64);

/// A leaf certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    pub id: CertId,
    /// Subject common name (always the first SAN).
    pub subject: Name,
    /// Subject alternative names; entries may be wildcards (`*.example.com`).
    pub sans: Vec<Name>,
    pub issuer: CaId,
    pub not_before: SimTime,
    pub not_after: SimTime,
    /// Ground-truth requester (simulation metadata, not an X.509 field).
    pub requested_by: AccountId,
}

impl Certificate {
    /// Is this a single-SAN, non-wildcard certificate? Figure 20 isolates
    /// these because a hijacker can typically only validate the one
    /// subdomain they control.
    pub fn is_single_san(&self) -> bool {
        self.sans.len() == 1 && !self.sans[0].is_wildcard()
    }

    pub fn has_wildcard(&self) -> bool {
        self.sans.iter().any(Name::is_wildcard)
    }

    /// Does the certificate cover `host` (exact SAN or wildcard match)?
    pub fn covers(&self, host: &Name) -> bool {
        self.sans.iter().any(|san| {
            if san.is_wildcard() {
                host.matches_wildcard(san)
            } else {
                san == host
            }
        })
    }

    /// Valid at `t`?
    pub fn valid_at(&self, t: SimTime) -> bool {
        self.not_before <= t && t < self.not_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn cert(sans: &[&str]) -> Certificate {
        Certificate {
            id: CertId(1),
            subject: n(sans[0]),
            sans: sans.iter().map(|s| n(s)).collect(),
            issuer: CaId::LetsEncrypt,
            not_before: SimTime(100),
            not_after: SimTime(190),
            requested_by: AccountId::Org(0),
        }
    }

    #[test]
    fn single_san_classification() {
        assert!(cert(&["www.example.com"]).is_single_san());
        assert!(!cert(&["www.example.com", "example.com"]).is_single_san());
        assert!(!cert(&["*.example.com"]).is_single_san());
    }

    #[test]
    fn coverage() {
        let c = cert(&["example.com", "*.example.com"]);
        assert!(c.covers(&n("example.com")));
        assert!(c.covers(&n("shop.example.com")));
        assert!(c.covers(&n("a.b.example.com")));
        assert!(!c.covers(&n("other.net")));
        assert!(c.has_wildcard());
    }

    #[test]
    fn validity_window() {
        let c = cert(&["x.com"]);
        assert!(!c.valid_at(SimTime(99)));
        assert!(c.valid_at(SimTime(100)));
        assert!(c.valid_at(SimTime(189)));
        assert!(!c.valid_at(SimTime(190)));
    }
}
