//! Certificate authorities and domain-validated issuance.
//!
//! The issuance pipeline mirrors ACME HTTP-01 semantics: the CA verifies
//! that the requester controls the web content served at each SAN, checks
//! CAA, and (if both pass) signs. The control check is abstracted behind
//! [`DomainControl`] — in the full simulation it is answered by the cloud
//! platform's routing tables ("does this account own the resource that
//! `host` resolves to?"), which is exactly what placing a challenge file
//! proves in the real protocol. This substitution is recorded in DESIGN.md.

use crate::caa::{caa_permits, CaaDecision};
use crate::cert::{CertId, Certificate};
use cloudsim::AccountId;
use dns::{CaaRecord, Name};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::fmt;

/// The CAs in the study's ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CaId {
    /// Free, ACME, the hijackers' favourite (§5.6.1: 95% / 53% of the
    /// anomaly-window single-SAN certs).
    LetsEncrypt,
    /// Free, ACME.
    ZeroSsl,
    /// Paid.
    DigiCert,
    /// Paid.
    Sectigo,
    /// Provider-integrated CA (Azure dashboard issuance).
    AzureCa,
    /// Provider-integrated CA (AWS ACM).
    AwsCa,
}

impl CaId {
    pub fn all() -> &'static [CaId] {
        &[
            CaId::LetsEncrypt,
            CaId::ZeroSsl,
            CaId::DigiCert,
            CaId::Sectigo,
            CaId::AzureCa,
            CaId::AwsCa,
        ]
    }

    /// Does this CA charge for certificates? §5.6.2 discusses CAA policies
    /// that authorize only paid CAs as a (futile) deterrent.
    pub fn is_free(self) -> bool {
        matches!(
            self,
            CaId::LetsEncrypt | CaId::ZeroSsl | CaId::AzureCa | CaId::AwsCa
        )
    }

    /// The identity string CAA `issue` values name.
    pub fn caa_identity(self) -> &'static str {
        match self {
            CaId::LetsEncrypt => "letsencrypt.org",
            CaId::ZeroSsl => "zerossl.com",
            CaId::DigiCert => "digicert.com",
            CaId::Sectigo => "sectigo.com",
            CaId::AzureCa => "azure.microsoft.com",
            CaId::AwsCa => "amazontrust.com",
        }
    }

    /// Default validity period in days (90 for ACME CAs, 365 for paid).
    pub fn validity_days(self) -> i32 {
        if self.is_free() {
            90
        } else {
            365
        }
    }
}

impl fmt::Display for CaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.caa_identity())
    }
}

/// Answers "does `account` control the web root serving `host`?" — the
/// question HTTP-01 validation operationally resolves.
pub trait DomainControl {
    fn controls(&self, account: AccountId, host: &Name, now: SimTime) -> bool;
}

/// Blanket impl so closures can be used in tests and simple scenarios.
impl<F> DomainControl for F
where
    F: Fn(AccountId, &Name, SimTime) -> bool,
{
    fn controls(&self, account: AccountId, host: &Name, now: SimTime) -> bool {
        self(account, host, now)
    }
}

/// Issuance failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueError {
    /// Domain validation failed for the named SAN.
    ValidationFailed(Name),
    /// CAA forbids this CA for the named SAN.
    CaaForbids(Name),
    /// Wildcard SANs cannot be validated via HTTP-01.
    WildcardNeedsDnsValidation(Name),
    /// Empty SAN list.
    NoSans,
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::ValidationFailed(n) => write!(f, "domain validation failed for {n}"),
            IssueError::CaaForbids(n) => write!(f, "CAA forbids issuance for {n}"),
            IssueError::WildcardNeedsDnsValidation(n) => {
                write!(f, "wildcard SAN {n} requires DNS-01")
            }
            IssueError::NoSans => write!(f, "no SANs requested"),
        }
    }
}

impl std::error::Error for IssueError {}

/// Issue a certificate.
///
/// * `control` — HTTP-01 stand-in (see [`DomainControl`]).
/// * `caa_lookup` — returns the *relevant* CAA set for a name (i.e. already
///   climbed; pass `dns::Resolver::find_caa`).
pub fn issue<C, L>(
    ca: CaId,
    account: AccountId,
    sans: &[Name],
    control: &C,
    caa_lookup: &L,
    id: CertId,
    now: SimTime,
) -> Result<Certificate, IssueError>
where
    C: DomainControl + ?Sized,
    L: Fn(&Name) -> Vec<CaaRecord>,
{
    if sans.is_empty() {
        return Err(IssueError::NoSans);
    }
    for san in sans {
        if san.is_wildcard() {
            // HTTP-01 cannot validate wildcards (RFC 8555 §7.4.1); the
            // simulation only models DNS-01 for legitimate owners via their
            // own zone control, expressed through `control` as well.
            let base = Name::from_labels(san.labels()[1..].iter().cloned())
                .map_err(|_| IssueError::WildcardNeedsDnsValidation(san.clone()))?;
            if !control.controls(account, &base, now) {
                return Err(IssueError::WildcardNeedsDnsValidation(san.clone()));
            }
        } else if !control.controls(account, san, now) {
            return Err(IssueError::ValidationFailed(san.clone()));
        }
        let caa = caa_lookup(san);
        let decision = caa_permits(&caa, ca, san.is_wildcard());
        if !decision.permits() {
            debug_assert!(matches!(
                decision,
                CaaDecision::Forbidden | CaaDecision::ForbiddenCritical
            ));
            return Err(IssueError::CaaForbids(san.clone()));
        }
    }
    Ok(Certificate {
        id,
        subject: sans[0].clone(),
        sans: sans.to_vec(),
        issuer: ca,
        not_before: now,
        not_after: now + ca.validity_days(),
        requested_by: account,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// Attacker(0) controls hijacked.example.com; Org(1) controls everything
    /// else under example.com.
    fn control(account: AccountId, host: &Name, _now: SimTime) -> bool {
        match account {
            AccountId::Attacker(0) => host == &n("hijacked.example.com"),
            AccountId::Org(1) => host.ends_with(&n("example.com")),
            _ => false,
        }
    }

    fn no_caa(_: &Name) -> Vec<CaaRecord> {
        Vec::new()
    }

    #[test]
    fn legit_multi_san() {
        let cert = issue(
            CaId::DigiCert,
            AccountId::Org(1),
            &[n("example.com"), n("www.example.com")],
            &control,
            &no_caa,
            CertId(1),
            SimTime(0),
        )
        .unwrap();
        assert!(!cert.is_single_san());
        assert_eq!(cert.not_after - cert.not_before, 365);
    }

    #[test]
    fn hijacker_gets_single_san_only() {
        // The Figure 20 signature: the attacker can validate exactly the one
        // subdomain they control.
        let ok = issue(
            CaId::LetsEncrypt,
            AccountId::Attacker(0),
            &[n("hijacked.example.com")],
            &control,
            &no_caa,
            CertId(2),
            SimTime(0),
        )
        .unwrap();
        assert!(ok.is_single_san());
        assert_eq!(ok.not_after - ok.not_before, 90);
        // But not the parent or a sibling:
        assert_eq!(
            issue(
                CaId::LetsEncrypt,
                AccountId::Attacker(0),
                &[n("hijacked.example.com"), n("example.com")],
                &control,
                &no_caa,
                CertId(3),
                SimTime(0),
            ),
            Err(IssueError::ValidationFailed(n("example.com")))
        );
    }

    #[test]
    fn caa_enforced_but_bypassable() {
        let caa = |name: &Name| {
            if name.ends_with(&n("example.com")) {
                vec![CaaRecord::issue("letsencrypt.org")]
            } else {
                vec![]
            }
        };
        // DigiCert refused...
        assert_eq!(
            issue(
                CaId::DigiCert,
                AccountId::Attacker(0),
                &[n("hijacked.example.com")],
                &control,
                &caa,
                CertId(4),
                SimTime(0),
            ),
            Err(IssueError::CaaForbids(n("hijacked.example.com")))
        );
        // ...but the attacker just uses the authorized free CA (§5.6.2).
        assert!(issue(
            CaId::LetsEncrypt,
            AccountId::Attacker(0),
            &[n("hijacked.example.com")],
            &control,
            &caa,
            CertId(5),
            SimTime(0),
        )
        .is_ok());
    }

    #[test]
    fn wildcard_requires_base_control() {
        // Org(1) controls example.com, so it can get *.example.com.
        assert!(issue(
            CaId::LetsEncrypt,
            AccountId::Org(1),
            &[n("*.example.com")],
            &control,
            &no_caa,
            CertId(6),
            SimTime(0),
        )
        .is_ok());
        // Attacker(0) controls only the subdomain: no wildcard.
        assert!(matches!(
            issue(
                CaId::LetsEncrypt,
                AccountId::Attacker(0),
                &[n("*.example.com")],
                &control,
                &no_caa,
                CertId(7),
                SimTime(0),
            ),
            Err(IssueError::WildcardNeedsDnsValidation(_))
        ));
    }

    #[test]
    fn empty_sans_rejected() {
        assert_eq!(
            issue(
                CaId::LetsEncrypt,
                AccountId::Org(1),
                &[],
                &control,
                &no_caa,
                CertId(8),
                SimTime(0)
            ),
            Err(IssueError::NoSans)
        );
    }

    #[test]
    fn free_paid_partition() {
        assert!(CaId::LetsEncrypt.is_free());
        assert!(CaId::ZeroSsl.is_free());
        assert!(!CaId::DigiCert.is_free());
        assert!(!CaId::Sectigo.is_free());
    }
}
