//! CAA evaluation (RFC 8659).
//!
//! Given the *relevant record set* for a name (found by climbing the DNS
//! tree — `dns::Resolver::find_caa`), decide whether a CA may issue. §5.6.2
//! measures how few domains set CAA at all (2% of parents) and how fewer
//! still restrict issuance to paid CAs (0.4%) — and shows that even those are
//! bypassable because the attacker can simply use an authorized CA.

use crate::ca::CaId;
use dns::CaaRecord;
use serde::{Deserialize, Serialize};

/// Outcome of a CAA check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaaDecision {
    /// No relevant CAA records: any CA may issue.
    PermittedNoRecords,
    /// Relevant records exist and authorize this CA.
    PermittedAuthorized,
    /// Relevant records exist and do not authorize this CA.
    Forbidden,
    /// An unrecognized record with the critical flag forces refusal.
    ForbiddenCritical,
}

impl CaaDecision {
    pub fn permits(self) -> bool {
        matches!(
            self,
            CaaDecision::PermittedNoRecords | CaaDecision::PermittedAuthorized
        )
    }
}

/// Evaluate whether `ca` may issue for a name whose relevant CAA set is
/// `records`. `wildcard` selects `issuewild` semantics (RFC 8659 §4.3: when
/// any `issuewild` record exists it alone controls wildcard issuance,
/// otherwise `issue` records apply).
pub fn caa_permits(records: &[CaaRecord], ca: CaId, wildcard: bool) -> CaaDecision {
    if records.is_empty() {
        return CaaDecision::PermittedNoRecords;
    }
    // Unknown critical property → refuse.
    if records
        .iter()
        .any(|r| r.is_critical() && r.tag != "issue" && r.tag != "issuewild" && r.tag != "iodef")
    {
        return CaaDecision::ForbiddenCritical;
    }
    let tag = if wildcard && records.iter().any(|r| r.tag == "issuewild") {
        "issuewild"
    } else {
        "issue"
    };
    let relevant: Vec<&CaaRecord> = records.iter().filter(|r| r.tag == tag).collect();
    if relevant.is_empty() {
        // Records exist (e.g. only iodef): issuance is not restricted.
        return CaaDecision::PermittedNoRecords;
    }
    let authorized = relevant.iter().any(|r| {
        let v = r.value.trim();
        // `;` (optionally with parameters) denies; otherwise compare the CA
        // domain up to the first `;` parameter separator.
        let domain = v.split(';').next().unwrap_or("").trim();
        !domain.is_empty() && domain.eq_ignore_ascii_case(ca.caa_identity())
    });
    if authorized {
        CaaDecision::PermittedAuthorized
    } else {
        CaaDecision::Forbidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_permits() {
        assert_eq!(
            caa_permits(&[], CaId::LetsEncrypt, false),
            CaaDecision::PermittedNoRecords
        );
    }

    #[test]
    fn issue_match() {
        let recs = vec![CaaRecord::issue("letsencrypt.org")];
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
        assert_eq!(
            caa_permits(&recs, CaId::DigiCert, false),
            CaaDecision::Forbidden
        );
    }

    #[test]
    fn deny_all() {
        let recs = vec![CaaRecord::deny_all()];
        for ca in [CaId::LetsEncrypt, CaId::DigiCert, CaId::ZeroSsl] {
            assert_eq!(caa_permits(&recs, ca, false), CaaDecision::Forbidden);
        }
    }

    #[test]
    fn multiple_issue_records_any_match() {
        let recs = vec![
            CaaRecord::issue("digicert.com"),
            CaaRecord::issue("letsencrypt.org"),
        ];
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
        assert!(caa_permits(&recs, CaId::DigiCert, false).permits());
        assert!(!caa_permits(&recs, CaId::Sectigo, false).permits());
    }

    #[test]
    fn issuewild_controls_wildcards() {
        let recs = vec![
            CaaRecord::issue("letsencrypt.org"),
            CaaRecord::issue_wild("digicert.com"),
        ];
        // Non-wildcard: issue applies.
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
        // Wildcard: only issuewild applies.
        assert!(!caa_permits(&recs, CaId::LetsEncrypt, true).permits());
        assert!(caa_permits(&recs, CaId::DigiCert, true).permits());
    }

    #[test]
    fn iodef_only_does_not_restrict() {
        let recs = vec![CaaRecord {
            flags: 0,
            tag: "iodef".into(),
            value: "mailto:security@example.com".into(),
        }];
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
    }

    #[test]
    fn unknown_critical_forbids() {
        let recs = vec![CaaRecord {
            flags: 0x80,
            tag: "futuretag".into(),
            value: "x".into(),
        }];
        assert_eq!(
            caa_permits(&recs, CaId::LetsEncrypt, false),
            CaaDecision::ForbiddenCritical
        );
        // Non-critical unknown tag is ignored.
        let recs = vec![
            CaaRecord {
                flags: 0,
                tag: "futuretag".into(),
                value: "x".into(),
            },
            CaaRecord::issue("letsencrypt.org"),
        ];
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
    }

    #[test]
    fn value_parameters_ignored() {
        let recs = vec![CaaRecord::issue(
            "letsencrypt.org; validationmethods=http-01",
        )];
        assert!(caa_permits(&recs, CaId::LetsEncrypt, false).permits());
    }

    #[test]
    fn the_papers_point_authorized_ca_still_usable_by_attacker() {
        // §5.6.2: CAA restricting to Let's Encrypt does NOT stop a hijacker —
        // they register with Let's Encrypt too. The decision is identical
        // regardless of who asks; there is no account binding.
        let recs = vec![CaaRecord::issue("letsencrypt.org")];
        let legit = caa_permits(&recs, CaId::LetsEncrypt, false);
        let attacker = caa_permits(&recs, CaId::LetsEncrypt, false);
        assert_eq!(legit, attacker);
        assert!(attacker.permits());
    }
}
