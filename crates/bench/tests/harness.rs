//! Smoke tests: every repro target renders against a tiny study without
//! panicking and contains its paper-comparison markers.

use bench::{json_summary, render_target, TARGETS};
use dangling_core::{Scenario, ScenarioConfig};

fn tiny() -> dangling_core::StudyResults {
    let mut cfg = ScenarioConfig::at_scale(1500);
    cfg.world.n_fortune1000 = 40;
    cfg.world.n_global500 = 20;
    cfg.seed = 3;
    Scenario::new(cfg).run()
}

#[test]
fn every_target_renders() {
    let r = tiny();
    for t in TARGETS {
        let out = render_target(&r, t);
        assert!(!out.is_empty(), "target {t} rendered nothing");
        assert!(
            !out.contains("unknown target"),
            "target {t} not wired: {out}"
        );
    }
}

#[test]
fn paper_markers_present() {
    let r = tiny();
    for (target, marker) in [
        ("fig5", "17,698"),
        ("fig6", "31,810"),
        ("fig10", "89%"),
        ("fig20", "2017"),
        ("table5", "41%"),
        ("table6", "218"),
        ("liveness", "72%"),
        ("economics", "paper: 0"),
        ("cookies", "83"),
        ("malware", "181"),
        ("caa", "0.4%"),
        ("hsts", "16%"),
    ] {
        let out = render_target(&r, target);
        assert!(
            out.contains(marker),
            "target {target} lost its paper anchor {marker:?}:\n{out}"
        );
    }
}

#[test]
fn json_summary_is_complete() {
    let r = tiny();
    let v = json_summary(&r);
    for key in [
        "monitored_total",
        "abused_fqdns",
        "truth_hijacks",
        "ip_takeovers",
        "precision",
        "recall",
        "seo_share",
        "infra_clusters",
    ] {
        assert!(v.get(key).is_some(), "missing json key {key}");
    }
    assert_eq!(v["ip_takeovers"], 0);
    // Round-trips through serde_json text.
    let text = serde_json::to_string(&v).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(back, v);
}

#[test]
fn ablation_renderers_run_on_precomputed_results() {
    let r = tiny();
    let a = bench::ablations::naive_signatures(&r);
    assert!(a.contains("naive"));
    let b = bench::ablations::cutoff_sweep(&r);
    assert!(b.contains("0.95"));
    let c = bench::ablations::probe_methods(&r);
    assert!(c.contains("ICMP") || c.contains("no liveness"));
}
