//! Criterion benches: the storelog persistence substrate under the
//! monitoring pipeline's write pattern — batched appends sealed by a
//! fsynced round commit, then the recovery-scan + replay read path. Sizes
//! bracket real deployments: 10k records ≈ one round at production scale,
//! 1M ≈ a multi-year recorded study.
//!
//! The measured payloads are a real serialized
//! [`dangling_core::pipeline::persist::ObsRecord`], so bytes/record match
//! what `repro --state-dir` actually writes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dangling_core::pipeline::persist::ObsRecord;
use dangling_core::snapshot::Snapshot;
use dns::Rcode;
use simcore::SimTime;
use std::path::PathBuf;
use storelog::{LogReader, LogWriter};

const SHARDS: usize = 16;
/// Records per commit — the pipeline commits once per monitoring round.
const ROUND: usize = 10_000;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "snapshot_log_bench_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One representative observation payload (a serving snapshot with typical
/// content features, no retained HTML — the overwhelmingly common case).
fn sample_payload() -> Vec<u8> {
    let mut snap = Snapshot::unreachable(
        "dev-portal.contoso-f1000-0042.com".parse().unwrap(),
        SimTime(1834),
        Rcode::NoError,
        Some("contoso-dev-portal.azurewebsites.net".parse().unwrap()),
    );
    snap.ip = Some("20.40.60.80".parse().unwrap());
    snap.http_status = Some(200);
    snap.index_hash = 0x1234_5678_9abc_def0;
    snap.index_size = 18_432;
    snap.title = Some("Contoso Developer Portal".into());
    snap.language = Some("en".into());
    snap.keywords = ["developer", "portal", "contoso", "docs", "api"]
        .map(String::from)
        .to_vec();
    snap.sitemap_bytes = Some(48_000);
    let rec = ObsRecord {
        round: SimTime(1834),
        seq: 7,
        snap,
        change: None,
    };
    serde_json::to_vec(&rec).expect("record serializes")
}

fn write_log(dir: &std::path::Path, payload: &[u8], n: usize) {
    let mut w = LogWriter::create(dir, SHARDS, b"bench-config").unwrap();
    for i in 0..n {
        w.append(i % SHARDS, payload);
        if (i + 1) % ROUND == 0 || i + 1 == n {
            w.commit(b"{\"round\":1834}").unwrap();
        }
    }
}

fn bench_append(c: &mut Criterion) {
    let payload = sample_payload();
    let mut g = c.benchmark_group("snapshot_log_append");
    for n in [10_000usize, 100_000, 1_000_000] {
        g.throughput(Throughput::Bytes((payload.len() * n) as u64));
        g.bench_with_input(BenchmarkId::new("append_fsync_commit", n), &n, |b, &n| {
            b.iter(|| {
                let t = TempDir::new("append");
                write_log(&t.0, &payload, n);
                black_box(t)
            })
        });
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let payload = sample_payload();
    let mut g = c.benchmark_group("snapshot_log_replay");
    for n in [10_000usize, 100_000, 1_000_000] {
        let t = TempDir::new("replay");
        write_log(&t.0, &payload, n);
        g.throughput(Throughput::Bytes((payload.len() * n) as u64));
        g.bench_with_input(BenchmarkId::new("scan_all_shards", n), &n, |b, _| {
            b.iter(|| {
                let reader = LogReader::open(&t.0).unwrap();
                let mut records = 0usize;
                for shard in 0..reader.shard_count() {
                    records += reader.read_shard(shard).unwrap().len();
                }
                assert_eq!(records, n);
                black_box(records)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
