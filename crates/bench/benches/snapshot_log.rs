//! Criterion benches: the storelog persistence substrate under the
//! monitoring pipeline's write pattern, measured for both payload formats —
//! v1 (JSON) and v2 (interned/delta binary) — so the format migration's
//! claimed wins stay measured, not asserted.
//!
//! The record stream is a realistic monitoring mix: a ~10k-FQDN pool
//! (subdomains clustered under shared parent domains, shared keyword and
//! title vocabulary) re-observed round after round with ~2% of records
//! changing per round. That shape is exactly what the v2 codec exploits
//! (intern tables amortize the shared strings, deltas collapse the 98%
//! unchanged re-observations), and exactly what `repro --state-dir` writes.
//!
//! Row ids use `n10k`/`n100k`/`n1m` labels — not raw numbers — so CI smoke
//! filters like `-- n10k n100k` select exact sizes without the substring
//! collisions raw `10000`/`100000` would cause.
//!
//! Besides the timed rows, an untimed contract line reports the on-disk
//! size ratio for drift-checking by `scripts/bench_drift.py`:
//!
//! ```text
//! snapshot_log contract: v1_bytes_n100k=... v2_bytes_n100k=... v2_size_pct_of_v1=NN
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dangling_core::diff::ChangeKind;
use dangling_core::pipeline::obs_codec::ShardCodec;
use dangling_core::pipeline::persist::{ChangeMeta, ObsRecord};
use dangling_core::snapshot::{fqdn_shard, Snapshot};
use dns::Rcode;
use simcore::SimTime;
use std::path::{Path, PathBuf};
use storelog::{LogReader, LogWriter};

const SHARDS: usize = 16;
/// FQDN pool size — one monitoring round at production scale.
const POOL: usize = 10_000;
/// Fraction of re-observations that carry a content change: 1 in 50 (~2%).
const CHANGE_EVERY: u64 = 50;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "snapshot_log_bench_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn mix(i: u64, r: u64) -> u64 {
    // Cheap deterministic hash so changed content differs per (record, round).
    (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ r.wrapping_mul(0xff51_afd7_ed55_8ccd)).rotate_left(31)
}

/// The round-0 observation of pool entry `i`: a serving snapshot with
/// typical content features (no retained HTML — the overwhelmingly common
/// case). Strings are deliberately shared across the pool: 500 parent
/// domains, one title template, one keyword vocabulary.
fn base_record(i: usize) -> ObsRecord {
    let parent = i % 500;
    let host = i / 500;
    let fqdn = format!("svc-{host:04}.corp-{parent:03}.example.com");
    let mut snap = Snapshot::unreachable(
        fqdn.parse().unwrap(),
        SimTime(0),
        Rcode::NoError,
        Some(
            format!("corp-{parent:03}-web.azurewebsites.net")
                .parse()
                .unwrap(),
        ),
    );
    snap.ip = Some(std::net::Ipv4Addr::from(
        (0x1428_3c50u32).wrapping_add(i as u32),
    ));
    snap.http_status = Some(200);
    snap.index_hash = mix(i as u64, 0);
    snap.index_size = 18_432;
    snap.title = Some(format!("Corp {parent} Developer Portal"));
    snap.language = Some("en".into());
    snap.keywords = ["developer", "portal", "docs", "api"]
        .map(String::from)
        .to_vec();
    snap.sitemap_bytes = Some(48_000);
    ObsRecord {
        round: SimTime(0),
        seq: i as u32,
        snap,
        change: None,
    }
}

/// Advance the pool to round `r`: every record gets the new day; ~2% get a
/// content change (new hash, grown sitemap) plus change metadata. All
/// values are absolute functions of `(i, r)` so rounds can be regenerated
/// in any order and the stream is identical across bench iterations.
fn advance_round(pool: &mut [ObsRecord], r: u64) {
    for (i, rec) in pool.iter_mut().enumerate() {
        rec.round = SimTime(r as i32);
        rec.snap.day = SimTime(r as i32);
        rec.seq = (r as u32).wrapping_mul(POOL as u32) + i as u32;
        let changed = r > 0 && (i as u64 + r * 53).is_multiple_of(CHANGE_EVERY);
        if changed {
            let before_sitemap = rec.snap.sitemap_bytes;
            rec.snap.index_hash = mix(i as u64, r);
            rec.snap.sitemap_bytes = Some(48_000 + r * 17);
            rec.change = Some(ChangeMeta {
                kinds: vec![ChangeKind::Content, ChangeKind::SitemapGrew],
                before_language: rec.snap.language.clone(),
                before_sitemap_bytes: before_sitemap,
                before_serving: true,
                before_keywords: rec.snap.keywords.clone(),
            });
        } else {
            rec.change = None;
        }
    }
}

/// Write `rounds` pool passes in payload format `version`, one fsynced
/// commit per round — the pipeline's exact cadence. Returns total appended
/// payload bytes.
fn write_log(dir: &Path, version: u32, rounds: u64) -> u64 {
    let mut w = LogWriter::create_versioned(dir, SHARDS, b"bench-config", version).unwrap();
    let mut pool: Vec<ObsRecord> = (0..POOL).map(base_record).collect();
    let mut codecs: Vec<ShardCodec> = (0..SHARDS).map(|_| ShardCodec::new()).collect();
    let mut buf = Vec::new();
    let mut bytes = 0u64;
    for r in 0..rounds {
        advance_round(&mut pool, r);
        for rec in &pool {
            let shard = fqdn_shard(&rec.snap.fqdn, SHARDS);
            buf.clear();
            if version >= 2 {
                codecs[shard].encode_into(rec, &mut buf);
            } else {
                serde_json::to_writer(&mut buf, rec).unwrap();
            }
            bytes += buf.len() as u64;
            w.append(shard, &buf);
        }
        w.commit(format!("{{\"round\":{r}}}").as_bytes()).unwrap();
    }
    bytes
}

/// Recovery-scan + decode of every record, exactly like resume replay:
/// checksum-validate all frames, then decode each payload back to an
/// [`ObsRecord`] (JSON for v1, streaming codec for v2).
fn replay_log(dir: &Path) -> usize {
    let reader = LogReader::open(dir).unwrap();
    let v2 = reader.format_version() >= 2;
    let mut records = 0usize;
    for shard in 0..reader.shard_count() {
        let stream = reader.stream_shard(shard).unwrap();
        let mut codec = ShardCodec::new();
        for payload in stream.iter() {
            let rec = if v2 {
                codec.decode(payload).unwrap()
            } else {
                serde_json::from_slice::<ObsRecord>(payload).unwrap()
            };
            black_box(rec.seq);
            records += 1;
        }
    }
    records
}

fn segment_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .map(|e| e.metadata().unwrap().len())
        .sum()
}

/// `(label, rounds)` — n10k is one pool pass (all-full records, interning
/// only), n100k a ten-round study, n1m a hundred-round multi-year study.
const SIZES: [(&str, u64); 3] = [("n10k", 1), ("n100k", 10), ("n1m", 100)];

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_log_append");
    for (label, rounds) in SIZES {
        g.throughput(Throughput::Elements(rounds * POOL as u64));
        for (fmt, version) in [("v1_json", 1u32), ("v2_binary", 2)] {
            g.bench_with_input(BenchmarkId::new(fmt, label), &rounds, |b, &rounds| {
                b.iter(|| {
                    let t = TempDir::new("append");
                    black_box(write_log(&t.0, version, rounds));
                    t
                })
            });
        }
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_log_replay");
    for (label, rounds) in SIZES {
        let n = rounds as usize * POOL;
        g.throughput(Throughput::Elements(n as u64));
        for (fmt, version) in [("v1_json", 1u32), ("v2_binary", 2)] {
            let t = TempDir::new("replay");
            write_log(&t.0, version, rounds);
            g.bench_with_input(BenchmarkId::new(fmt, label), &n, |b, &n| {
                b.iter(|| {
                    let records = replay_log(&t.0);
                    assert_eq!(records, n);
                    black_box(records)
                })
            });
        }
    }
    g.finish();
}

/// Untimed size contract: on-disk segment bytes for a ten-round (n100k)
/// recording in each format. Always printed (even under CI smoke filters)
/// so `bench_drift.py` can hold the ratio to its budget.
fn size_contract(_c: &mut Criterion) {
    let (v1, v2) = (TempDir::new("size_v1"), TempDir::new("size_v2"));
    write_log(&v1.0, 1, 10);
    write_log(&v2.0, 2, 10);
    let (b1, b2) = (segment_bytes(&v1.0), segment_bytes(&v2.0));
    println!(
        "snapshot_log contract: v1_bytes_n100k={b1} v2_bytes_n100k={b2} \
         v2_size_pct_of_v1={}",
        (b2 * 100).div_ceil(b1)
    );
}

criterion_group!(benches, bench_append, bench_replay, size_contract);
criterion_main!(benches);
