//! Criterion benches: the §6 infrastructure clustering (NN-chain HAC, serial
//! and with the parallel distance-matrix fill) and the co-occurrence graph
//! at increasing identifier counts.

use analysis::{jaccard_distance, CoOccurrenceGraph, Dendrogram};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;

fn synth_sets(n_idents: usize, n_domains: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n_idents)
        .map(|_| {
            let k = rng.gen_range(1..12);
            let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n_domains)).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

fn bench_hac(c: &mut Criterion) {
    let mut g = c.benchmark_group("hac");
    for n in [100usize, 400, 1000] {
        let sets = synth_sets(n, (n / 2) as u32, 7);
        g.bench_with_input(BenchmarkId::new("nn_chain_upgma", n), &n, |b, _| {
            b.iter(|| {
                let d = Dendrogram::build(sets.len(), |i, j| jaccard_distance(&sets[i], &sets[j]));
                black_box(d.cut(0.95))
            })
        });
    }
    g.finish();
}

/// The parallel distance-matrix fill ([`Dendrogram::build_par`]) at a fixed
/// identifier count, scaled over worker threads, plus one large row with a
/// 10 000-domain universe (the paper-scale victim population; identifier
/// count stays in the low thousands because the condensed matrix is O(n²)
/// in identifiers, not domains).
fn bench_hac_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("hac_par");
    let sets = synth_sets(1000, 500, 7);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("nn_chain_upgma_1000", format!("t{threads}")),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let d = Dendrogram::build_par(sets.len(), t, |i, j| {
                        jaccard_distance(&sets[i], &sets[j])
                    });
                    black_box(d.cut(0.95))
                })
            },
        );
    }
    let big = synth_sets(1200, 10_000, 11);
    g.bench_function("nn_chain_upgma_10k_domains_t4", |b| {
        b.iter(|| {
            let d = Dendrogram::build_par(big.len(), 4, |i, j| jaccard_distance(&big[i], &big[j]));
            black_box(d.cut(0.95))
        })
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let items: Vec<Vec<usize>> = (0..2000)
        .map(|_| {
            let k = rng.gen_range(1..6);
            (0..k).map(|_| rng.gen_range(0..500)).collect()
        })
        .collect();
    c.bench_function("cooccurrence_graph_2k_pages", |b| {
        b.iter(|| {
            let g = CoOccurrenceGraph::from_items(500, black_box(&items));
            black_box(g.components())
        })
    });
}

criterion_group!(benches, bench_hac, bench_hac_par, bench_graph);
criterion_main!(benches);
