//! The serve daemon under sustained query load.
//!
//! The untimed contract phase runs the real pipeline (incremental retro,
//! serve sink attached) on one thread while the main thread drives
//! [`serve::run_load`] batches against the live daemon — 1,500 simulated
//! clients per batch on the `wan` latency profile, exactly the machinery the
//! crawl substrate uses for its ≥1,000-in-flight contract. Asserted, not
//! just reported: peak concurrent queries ≥ 1,000, zero torn replies, and
//! round versions advancing *across* batches (reads proceed while rounds
//! commit). Round-publication latency percentiles print greppably for
//! BENCH_serve.json.
//!
//! The timed rows then isolate the read and publish paths: query cost
//! against an idle daemon (status + verdict), the same query while a writer
//! republishes as fast as it can (contended pointer swaps), and the cost of
//! publishing a prebuilt view.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::ScenarioConfig;
use serve::{daemon, LiveView, LoadConfig, Query};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Same full-window config as the serve_equivalence suite: campaigns start
/// in 2020, so the published views carry real verdicts by the later rounds.
fn study_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = 1;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// Contract phase: ≥1,000 concurrent queries against a live, advancing run.
fn live_load_contract() {
    let (sink, handle) = daemon();
    let done = Arc::new(AtomicBool::new(false));
    let pipeline = {
        let done = done.clone();
        std::thread::spawn(move || {
            let results = bench::run_study_cfg_sink(study_cfg(), None, true, Box::new(sink));
            done.store(true, Ordering::SeqCst);
            results
        })
    };

    let cfg = LoadConfig::default(); // 1,500 clients x 4 queries, wan pacing
    let mut batches = 0u64;
    let mut peak = 0u64;
    let mut torn = 0u64;
    let mut queries = 0u64;
    let mut first_round = u64::MAX;
    let mut last_round = 0u64;
    // Batch loop-then-check: even if the pipeline outruns the first batch,
    // at least one full batch runs against the final state.
    loop {
        let report = serve::run_load(&handle, &cfg);
        batches += 1;
        peak = peak.max(report.peak_inflight);
        torn += report.torn;
        queries += report.queries;
        first_round = first_round.min(report.first_round);
        last_round = last_round.max(report.last_round);
        if done.load(Ordering::SeqCst) {
            break;
        }
    }
    let results = pipeline.join().expect("pipeline thread");
    assert!(
        !results.abuse.is_empty(),
        "the driven run must detect abuse or the load is against empty views"
    );
    assert_eq!(torn, 0, "replies must never mix rounds ({queries} queries)");
    assert!(
        peak >= 1_000,
        "load driver must sustain >= 1000 concurrent queries, peaked at {peak}"
    );
    assert!(
        handle.rounds_published() > 0 && last_round > first_round,
        "rounds must advance while queries run ({first_round}..{last_round})"
    );

    let publish = obs::histogram("serve.publish_round_ns").snapshot();
    let query = obs::histogram("serve.query_ns").snapshot();
    println!(
        "serve_load contract: batches={batches} queries={queries} peak_inflight={peak} \
         torn={torn} rounds={first_round}..{last_round} \
         query_p50_ns={} query_p99_ns={} query_p999_ns={} \
         publish_p50_ns={} publish_p95_ns={} publish_p99_ns={} publish_p999_ns={}",
        query.quantile(0.50),
        query.quantile(0.99),
        query.quantile(0.999),
        publish.quantile(0.50),
        publish.quantile(0.95),
        publish.quantile(0.99),
        publish.quantile(0.999),
    );
}

fn bench_serve_load(c: &mut Criterion) {
    live_load_contract();

    let mut g = c.benchmark_group("serve_load");
    g.throughput(Throughput::Elements(1));

    // Idle read path: a published synthetic view, no concurrent writer.
    let (mut sink, handle) = daemon();
    sink.publish_raw(Arc::new(LiveView::synthetic(5, 256)));
    let fqdn = handle
        .view()
        .verdicts
        .keys()
        .next()
        .cloned()
        .expect("synthetic view has verdicts");
    g.bench_function("query_status_idle", |b| {
        b.iter(|| black_box(handle.query(&Query::Status)))
    });
    let verdict = Query::Verdict { fqdn };
    g.bench_function("query_verdict_idle", |b| {
        b.iter(|| black_box(handle.query(&verdict)))
    });

    // Contended read path: a writer republishes the same view as fast as it
    // can while the benchmark queries — every load races a pointer swap.
    let (mut wsink, whandle) = daemon();
    let wview = Arc::new(LiveView::synthetic(9, 256));
    wsink.publish_raw(wview.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                wsink.publish_raw(wview.clone());
                std::thread::yield_now();
            }
        })
    };
    g.bench_function("query_status_contended", |b| {
        b.iter(|| black_box(whandle.query(&Query::Status)))
    });
    stop.store(true, Ordering::SeqCst);
    writer.join().expect("writer thread");

    // Publish path: swap in a prebuilt Arc (what a round commit pays on top
    // of building the view).
    let (mut psink, _phandle) = daemon();
    let pview = Arc::new(LiveView::synthetic(3, 256));
    g.bench_function("publish_round", |b| {
        b.iter(|| psink.publish_raw(black_box(pview.clone())))
    });

    g.finish();
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
