//! Telemetry overhead on the hot path: the same monitoring round crawled
//! three ways —
//!
//! 1. **baseline**: a hand-rolled serial crawl loop with no telemetry at all
//!    (the exact work [`CrawlExecutor`]'s serial path does, minus the obs
//!    calls),
//! 2. **instrumented**: [`CrawlExecutor`] as shipped, telemetry compiled in
//!    but neither `--trace` nor `--metrics` exporting (counters/histograms
//!    still count — they are always on),
//! 3. **instrumented+tracing**: the same with span collection enabled.
//!
//! The contract asserted here (and documented in DESIGN.md §7): compiled-in,
//! not-exporting telemetry costs **< 2%** over the uninstrumented loop.
//! Timing is min-of-N wall clock — the minimum is the least noisy estimator
//! for a deterministic workload. Recorded baselines live in `BENCH_obs.json`.

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
use dangling_core::diff::record as diff_record;
use dangling_core::monitor::Crawler;
use dangling_core::pipeline::CrawlExecutor;
use dangling_core::snapshot::SnapshotStore;
use dns::{Authority, Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::{RngTree, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SITES: usize = 400;
const WARMUP: usize = 3;
const REPS: usize = 25;
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// One monitoring round's substrate (mirrors the pipeline_parallel bench).
fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut zs = ZoneSet::new();
    let mut zone = Zone::new("victim.com".parse().unwrap());
    let mut monitored = Vec::new();
    for i in 0..n {
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&format!("site-{i}")),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder(&format!("Site {i}"));
        if i % 3 == 0 {
            content.sitemap = Some(Sitemap::synthetic(1_000, "<urlset/>".into()));
        }
        platform.set_content(id, content);
        let fqdn: Name = format!("s{i}.victim.com").parse().unwrap();
        platform.bind_custom_domain(id, fqdn.clone());
        zone.add(ResourceRecord::new(
            fqdn.clone(),
            300,
            RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
        ));
        monitored.push(fqdn);
    }
    zs.insert(zone);
    for pz in platform.zones().iter() {
        zs.insert(pz.clone());
    }
    (platform, zs, monitored)
}

/// Min-of-N wall clock of `f`, after warmup.
fn min_time(mut f: impl FnMut()) -> Duration {
    for _ in 0..WARMUP {
        f();
    }
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

fn main() {
    let (platform, zs, monitored) = build(SITES);
    let store = SnapshotStore::new();
    let tree = RngTree::new(1);
    let auth = std::sync::Arc::new(Authority::new(zs));

    // 1. Uninstrumented: the serial crawl loop by hand, zero telemetry.
    let base = min_time(|| {
        let resolver = Resolver::new(auth.clone());
        let web = &platform;
        let out: Vec<_> = monitored
            .iter()
            .map(|fqdn| {
                let prev = store.latest(fqdn);
                let snap = Crawler::sample(fqdn, &resolver, web, prev, SimTime(7));
                let change = prev.and_then(|p| diff_record(p, snap.clone()));
                (snap, change)
            })
            .collect();
        black_box(out);
    });

    // 2. Instrumented, telemetry idle (metrics counting, no span collection).
    obs::set_tracing(false);
    let exec = CrawlExecutor::new(1, 0.0);
    let instr = min_time(|| {
        let out = exec.run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(auth.clone()),
            &|| &platform,
        );
        black_box(out);
    });

    // 3. Instrumented with span collection on (what `--trace` costs).
    obs::set_tracing(true);
    let traced = min_time(|| {
        let out = exec.run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(auth.clone()),
            &|| &platform,
        );
        black_box(out);
    });
    obs::set_tracing(false);
    drop(obs::take_spans()); // don't let bench spans leak into later exports

    let pct = |a: Duration, b: Duration| (b.as_secs_f64() / a.as_secs_f64() - 1.0) * 100.0;
    let overhead = pct(base, instr);
    let overhead_traced = pct(base, traced);
    println!("obs_overhead/crawl_{SITES}_sites (min of {REPS}):");
    println!(
        "  uninstrumented        {:>10.3} ms",
        base.as_secs_f64() * 1e3
    );
    println!(
        "  instrumented (idle)   {:>10.3} ms  ({overhead:+.2}%)",
        instr.as_secs_f64() * 1e3
    );
    println!(
        "  instrumented (traced) {:>10.3} ms  ({overhead_traced:+.2}%)",
        traced.as_secs_f64() * 1e3
    );

    assert!(
        overhead < MAX_OVERHEAD_PCT,
        "idle telemetry overhead {overhead:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
    );
    println!("PASS: idle telemetry overhead {overhead:.2}% < {MAX_OVERHEAD_PCT}%");
}
