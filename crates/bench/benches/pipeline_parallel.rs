//! Shard-parallel stage scaling: the same workload run with 1/2/4/8 worker
//! threads, for the weekly crawl and for the retrospective pass (benign
//! clustering, signature validation, signature matching). The determinism
//! contract says the *output* is identical for every row here — only
//! wall-clock should move. The scaling target is ≥2× on the 4-thread rows
//! over the serial rows; note this needs ≥4 real cores (on a single-CPU
//! container the threaded rows can only add scheduling overhead).
//!
//! The `pipeline_scale` group is the paper-scale tier: timed crawl rows at
//! n100k/n1m (row ids use size labels, not raw numbers, so CI filters like
//! `-- n100k` select exact sizes), plus an untimed contract phase that runs
//! one full 1M-site round at every thread count and *asserts* — not just
//! reports — byte-identical outcomes and the per-FQDN memory budget. The
//! contract prints one greppable line::
//!
//!     pipeline_scale contract: sites=... identical_across_threads=1 ...
//!
//! which `scripts/bench_drift.py` checks against `BENCH_pipeline.json`.

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::benign::cluster_changes_sharded;
use dangling_core::diff::{ChangeKind, ChangeRecord};
use dangling_core::exec_metric_names;
use dangling_core::pipeline::{CrawlExecutor, ShardedExecutor};
use dangling_core::signature::{
    derive_signatures, match_all, validate_signatures_sharded, SignatureFold,
};
use dangling_core::snapshot::{fqdn_shard, Snapshot, SnapshotStore, DEFAULT_SHARDS};
use dns::{Authority, Name, Rcode, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::{RngTree, SimTime};

/// A platform hosting `n` bound sites with real content, plus the org zone
/// pointing at them — the substrate of one monitoring round.
fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut zs = ZoneSet::new();
    let mut zone = Zone::new("victim.com".parse().unwrap());
    let mut monitored = Vec::new();
    for i in 0..n {
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&format!("site-{i}")),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder(&format!("Site {i}"));
        if i % 3 == 0 {
            content.sitemap = Some(Sitemap::synthetic(1_000, "<urlset/>".into()));
        }
        platform.set_content(id, content);
        let fqdn: Name = format!("s{i}.victim.com").parse().unwrap();
        platform.bind_custom_domain(id, fqdn.clone());
        zone.add(ResourceRecord::new(
            fqdn.clone(),
            300,
            RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
        ));
        monitored.push(fqdn);
    }
    zs.insert(zone);
    for pz in platform.zones().iter() {
        zs.insert(pz.clone());
    }
    (platform, zs, monitored)
}

fn bench_crawl_scaling(c: &mut Criterion) {
    let (platform, zs, monitored) = build(400);
    let store = SnapshotStore::new();
    let tree = RngTree::new(1);
    // Shared authority: per-thread resolver construction must be cheap, as
    // it is in the real pipeline (`world.dns()` hands out a borrow).
    let auth = std::sync::Arc::new(Authority::new(zs));
    let mut g = c.benchmark_group("pipeline_parallel");
    g.throughput(Throughput::Elements(monitored.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let exec = CrawlExecutor::new(threads, 0.0);
        g.bench_function(format!("crawl_400_sites_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.run(
                    &monitored,
                    &store,
                    &tree,
                    SimTime(7),
                    &|| Resolver::new(auth.clone()),
                    &|| &platform,
                ))
            })
        });
    }
    g.finish();
}

/// Campaign vocabulary pools, one per synthetic campaign: records drawing
/// from the same pool overlap enough to fall into one derivation group.
const POOLS: &[&[&str]] = &[
    &["slot", "judi", "gacor", "daftar"],
    &["premium", "domains", "sale", "offer"],
    &["casino", "poker", "bonus", "spin"],
    &["replica", "watches", "luxury", "outlet"],
];

/// `n` suspicious change records spread over a few campaigns, apexes and
/// rounds — the shape the retro pass sees after Algorithm-1 filtering.
fn synth_changes(n: usize) -> Vec<ChangeRecord> {
    (0..n)
        .map(|i| {
            let pool = POOLS[i % POOLS.len()];
            let fqdn: Name = format!("h{i}.apex{}.com", i % 23).parse().unwrap();
            let day = SimTime(10 + (i as i32 % 6) * 7);
            let mut after = Snapshot::unreachable(fqdn.clone(), day, Rcode::NoError, None);
            after.http_status = Some(200);
            after.index_hash = i as u64;
            after.keywords = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i % pool.len())
                .map(|(_, w)| w.to_string())
                .collect();
            after.sitemap_bytes = (i % 3 == 0).then_some(800_000);
            after.identifiers = vec![format!("phone:62{}", i % 5)];
            ChangeRecord {
                fqdn,
                day,
                kinds: vec![ChangeKind::BecameReachable],
                before_language: None,
                before_sitemap_bytes: None,
                before_serving: false,
                before_keywords: Vec::new(),
                after,
            }
        })
        .collect()
}

/// The three shard-parallel retro stages over a 2 000-change history:
/// benign clustering, signature validation against a benign corpus, and
/// signature matching. Same keyed-shard partition as the live pipeline, so
/// every thread count produces identical results.
fn bench_retro_scaling(c: &mut Criterion) {
    let changes = synth_changes(2_000);
    let signatures = derive_signatures(&changes, 2);
    assert!(
        !signatures.is_empty(),
        "bench workload must derive signatures"
    );
    let benign: Vec<Snapshot> = synth_changes(400)
        .into_iter()
        .enumerate()
        .map(|(i, rec)| {
            let mut s = rec.after;
            s.keywords = vec![format!("benign{}", i % 50), "newsletter".into()];
            s.identifiers.clear();
            s
        })
        .collect();
    let corpus: Vec<&Snapshot> = benign.iter().collect();

    let mut g = c.benchmark_group("retro_parallel");
    g.throughput(Throughput::Elements(changes.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.cluster"));
        g.bench_function(format!("cluster_2000_changes_t{threads}"), |b| {
            b.iter(|| {
                black_box(cluster_changes_sharded(
                    &changes,
                    |fqdn| Some((fqdn.to_string().len() % 7) as u16),
                    &exec,
                ))
            })
        });
    }
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.validate"));
        g.bench_function(format!("validate_sigs_t{threads}"), |b| {
            b.iter(|| {
                black_box(validate_signatures_sharded(
                    signatures.clone(),
                    &corpus,
                    &exec,
                ))
            })
        });
    }
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.match"));
        g.bench_function(format!("match_2000_changes_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.map(
                    &changes,
                    DEFAULT_SHARDS,
                    |rec| fqdn_shard(&rec.fqdn, DEFAULT_SHARDS),
                    || (),
                    |_, _, rec| match_all(&signatures, &rec.after).len(),
                ))
            })
        });
    }
    g.finish();
}

/// The streaming signature fold against the one-shot batch derivation over
/// the same 2 000-change history. `derive_batch` is what the batch retro
/// pass pays once at the horizon; `fold_stream` is the incremental pass's
/// total push cost plus one final emission; `fold_per_round_emit` adds a
/// signature emission at every round boundary — the real per-round overhead
/// `repro --incremental` trades for streaming visibility.
fn bench_incremental_retro(c: &mut Criterion) {
    let mut changes = synth_changes(2_000);
    // Arrival order: rounds by strictly increasing day, FQDN-sorted within.
    changes.sort_by(|a, b| (a.day, &a.fqdn).cmp(&(b.day, &b.fqdn)));
    let mut rounds: Vec<&[ChangeRecord]> = Vec::new();
    let mut start = 0;
    for i in 1..=changes.len() {
        if i == changes.len() || changes[i].day != changes[start].day {
            rounds.push(&changes[start..i]);
            start = i;
        }
    }

    let mut g = c.benchmark_group("retro_incremental");
    g.throughput(Throughput::Elements(changes.len() as u64));
    g.bench_function("derive_batch_2000", |b| {
        b.iter(|| black_box(derive_signatures(&changes, 2)))
    });
    g.bench_function("fold_stream_2000", |b| {
        b.iter(|| {
            let mut fold = SignatureFold::new();
            for rec in &changes {
                fold.push(rec);
            }
            black_box(fold.signatures(2))
        })
    });
    g.bench_function("fold_per_round_emit_2000", |b| {
        b.iter(|| {
            let mut fold = SignatureFold::new();
            let mut emitted = 0;
            for round in &rounds {
                for rec in *round {
                    fold.push(rec);
                }
                emitted += fold.signatures(2).len();
            }
            black_box(emitted)
        })
    });
    g.finish();
}

/// FNV-1a over the `Debug` form of every outcome, in canonical order. The
/// `Debug` form covers the whole snapshot (FQDN, rcode, cname chain, status,
/// features, retained HTML) plus the diff and timing fields, so two runs
/// hash equal only if they agree byte for byte.
fn outcome_hash(outcomes: &[dangling_core::pipeline::CrawlOutcome]) -> u64 {
    use std::fmt::Write as _;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = String::new();
    for o in outcomes {
        buf.clear();
        write!(buf, "{o:?}").unwrap();
        for b in buf.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Mirror of the criterion shim's row selection, so the expensive
/// paper-scale worlds are only built when a `pipeline_scale` row (or no
/// filter at all) was asked for — the retro/crawl smoke filters must not
/// pay for a million-site build they never measure.
fn scale_rows_selected(ids: &[&str]) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-') && a != "bench" && a != "test")
        .collect();
    filters.is_empty()
        || ids
            .iter()
            .any(|id| filters.iter().any(|f| id.contains(f.as_str())))
}

/// Paper-scale crawl rows and the million-domain determinism/memory
/// contract. Timed rows sample one weekly round against a fresh store at
/// n100k and n1m; the contract phase (untimed, run whenever a `n1m` or
/// `contract` row is selected) then:
///
/// - runs the same 1M-site round at every thread count in {1, 2, 4, 8} and
///   asserts the outcome hashes are identical — the interned pipeline's
///   headline equivalence, at full population scale,
/// - ingests a round and re-crawls to reach the steady state (HTML retained
///   only on change), and asserts the store + monitored set + intern table
///   stay under [`BYTES_PER_FQDN_BUDGET`] bytes per FQDN.
fn bench_paper_scale(c: &mut Criterion) {
    let want_100k = scale_rows_selected(&[
        "pipeline_scale/crawl_n100k_t1",
        "pipeline_scale/crawl_n100k_t8",
    ]);
    let want_1m = scale_rows_selected(&[
        "pipeline_scale/crawl_n1m_t1",
        "pipeline_scale/crawl_n1m_t8",
        "pipeline_scale/contract",
    ]);
    if !want_100k && !want_1m {
        return;
    }
    let mut g = c.benchmark_group("pipeline_scale");

    if want_100k {
        let (platform, zs, monitored) = build(100_000);
        let store = SnapshotStore::new();
        let tree = RngTree::new(1);
        let auth = std::sync::Arc::new(Authority::new(zs));
        g.throughput(Throughput::Elements(monitored.len() as u64));
        for threads in [1usize, 8] {
            let exec = CrawlExecutor::new(threads, 0.0);
            g.bench_function(format!("crawl_n100k_t{threads}"), |b| {
                b.iter(|| {
                    black_box(exec.run(
                        &monitored,
                        &store,
                        &tree,
                        SimTime(7),
                        &|| Resolver::new(auth.clone()),
                        &|| &platform,
                    ))
                })
            });
        }
    }

    if !want_1m {
        g.finish();
        return;
    }
    let (platform, zs, monitored) = build(1_000_000);
    let store = SnapshotStore::new();
    let tree = RngTree::new(1);
    let auth = std::sync::Arc::new(Authority::new(zs));
    g.throughput(Throughput::Elements(monitored.len() as u64));
    for threads in [1usize, 8] {
        let exec = CrawlExecutor::new(threads, 0.0);
        g.bench_function(format!("crawl_n1m_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.run(
                    &monitored,
                    &store,
                    &tree,
                    SimTime(7),
                    &|| Resolver::new(auth.clone()),
                    &|| &platform,
                ))
            })
        });
    }
    g.finish();

    // ----- contract phase (untimed, always run) -----
    let mut first_hash = None;
    let mut identical = true;
    let mut round_t1_ns = 0u64;
    let mut last_outcomes = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let exec = CrawlExecutor::new(threads, 0.0);
        let start = std::time::Instant::now();
        let outcomes = exec.run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(auth.clone()),
            &|| &platform,
        );
        if threads == 1 {
            round_t1_ns = start.elapsed().as_nanos() as u64;
        }
        let h = outcome_hash(&outcomes);
        identical &= *first_hash.get_or_insert(h) == h;
        last_outcomes = outcomes;
    }
    assert!(
        identical,
        "1M-site round outcomes differ across thread counts — the \
         determinism contract is broken at paper scale"
    );

    // Steady state: ingest the first round (first sight retains HTML), then
    // re-crawl the unchanged world so retained HTML is dropped on replace —
    // the population-proportional footprint a long run actually holds.
    let mut steady = SnapshotStore::new();
    for o in last_outcomes {
        steady.insert(o.snap);
    }
    let exec = CrawlExecutor::new(8, 0.0);
    let start = std::time::Instant::now();
    let outcomes = exec.run(
        &monitored,
        &steady,
        &tree,
        SimTime(14),
        &|| Resolver::new(auth.clone()),
        &|| &platform,
    );
    let steady_round_ns = start.elapsed().as_nanos() as u64;
    for o in outcomes {
        steady.insert(o.snap);
    }
    let bpf = dangling_core::bytes_per_fqdn_of(&steady, &monitored);
    assert!(
        bpf > 0.0 && bpf <= dangling_core::BYTES_PER_FQDN_BUDGET,
        "steady-state 1M-site store costs {bpf:.0} bytes/FQDN, over the {} \
         budget",
        dangling_core::BYTES_PER_FQDN_BUDGET
    );
    println!(
        "pipeline_scale contract: sites={} identical_across_threads={} \
         bytes_per_fqdn={} budget={} round_t1_ns={round_t1_ns} \
         steady_round_t8_ns={steady_round_ns}",
        monitored.len(),
        identical as u32,
        bpf as u64,
        dangling_core::BYTES_PER_FQDN_BUDGET as u64,
    );
}

criterion_group!(
    benches,
    bench_crawl_scaling,
    bench_retro_scaling,
    bench_incremental_retro,
    bench_paper_scale
);
criterion_main!(benches);
