//! Shard-parallel crawl executor scaling: the same monitoring round crawled
//! with 1/2/4/8 worker threads. The determinism contract says the *output*
//! is identical for every row here — only wall-clock should move. The
//! scaling target is ≥2× on the 4-thread row over the serial row; note
//! this needs ≥4 real cores (on a single-CPU container the threaded rows
//! can only add scheduling overhead).

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::pipeline::CrawlExecutor;
use dangling_core::snapshot::SnapshotStore;
use dns::{Authority, Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::{RngTree, SimTime};

/// A platform hosting `n` bound sites with real content, plus the org zone
/// pointing at them — the substrate of one monitoring round.
fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut zs = ZoneSet::new();
    let mut zone = Zone::new("victim.com".parse().unwrap());
    let mut monitored = Vec::new();
    for i in 0..n {
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&format!("site-{i}")),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder(&format!("Site {i}"));
        if i % 3 == 0 {
            content.sitemap = Some(Sitemap::synthetic(1_000, "<urlset/>".into()));
        }
        platform.set_content(id, content);
        let fqdn: Name = format!("s{i}.victim.com").parse().unwrap();
        platform.bind_custom_domain(id, fqdn.clone());
        zone.add(ResourceRecord::new(
            fqdn.clone(),
            300,
            RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
        ));
        monitored.push(fqdn);
    }
    zs.insert(zone);
    for pz in platform.zones().iter() {
        zs.insert(pz.clone());
    }
    (platform, zs, monitored)
}

fn bench_crawl_scaling(c: &mut Criterion) {
    let (platform, zs, monitored) = build(400);
    let store = SnapshotStore::new();
    let tree = RngTree::new(1);
    // Shared authority: per-thread resolver construction must be cheap, as
    // it is in the real pipeline (`world.dns()` hands out a borrow).
    let auth = std::sync::Arc::new(Authority::new(zs));
    let mut g = c.benchmark_group("pipeline_parallel");
    g.throughput(Throughput::Elements(monitored.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let exec = CrawlExecutor::new(threads, 0.0);
        g.bench_function(format!("crawl_400_sites_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.run(
                    &monitored,
                    &store,
                    &tree,
                    SimTime(7),
                    &|| Resolver::new(auth.clone()),
                    &|| &platform,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_crawl_scaling);
criterion_main!(benches);
