//! Shard-parallel stage scaling: the same workload run with 1/2/4/8 worker
//! threads, for the weekly crawl and for the retrospective pass (benign
//! clustering, signature validation, signature matching). The determinism
//! contract says the *output* is identical for every row here — only
//! wall-clock should move. The scaling target is ≥2× on the 4-thread rows
//! over the serial rows; note this needs ≥4 real cores (on a single-CPU
//! container the threaded rows can only add scheduling overhead).

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::benign::cluster_changes_sharded;
use dangling_core::diff::{ChangeKind, ChangeRecord};
use dangling_core::exec_metric_names;
use dangling_core::pipeline::{CrawlExecutor, ShardedExecutor};
use dangling_core::signature::{
    derive_signatures, match_all, validate_signatures_sharded, SignatureFold,
};
use dangling_core::snapshot::{fqdn_shard, Snapshot, SnapshotStore, DEFAULT_SHARDS};
use dns::{Authority, Name, Rcode, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::{RngTree, SimTime};

/// A platform hosting `n` bound sites with real content, plus the org zone
/// pointing at them — the substrate of one monitoring round.
fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut zs = ZoneSet::new();
    let mut zone = Zone::new("victim.com".parse().unwrap());
    let mut monitored = Vec::new();
    for i in 0..n {
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&format!("site-{i}")),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder(&format!("Site {i}"));
        if i % 3 == 0 {
            content.sitemap = Some(Sitemap::synthetic(1_000, "<urlset/>".into()));
        }
        platform.set_content(id, content);
        let fqdn: Name = format!("s{i}.victim.com").parse().unwrap();
        platform.bind_custom_domain(id, fqdn.clone());
        zone.add(ResourceRecord::new(
            fqdn.clone(),
            300,
            RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
        ));
        monitored.push(fqdn);
    }
    zs.insert(zone);
    for pz in platform.zones().iter() {
        zs.insert(pz.clone());
    }
    (platform, zs, monitored)
}

fn bench_crawl_scaling(c: &mut Criterion) {
    let (platform, zs, monitored) = build(400);
    let store = SnapshotStore::new();
    let tree = RngTree::new(1);
    // Shared authority: per-thread resolver construction must be cheap, as
    // it is in the real pipeline (`world.dns()` hands out a borrow).
    let auth = std::sync::Arc::new(Authority::new(zs));
    let mut g = c.benchmark_group("pipeline_parallel");
    g.throughput(Throughput::Elements(monitored.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let exec = CrawlExecutor::new(threads, 0.0);
        g.bench_function(format!("crawl_400_sites_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.run(
                    &monitored,
                    &store,
                    &tree,
                    SimTime(7),
                    &|| Resolver::new(auth.clone()),
                    &|| &platform,
                ))
            })
        });
    }
    g.finish();
}

/// Campaign vocabulary pools, one per synthetic campaign: records drawing
/// from the same pool overlap enough to fall into one derivation group.
const POOLS: &[&[&str]] = &[
    &["slot", "judi", "gacor", "daftar"],
    &["premium", "domains", "sale", "offer"],
    &["casino", "poker", "bonus", "spin"],
    &["replica", "watches", "luxury", "outlet"],
];

/// `n` suspicious change records spread over a few campaigns, apexes and
/// rounds — the shape the retro pass sees after Algorithm-1 filtering.
fn synth_changes(n: usize) -> Vec<ChangeRecord> {
    (0..n)
        .map(|i| {
            let pool = POOLS[i % POOLS.len()];
            let fqdn: Name = format!("h{i}.apex{}.com", i % 23).parse().unwrap();
            let day = SimTime(10 + (i as i32 % 6) * 7);
            let mut after = Snapshot::unreachable(fqdn.clone(), day, Rcode::NoError, None);
            after.http_status = Some(200);
            after.index_hash = i as u64;
            after.keywords = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i % pool.len())
                .map(|(_, w)| w.to_string())
                .collect();
            after.sitemap_bytes = (i % 3 == 0).then_some(800_000);
            after.identifiers = vec![format!("phone:62{}", i % 5)];
            ChangeRecord {
                fqdn,
                day,
                kinds: vec![ChangeKind::BecameReachable],
                before_language: None,
                before_sitemap_bytes: None,
                before_serving: false,
                before_keywords: Vec::new(),
                after,
            }
        })
        .collect()
}

/// The three shard-parallel retro stages over a 2 000-change history:
/// benign clustering, signature validation against a benign corpus, and
/// signature matching. Same keyed-shard partition as the live pipeline, so
/// every thread count produces identical results.
fn bench_retro_scaling(c: &mut Criterion) {
    let changes = synth_changes(2_000);
    let signatures = derive_signatures(&changes, 2);
    assert!(
        !signatures.is_empty(),
        "bench workload must derive signatures"
    );
    let benign: Vec<Snapshot> = synth_changes(400)
        .into_iter()
        .enumerate()
        .map(|(i, rec)| {
            let mut s = rec.after;
            s.keywords = vec![format!("benign{}", i % 50), "newsletter".into()];
            s.identifiers.clear();
            s
        })
        .collect();
    let corpus: Vec<&Snapshot> = benign.iter().collect();

    let mut g = c.benchmark_group("retro_parallel");
    g.throughput(Throughput::Elements(changes.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.cluster"));
        g.bench_function(format!("cluster_2000_changes_t{threads}"), |b| {
            b.iter(|| {
                black_box(cluster_changes_sharded(
                    &changes,
                    |fqdn| Some((fqdn.to_string().len() % 7) as u16),
                    &exec,
                ))
            })
        });
    }
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.validate"));
        g.bench_function(format!("validate_sigs_t{threads}"), |b| {
            b.iter(|| {
                black_box(validate_signatures_sharded(
                    signatures.clone(),
                    &corpus,
                    &exec,
                ))
            })
        });
    }
    for threads in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::new(threads, exec_metric_names!("bench.retro.match"));
        g.bench_function(format!("match_2000_changes_t{threads}"), |b| {
            b.iter(|| {
                black_box(exec.map(
                    &changes,
                    DEFAULT_SHARDS,
                    |rec| fqdn_shard(&rec.fqdn, DEFAULT_SHARDS),
                    || (),
                    |_, _, rec| match_all(&signatures, &rec.after).len(),
                ))
            })
        });
    }
    g.finish();
}

/// The streaming signature fold against the one-shot batch derivation over
/// the same 2 000-change history. `derive_batch` is what the batch retro
/// pass pays once at the horizon; `fold_stream` is the incremental pass's
/// total push cost plus one final emission; `fold_per_round_emit` adds a
/// signature emission at every round boundary — the real per-round overhead
/// `repro --incremental` trades for streaming visibility.
fn bench_incremental_retro(c: &mut Criterion) {
    let mut changes = synth_changes(2_000);
    // Arrival order: rounds by strictly increasing day, FQDN-sorted within.
    changes.sort_by(|a, b| (a.day, &a.fqdn).cmp(&(b.day, &b.fqdn)));
    let mut rounds: Vec<&[ChangeRecord]> = Vec::new();
    let mut start = 0;
    for i in 1..=changes.len() {
        if i == changes.len() || changes[i].day != changes[start].day {
            rounds.push(&changes[start..i]);
            start = i;
        }
    }

    let mut g = c.benchmark_group("retro_incremental");
    g.throughput(Throughput::Elements(changes.len() as u64));
    g.bench_function("derive_batch_2000", |b| {
        b.iter(|| black_box(derive_signatures(&changes, 2)))
    });
    g.bench_function("fold_stream_2000", |b| {
        b.iter(|| {
            let mut fold = SignatureFold::new();
            for rec in &changes {
                fold.push(rec);
            }
            black_box(fold.signatures(2))
        })
    });
    g.bench_function("fold_per_round_emit_2000", |b| {
        b.iter(|| {
            let mut fold = SignatureFold::new();
            let mut emitted = 0;
            for round in &rounds {
                for rec in *round {
                    fold.push(rec);
                }
                emitted += fold.signatures(2).len();
            }
            black_box(emitted)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crawl_scaling,
    bench_retro_scaling,
    bench_incremental_retro
);
criterion_main!(benches);
