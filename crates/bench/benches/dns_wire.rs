//! Criterion benches: DNS wire codec and resolver throughput — the
//! substrate cost under the collection pipeline (1.5M+ weekly resolutions
//! in the real study).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dns::wire::{decode, encode};
use dns::{
    Authority, Message, Name, RecordData, RecordType, Resolver, ResourceRecord, Zone, ZoneSet,
};
use simcore::SimTime;

fn sample_message() -> Message {
    let q = Message::query(7, "shop.example.com".parse().unwrap(), RecordType::A);
    let mut r = Message::response(&q, dns::Rcode::NoError);
    r.answers.push(ResourceRecord::new(
        "shop.example.com".parse().unwrap(),
        300,
        RecordData::Cname("shop-prod.azurewebsites.net".parse().unwrap()),
    ));
    r.answers.push(ResourceRecord::new(
        "shop-prod.azurewebsites.net".parse().unwrap(),
        60,
        RecordData::A("20.40.60.80".parse().unwrap()),
    ));
    r
}

fn build_world(n_subdomains: usize) -> Resolver<Authority> {
    let mut zs = ZoneSet::new();
    let mut org = Zone::new("example.com".parse().unwrap());
    let mut cloud = Zone::new("azurewebsites.net".parse().unwrap());
    for i in 0..n_subdomains {
        let sub: Name = format!("svc{i}.example.com").parse().unwrap();
        let target: Name = format!("example-svc{i}.azurewebsites.net").parse().unwrap();
        org.add(ResourceRecord::new(
            sub,
            300,
            RecordData::Cname(target.clone()),
        ));
        cloud.add(ResourceRecord::new(
            target,
            60,
            RecordData::A(
                format!("20.40.{}.{}", i / 250, i % 250 + 1)
                    .parse()
                    .unwrap(),
            ),
        ));
    }
    zs.insert(org);
    zs.insert(cloud);
    Resolver::new(Authority::new(zs))
}

fn bench_wire(c: &mut Criterion) {
    let msg = sample_message();
    let wire = encode(&msg);
    let mut g = c.benchmark_group("dns_wire");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode(black_box(&msg))));
    g.bench_function("decode", |b| b.iter(|| decode(black_box(&wire)).unwrap()));
    g.bench_function("roundtrip", |b| {
        b.iter(|| decode(&encode(black_box(&msg))).unwrap())
    });
    g.finish();
}

fn bench_resolver(c: &mut Criterion) {
    let resolver = build_world(1000);
    let names: Vec<Name> = (0..1000)
        .map(|i| format!("svc{i}.example.com").parse().unwrap())
        .collect();
    let mut g = c.benchmark_group("resolver");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("resolve_1k_cname_chains", |b| {
        let mut day = 0;
        b.iter(|| {
            day += 1;
            for n in &names {
                black_box(resolver.resolve_a(n, SimTime(day)));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wire, bench_resolver);
criterion_main!(benches);
