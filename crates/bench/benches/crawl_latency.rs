//! The event-driven crawl under modeled network latency.
//!
//! One worker drives a single shard's completion queue over 1,200 sites —
//! proving a lone event loop sustains ≥1,000 concurrent in-flight crawls
//! (the `crawl.inflight` gauge is asserted, not just reported). The rows
//! compare the legacy blocking path (`off`), the degenerate evented clock
//! (`zero` — the overhead of the submit/poll machinery itself), and the
//! `wan` profile (full latency sampling: keyed RNG draw per network event,
//! queue reordering by completion time).

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent, Sitemap};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::pipeline::CrawlExecutor;
use dangling_core::snapshot::SnapshotStore;
use dns::{Authority, Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::{LatencyModel, LatencyProfile, RngTree, SimTime};

const SITES: usize = 1_200;

fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut zs = ZoneSet::new();
    let mut zone = Zone::new("victim.com".parse().unwrap());
    let mut monitored = Vec::new();
    for i in 0..n {
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&format!("site-{i}")),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let mut content = SiteContent::placeholder(&format!("Site {i}"));
        if i % 3 == 0 {
            content.sitemap = Some(Sitemap::synthetic(1_000, "<urlset/>".into()));
        }
        platform.set_content(id, content);
        let fqdn: Name = format!("s{i}.victim.com").parse().unwrap();
        platform.bind_custom_domain(id, fqdn.clone());
        zone.add(ResourceRecord::new(
            fqdn.clone(),
            300,
            RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
        ));
        monitored.push(fqdn);
    }
    zs.insert(zone);
    for pz in platform.zones().iter() {
        zs.insert(pz.clone());
    }
    (platform, zs, monitored)
}

fn bench_crawl_latency(c: &mut Criterion) {
    let (platform, zs, monitored) = build(SITES);
    // One shard: the whole site set lands in a single event loop, so one
    // worker must interleave every crawl.
    let store = SnapshotStore::with_shards(1);
    let tree = RngTree::new(1);
    let auth = std::sync::Arc::new(Authority::new(zs));

    // Contract check before timing anything: a single worker draining the
    // wan-profile completion queue holds ≥1,000 crawls in flight at once.
    {
        let exec = CrawlExecutor::new(1, 0.0)
            .with_latency(LatencyProfile::by_name("wan").unwrap())
            .with_max_inflight(4 * SITES);
        let out = exec.run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(auth.clone()),
            &|| &platform,
        );
        assert_eq!(out.len(), SITES);
        let peak = obs::gauge("crawl.inflight").get();
        assert!(
            peak >= 1_000.0,
            "one worker must sustain >= 1000 in-flight crawls, peaked at {peak}"
        );
        assert!(
            out.iter().any(|o| o.sim_elapsed_ns > 0),
            "wan profile must consume virtual time"
        );
    }

    let mut g = c.benchmark_group("crawl_latency");
    g.throughput(Throughput::Elements(SITES as u64));
    for (label, model) in [
        ("blocking_off", LatencyModel::off()),
        ("evented_zero", LatencyProfile::by_name("zero").unwrap()),
        ("evented_wan", LatencyProfile::by_name("wan").unwrap()),
    ] {
        let exec = CrawlExecutor::new(1, 0.0)
            .with_latency(model)
            .with_max_inflight(4 * SITES);
        g.bench_function(format!("{label}_{SITES}_sites_t1"), |b| {
            b.iter(|| {
                black_box(exec.run(
                    &monitored,
                    &store,
                    &tree,
                    SimTime(7),
                    &|| Resolver::new(auth.clone()),
                    &|| &platform,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_crawl_latency);
criterion_main!(benches);
