//! Criterion benches: cloud-platform hot paths — registration lifecycle and
//! virtual-host request serving (the crawler's per-sample cost).

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use httpsim::{Endpoint, Request};
use rand::SeedableRng;
use simcore::SimTime;

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("register_release_cycle", |b| {
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let name = format!("app-{i}");
            let id = platform
                .register(
                    ServiceId::AzureWebApp,
                    Some(&name),
                    None,
                    AccountId::Org(1),
                    SimTime(0),
                    &mut rng,
                )
                .unwrap();
            platform.release(black_box(id), SimTime(0));
        })
    });
}

fn bench_serving(c: &mut Criterion) {
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut hosts = Vec::new();
    for i in 0..1000 {
        let name = format!("site-{i}");
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some(&name),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        platform.set_content(id, SiteContent::placeholder(&format!("Site {i}")));
        let res = platform.resource(id).unwrap();
        hosts.push((res.generated_fqdn.clone().unwrap().to_string(), res.ip));
    }
    let mut g = c.benchmark_group("vhost_serving");
    g.throughput(Throughput::Elements(hosts.len() as u64));
    g.bench_function("http_serve_1k_hosts", |b| {
        b.iter(|| {
            for (host, ip) in &hosts {
                let resp = platform.http_serve(*ip, &Request::get(host, "/"), SimTime(0));
                black_box(resp);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lifecycle, bench_serving);
criterion_main!(benches);
