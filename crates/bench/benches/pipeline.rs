//! Criterion benches: the detection pipeline's hot paths — Algorithm 1
//! classification, snapshot diffing, signature matching, HTML feature
//! extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dangling_core::collect::Collector;
use dangling_core::signature::{Signature, HUGE_SITEMAP_BYTES};
use dangling_core::snapshot::Snapshot;
use dns::{Authority, Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use simcore::SimTime;

fn setup_resolver(n: usize) -> (Resolver<Authority>, Vec<Name>) {
    let mut zs = ZoneSet::new();
    let mut org = Zone::new("victim.com".parse().unwrap());
    let mut cloud = Zone::new("azurewebsites.net".parse().unwrap());
    let mut names = Vec::new();
    for i in 0..n {
        let sub: Name = format!("s{i}.victim.com").parse().unwrap();
        let target: Name = format!("victim-s{i}.azurewebsites.net").parse().unwrap();
        org.add(ResourceRecord::new(
            sub.clone(),
            300,
            RecordData::Cname(target.clone()),
        ));
        if i % 2 == 0 {
            cloud.add(ResourceRecord::new(
                target,
                60,
                RecordData::A("20.40.0.9".parse().unwrap()),
            ));
        }
        names.push(sub);
    }
    zs.insert(org);
    zs.insert(cloud);
    (Resolver::new(Authority::new(zs)), names)
}

fn bench_algorithm1(c: &mut Criterion) {
    let (resolver, names) = setup_resolver(1000);
    let collector = Collector::new();
    let mut g = c.benchmark_group("algorithm1");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("collect_1k_fqdns", |b| {
        b.iter(|| black_box(collector.collect_fqdns(&names, &resolver, SimTime(0))))
    });
    g.finish();
}

fn abuse_page() -> String {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let spec = contentgen::abuse::AbuseSpec {
        topic: contentgen::abuse::AbuseTopic::Gambling,
        technique: contentgen::abuse::SeoTechnique::DoorwayPages,
        page_count: 30_000,
        use_meta_keywords: true,
        maintenance_shell_lang: None,
        links: contentgen::abuse::CampaignLinks {
            phones: vec!["6281111111111".into()],
            social: vec!["t.me/gacor".into()],
            shortlinks: vec!["bit.ly/abc".into()],
            backend_ips: vec!["203.0.113.9".parse().unwrap()],
            target_site: "maxwin.example".into(),
            referral_code: "REF1".into(),
        },
        network_peers: vec![],
        template_keywords: vec![],
    };
    contentgen::abuse::build_abuse_site(&spec, "h.victim.com", &mut rng).index_html
}

fn bench_extraction(c: &mut Criterion) {
    let html = abuse_page();
    let mut g = c.benchmark_group("extraction");
    g.throughput(Throughput::Bytes(html.len() as u64));
    g.bench_function("full_feature_extraction", |b| {
        b.iter(|| {
            let mut s = Snapshot::unreachable(
                "h.victim.com".parse().unwrap(),
                SimTime(0),
                dns::Rcode::NoError,
                None,
            );
            s.http_status = Some(200);
            s.ingest_content(black_box(&html), false);
            black_box(s)
        })
    });
    g.finish();
}

fn bench_signature_matching(c: &mut Criterion) {
    let html = abuse_page();
    let mut snap = Snapshot::unreachable(
        "h.victim.com".parse().unwrap(),
        SimTime(0),
        dns::Rcode::NoError,
        None,
    );
    snap.http_status = Some(200);
    snap.ingest_content(&html, false);
    snap.sitemap_bytes = Some(900_000);
    let signatures: Vec<Signature> = (0..200)
        .map(|i| Signature {
            id: i,
            keywords: vec!["slot".into(), "gacor".into()],
            min_sitemap_bytes: (i % 2 == 0).then_some(HUGE_SITEMAP_BYTES),
            script_markers: if i % 3 == 0 {
                vec!["popunder.js".into()]
            } else {
                vec![]
            },
            requires_identifiers: i % 5 == 0,
            source_members: 4,
            source_slds: 3,
        })
        .collect();
    let mut g = c.benchmark_group("signatures");
    g.throughput(Throughput::Elements(signatures.len() as u64));
    g.bench_function("match_200_signatures", |b| {
        b.iter(|| {
            black_box(
                signatures
                    .iter()
                    .filter(|s| s.matches(black_box(&snap)))
                    .count(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_extraction,
    bench_signature_matching
);
criterion_main!(benches);
