//! # bench — experiment harness
//!
//! One renderer per table/figure of the paper (see DESIGN.md §3 for the
//! index), shared between the `repro` binary and the integration tests.
//! Every renderer prints the simulated measurement next to the paper's
//! reported value so EXPERIMENTS.md can be filled by running
//! `cargo run -p bench --bin repro -- all`.

pub mod ablations;
pub mod render;

use dangling_core::{
    PersistError, PersistOptions, RoundSink, Scenario, ScenarioConfig, StudyResults,
};

/// Run the default study at the given scale/seed.
pub fn run_study(scale_denominator: u32, seed: u64) -> StudyResults {
    run_study_with(scale_denominator, seed, 1)
}

/// The study configuration the `repro` binary runs: the paper's scenario at
/// `1/scale_denominator` scale with an explicit seed and crawl thread count.
pub fn study_config(scale_denominator: u32, seed: u64, threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(scale_denominator);
    cfg.seed = seed;
    cfg.crawl_threads = threads;
    cfg
}

/// [`study_config`] with an explicit crawl latency profile (one of
/// [`simcore::LatencyProfile::NAMES`]); `repro --latency-profile` maps here.
pub fn study_config_with_profile(
    scale_denominator: u32,
    seed: u64,
    threads: usize,
    latency_profile: &str,
) -> ScenarioConfig {
    let mut cfg = study_config(scale_denominator, seed, threads);
    cfg.latency_profile = latency_profile.into();
    cfg
}

/// Run an explicit configuration with the smoke-run bounds and retro-pass
/// mode of the `repro` binary. The named entry points above delegate here.
pub fn run_study_cfg(
    cfg: ScenarioConfig,
    max_rounds: Option<u64>,
    incremental: bool,
) -> StudyResults {
    let mut scenario = Scenario::new(cfg).incremental(incremental);
    if let Some(r) = max_rounds {
        scenario = scenario.max_rounds(r);
    }
    scenario.run()
}

/// Run the default study with an explicit crawl thread count. Results are
/// byte-identical for any `threads` (the pipeline's determinism contract);
/// only wall-clock changes.
pub fn run_study_with(scale_denominator: u32, seed: u64, threads: usize) -> StudyResults {
    Scenario::new(study_config(scale_denominator, seed, threads)).run()
}

/// Like [`run_study_with`], but stopping after at most `max_rounds`
/// monitoring rounds (the retrospective pass still runs). This is the
/// smoke-run entry point: `repro --rounds N` without `--persist` maps here.
pub fn run_study_rounds(
    scale_denominator: u32,
    seed: u64,
    threads: usize,
    max_rounds: Option<u64>,
) -> StudyResults {
    run_study_rounds_incremental(scale_denominator, seed, threads, max_rounds, false)
}

/// [`run_study_rounds`] with the retro-pass mode explicit: `incremental`
/// streams the §3.2 signature pass round by round instead of running it once
/// at the horizon. Results are byte-identical either way (the
/// `incremental_equivalence` suite pins this); `repro --incremental` maps
/// here.
pub fn run_study_rounds_incremental(
    scale_denominator: u32,
    seed: u64,
    threads: usize,
    max_rounds: Option<u64>,
    incremental: bool,
) -> StudyResults {
    run_study_cfg(
        study_config(scale_denominator, seed, threads),
        max_rounds,
        incremental,
    )
}

/// Like [`run_study_with`], but recording every observation round to the
/// storelog state dir in `opts` (and replaying from it when `opts.resume`).
/// Fails instead of clobbering an existing state dir or resuming a run
/// recorded under a different configuration.
pub fn run_study_persisted(
    scale_denominator: u32,
    seed: u64,
    threads: usize,
    opts: &PersistOptions,
) -> Result<StudyResults, PersistError> {
    run_study_persisted_incremental(scale_denominator, seed, threads, opts, false)
}

/// [`run_study_persisted`] with the retro-pass mode explicit. With
/// `opts.resume` and `incremental`, replayed rounds stream straight from the
/// storelog segments into the incremental retro pass — no re-crawl.
pub fn run_study_persisted_incremental(
    scale_denominator: u32,
    seed: u64,
    threads: usize,
    opts: &PersistOptions,
    incremental: bool,
) -> Result<StudyResults, PersistError> {
    run_study_cfg_persisted(
        study_config(scale_denominator, seed, threads),
        opts,
        incremental,
    )
}

/// Persisted run of an explicit configuration (the `--latency-profile` +
/// `--persist` combination needs both knobs).
pub fn run_study_cfg_persisted(
    cfg: ScenarioConfig,
    opts: &PersistOptions,
    incremental: bool,
) -> Result<StudyResults, PersistError> {
    Scenario::new(cfg)
        .incremental(incremental)
        .run_persisted(opts)
}

/// [`run_study_cfg`] with a [`RoundSink`] attached: the sink observes every
/// committed round and can request a graceful stop at a round boundary.
/// `repro --serve` runs the daemon's publication sink through here.
pub fn run_study_cfg_sink(
    cfg: ScenarioConfig,
    max_rounds: Option<u64>,
    incremental: bool,
    sink: Box<dyn RoundSink>,
) -> StudyResults {
    let mut scenario = Scenario::new(cfg).incremental(incremental).round_sink(sink);
    if let Some(r) = max_rounds {
        scenario = scenario.max_rounds(r);
    }
    scenario.run()
}

/// [`run_study_cfg_persisted`] with a [`RoundSink`] attached. With
/// `opts.resume`, the recorded rounds replay *through the sink* too — a
/// resumed `--serve` daemon republishes the sealed history before going
/// live.
pub fn run_study_cfg_persisted_sink(
    cfg: ScenarioConfig,
    opts: &PersistOptions,
    incremental: bool,
    sink: Box<dyn RoundSink>,
) -> Result<StudyResults, PersistError> {
    Scenario::new(cfg)
        .incremental(incremental)
        .round_sink(sink)
        .run_persisted(opts)
}

/// All renderable targets, in paper order.
pub const TARGETS: &[&str] = &[
    "summary",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig15",
    "fig16",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig26",
    "fig27",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "liveness",
    "economics",
    "seo",
    "cookies",
    "malware",
    "caa",
    "hsts",
    "detection",
    "latency",
    "critical-path",
];

/// Ablation targets (each runs extra scenarios).
pub const ABLATIONS: &[&str] = &[
    "ablation-randomized",
    "ablation-cooldown",
    "ablation-signatures",
    "ablation-cutoff",
    "ablation-probe",
    "extension-wordpress",
];

/// Render a single target against precomputed results.
pub fn render_target(results: &StudyResults, target: &str) -> String {
    use render::*;
    match target {
        "summary" => summary(results),
        "fig1" => fig1(results),
        "fig2" => fig2(results),
        "fig3" => fig3(results),
        "fig4" => fig4(results),
        "fig5" => fig5(results),
        "fig6" => fig6(results),
        "fig7" => fig7(results),
        "fig8" => fig8(results),
        "fig9" => fig9(results),
        "fig10" => fig10(results),
        "fig11" => fig11(results),
        "fig12" => fig12(results),
        "fig15" => fig15(results),
        "fig16" => fig16(results),
        "fig18" => fig18(results),
        "fig19" => fig19(results),
        "fig20" => fig20(results),
        "fig21" => fig21(results),
        "fig22" => fig22(results),
        "fig26" => fig26(results),
        "fig27" => fig27(results),
        "table1" => table1(results),
        "table2" => table2(results),
        "table3" => table3(results),
        "table4" => table4(),
        "table5" => table5(results),
        "table6" => table6(results),
        "liveness" => liveness(results),
        "economics" => economics(results),
        "seo" => seo(results),
        "cookies" => cookies(results),
        "malware" => malware(results),
        "caa" => caa(results),
        "hsts" => hsts(results),
        "detection" => detection(results),
        "latency" => latency(results),
        "critical-path" => critical_path(results),
        other => format!("unknown target {other:?}; known: {TARGETS:?} + {ABLATIONS:?}\n"),
    }
}

/// Machine-readable summary of a run (for EXPERIMENTS.md tooling and
/// regression tracking across seeds/scales).
pub fn json_summary(r: &StudyResults) -> serde_json::Value {
    let (f500, g500) = r.enterprise_victim_rates();
    let (seo_frac, _) = r.seo_shares();
    let liveness = r.liveness_rates();
    let (fqdns, slds, apex) = r.fig5_sld_stats();
    let infra = dangling_core::infra::cluster_infrastructure(&r.infra_inputs());
    let (_, total_files, mean_files) = r.fig6_upload_histogram();
    let freetext_hijacks = r
        .world
        .truth
        .iter()
        .filter(|t| cloudsim::provider::spec(t.service).naming == cloudsim::NamingModel::Freetext)
        .count();
    serde_json::json!({
        "scale_denominator": r.scale.denominator,
        "feed_size": r.feed_size,
        "monitored_total": r.monitored_total,
        "changes_total": r.changes_total,
        "signatures": r.signatures.len(),
        "signatures_discarded": r.signatures_discarded,
        "abused_fqdns": fqdns,
        "abused_slds": slds,
        "abused_apex_level": apex,
        "truth_hijacks": r.world.truth.len(),
        "freetext_hijacks": freetext_hijacks,
        "ip_takeovers": r.world.truth.len() - freetext_hijacks,
        "ip_lottery_declines": r.ip_lottery_declines,
        "precision": r.detection.precision(),
        "recall": r.detection.recall(),
        "fortune500_victim_rate": f500,
        "global500_victim_rate": g500,
        "seo_share": seo_frac,
        "liveness": liveness.map(|(icmp, tcp, http)| serde_json::json!({
            "icmp": icmp, "tcp": tcp, "http": http,
        })),
        "uploaded_files_total": total_files,
        "uploaded_files_mean": mean_files,
        "infra_clusters": infra.clusters.len(),
        "infra_identifiers": infra.identifier_count,
        "infra_covered_domains": infra.covered_domains,
        "caa_blocked_certs": r.caa_blocked_certs,
        "ct_log_entries": r.world.ct.len(),
    })
}
