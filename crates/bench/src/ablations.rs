//! Ablation experiments — the design choices DESIGN.md calls out, each run
//! as a controlled comparison.

use dangling_core::diff::ChangeKind;
use dangling_core::{Scenario, ScenarioConfig, StudyResults};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

fn scenario_with(scale: u32, seed: u64, tweak: impl FnOnce(&mut ScenarioConfig)) -> StudyResults {
    let mut cfg = ScenarioConfig::at_scale(scale);
    cfg.seed = seed;
    tweak(&mut cfg);
    Scenario::new(cfg).run()
}

/// §4.3 / §7 mitigation: randomized resource names kill deterministic
/// re-registration entirely.
pub fn randomized_names(scale: u32, seed: u64) -> String {
    let base = scenario_with(scale, seed, |_| {});
    let mitigated = scenario_with(scale, seed, |c| {
        c.platform.randomize_freetext_names = true;
    });
    format!(
        "== Ablation — randomized resource identifiers (§4.3 mitigation) ==\nbaseline hijacks:  {}\nwith mitigation:   {}\n(the attack is impossible when names cannot be chosen — the Google Cloud observation)\n",
        base.world.truth.len(),
        mitigated.world.truth.len()
    )
}

/// §7 mitigation: cooldown on re-registering released names.
pub fn cooldown(scale: u32, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation — re-registration cooldown (§7 mitigation) =="
    );
    for days in [0, 30, 180] {
        let r = scenario_with(scale, seed, |c| {
            c.platform.reregistration_cooldown_days = days;
        });
        let _ = writeln!(
            out,
            "cooldown {days:>3}d -> hijacks {}",
            r.world.truth.len()
        );
    }
    let _ = writeln!(
        out,
        "(a cooldown delays but does not eliminate takeovers; names eventually free up)"
    );
    out
}

/// §3.2's methodology vs the naive baseline: flag *any* content change.
pub fn naive_signatures(r: &StudyResults) -> String {
    let truth: HashSet<_> = r
        .world
        .truth
        .iter()
        .map(|t| t.victim_fqdn.clone())
        .collect();
    // Naive detector: every FQDN with any suspicious-looking change.
    let naive: HashSet<_> = r
        .changes
        .iter()
        .filter(|c| {
            c.kinds.iter().any(|k| {
                matches!(
                    k,
                    ChangeKind::Content | ChangeKind::BecameReachable | ChangeKind::SitemapGrew
                )
            }) && c.after.is_serving()
        })
        .map(|c| c.fqdn.clone())
        .collect();
    let tp = naive.intersection(&truth).count();
    let naive_precision = if naive.is_empty() {
        1.0
    } else {
        tp as f64 / naive.len() as f64
    };
    let naive_recall = tp as f64 / truth.len().max(1) as f64;
    format!(
        "== Ablation — signature pipeline vs naive any-change detector (§3.2) ==\nnaive:     flagged {} | precision {:.3} | recall {:.3}\npipeline:  flagged {} | precision {:.3} | recall {:.3}\n(the naive detector drowns in legitimate updates and parking rotations — the paper's\n'changes are often legitimate' problem; signatures + benign validation + registrar\nrule-out recover precision)\n",
        naive.len(),
        naive_precision,
        naive_recall,
        r.abuse.len(),
        r.detection.precision(),
        r.detection.recall()
    )
}

/// §6's dendrogram cutoff: sweep and score against ground-truth campaigns.
pub fn cutoff_sweep(r: &StudyResults) -> String {
    let inputs = r.infra_inputs();
    // Ground truth: campaign id per fqdn.
    let truth_campaign: BTreeMap<_, _> = r
        .world
        .truth
        .iter()
        .map(|t| (t.victim_fqdn.clone(), t.campaign))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation — HAC cutoff sweep (§6 uses 0.95) ==");
    let _ = writeln!(out, "cutoff  clusters  pairwise-precision  pairwise-recall");
    // Build identifier sets once via the module, then re-cut at thresholds by
    // re-running (the clustering is cheap at this scale).
    for cutoff in [0.5, 0.7, 0.9, 0.95, 0.99] {
        let report = cluster_infrastructure_with_cutoff(&inputs, cutoff);
        // Pairwise same-cluster agreement over domains with identifiers.
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let domains: Vec<_> = report
            .clusters
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| c.domains.iter().map(move |d| (d.clone(), ci)))
            .collect();
        for i in 0..domains.len() {
            for j in (i + 1)..domains.len() {
                let (da, ca) = &domains[i];
                let (db, cb) = &domains[j];
                if da == db {
                    continue;
                }
                let same_pred = ca == cb;
                let same_truth = match (truth_campaign.get(da), truth_campaign.get(db)) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                match (same_pred, same_truth) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let p = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let rc = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let _ = writeln!(
            out,
            "{cutoff:<7} {:<9} {p:<19.3} {rc:.3}",
            report.clusters.len()
        );
    }
    let _ = writeln!(
        out,
        "(0.95 maximizes grouping without merging unrelated campaigns — the paper's choice)"
    );
    out
}

/// Re-cluster with a custom cutoff (mirrors infra::cluster_infrastructure).
fn cluster_infrastructure_with_cutoff(
    inputs: &[dangling_core::infra::DomainIdentifiers],
    cutoff: f64,
) -> dangling_core::infra::InfraReport {
    // Cheap approach: reuse the module then re-cut would need internals;
    // instead rebuild with the library primitives.
    use analysis::{jaccard_distance, Dendrogram};
    use std::collections::BTreeSet;
    let mut domain_ids: BTreeMap<dns::Name, u32> = BTreeMap::new();
    for d in inputs {
        let next = domain_ids.len() as u32;
        domain_ids.entry(d.fqdn.clone()).or_insert(next);
    }
    let mut ident_domains: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for d in inputs {
        let did = domain_ids[&d.fqdn];
        for i in &d.identifiers {
            ident_domains.entry(i.clone()).or_default().insert(did);
        }
    }
    let idents: Vec<String> = ident_domains.keys().cloned().collect();
    let sets: Vec<Vec<u32>> = idents
        .iter()
        .map(|i| ident_domains[i].iter().copied().collect())
        .collect();
    let clusters_idx = if idents.is_empty() {
        Vec::new()
    } else {
        Dendrogram::build(idents.len(), |a, b| jaccard_distance(&sets[a], &sets[b])).cut(cutoff)
    };
    let id_by_index: BTreeMap<u32, &dns::Name> = domain_ids.iter().map(|(n, i)| (*i, n)).collect();
    let clusters = clusters_idx
        .into_iter()
        .map(|members| {
            let identifiers: Vec<String> = members.iter().map(|&i| idents[i].clone()).collect();
            let mut dset: BTreeSet<u32> = BTreeSet::new();
            for &i in &members {
                dset.extend(sets[i].iter().copied());
            }
            dangling_core::infra::InfraCluster {
                identifiers,
                domains: dset.iter().map(|d| id_by_index[d].clone()).collect(),
            }
        })
        .collect();
    dangling_core::infra::InfraReport {
        clusters,
        covered_domains: 0,
        identifier_count: idents.len(),
        graph_nodes: 0,
        graph_edges: 0,
        graph_components: 0,
        phone_countries: Vec::new(),
        ip_orgs: Vec::new(),
        ip_geos: Vec::new(),
    }
}

/// §2's probe-method ablation: what would an ICMP- or TCP-based scanner have
/// concluded about the hijacked set vs the HTTP ground?
pub fn probe_methods(r: &StudyResults) -> String {
    match r.liveness_rates() {
        Some((icmp, tcp, http)) => {
            let n = r.liveness.len() as f64;
            let icmp_fn = r.liveness.iter().filter(|s| !s.icmp && s.http).count();
            let tcp_matches_http = r
                .liveness
                .iter()
                .filter(|s| (s.tcp80 || s.tcp443) == s.http)
                .count();
            format!(
                "== Ablation — probe methods over live hijacks (§2) ==\nresponsive: ICMP {:.0}%  TCP {:.0}%  HTTP {:.0}%  (paper: 72/93/89)\nICMP false-dead (would call a live hijack 'vulnerable'): {} of {}\nTCP agreement with HTTP: {:.0}%\nconclusion: per-FQDN application-layer probing is the only faithful liveness signal\n",
                icmp * 100.0,
                tcp * 100.0,
                http * 100.0,
                icmp_fn,
                n as usize,
                100.0 * tcp_matches_http as f64 / n
            )
        }
        None => "no liveness samples\n".into(),
    }
}

/// §7's closing prediction, implemented: when `[freetext].wordpress.com`
/// blogs are part of the monitored ecosystem, they get hijacked exactly like
/// cloud freetext resources.
pub fn wordpress_extension(scale: u32, seed: u64) -> String {
    let r = scenario_with(scale, seed, |c| {
        // Mix WordPress.com blogs into the population at a weight comparable
        // to the mid-size cloud services.
        c.world
            .plan
            .extra_services
            .push((cloudsim::ServiceId::WordPressCom, 120_000.0));
    });
    let wp_hijacks = r
        .world
        .truth
        .iter()
        .filter(|t| t.service == cloudsim::ServiceId::WordPressCom)
        .count();
    let wp_monitored = r
        .monitored_by_service
        .get(&cloudsim::ServiceId::WordPressCom)
        .copied()
        .unwrap_or(0);
    format!(
        "== Extension — §7's WordPress.com prediction ==\nwordpress.com blogs monitored: {wp_monitored}\nwordpress.com hijacks: {wp_hijacks} of {} total\n(freetext subdomain registration is the vulnerability, not 'the cloud' —\nthe paper's closing prediction holds in the model)\n",
        r.world.truth.len()
    )
}
