//! Per-figure/table renderers. Each prints the simulated measurement next
//! to the paper's reported value (marked `paper:`), so shape comparisons are
//! immediate.

use analysis::table::{pct, thousands};
use analysis::Table;
use dangling_core::certs::{caa_census, cert_timeline};
use dangling_core::infra::cluster_infrastructure;
use dangling_core::lifespan::{lifespan_stats, timeframes};
use dangling_core::StudyResults;
use simcore::SimTime;
use std::fmt::Write as _;

fn month_label(idx: i32) -> String {
    format!("{:04}-{:02}", idx.div_euclid(12), idx.rem_euclid(12) + 1)
}

/// A text sparkline for a monthly series.
fn spark(series: &[(i32, f64)]) -> String {
    const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    series
        .iter()
        .map(|(_, v)| BARS[((v / max) * 8.0).round() as usize])
        .collect()
}

pub fn summary(r: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Study summary (scale 1/{}) ==", r.scale.denominator);
    let _ = writeln!(
        out,
        "feed {} | monitored {} (paper 1.5M→3.1M) | changes {} | signatures {} (+{} discarded)",
        thousands(r.feed_size as u64),
        thousands(r.monitored_total as u64),
        thousands(r.changes_total as u64),
        r.signatures.len(),
        r.signatures_discarded
    );
    let _ = writeln!(
        out,
        "abused FQDNs {} (paper 20,904; scaled ≈ {}) | truth {} | precision {:.3} recall {:.3}",
        r.abuse.len(),
        r.scale.apply(20_904),
        r.world.truth.len(),
        r.detection.precision(),
        r.detection.recall()
    );
    out
}

pub fn fig1(r: &StudyResults) -> String {
    let (monitored, cumulative) = r.fig1_series();
    let mut t = Table::new("Figure 1 — monitored vs hijacked (cumulative) by month").headers([
        "month",
        "monitored",
        "hijacked-cum",
    ]);
    let cum_at = |m: i32| -> f64 {
        cumulative
            .iter()
            .take_while(|(mm, _)| *mm <= m)
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    for (m, v) in &monitored {
        t.row([
            month_label(*m),
            format!("{v:.0}"),
            format!("{:.0}", cum_at(*m)),
        ]);
    }
    format!(
        "{}\nmonitored: {}\nhijacked:  {}\npaper shape: monitored grows ~2x over 42 months; hijacks accumulate in waves\n",
        t.render(),
        spark(&monitored),
        spark(&cumulative)
    )
}

pub fn fig2(r: &StudyResults) -> String {
    let mut t = Table::new("Figure 2 — % of detected hijacks by signature type").headers([
        "signature type",
        "share",
        "paper",
    ]);
    let paper = |k: &str| match k {
        "KeywordsOnly" => "30.2%",
        "KeywordsSitemap" => "36.1% (additional)",
        "KeywordsInfra" => "10.1%",
        _ => "-",
    };
    for (kind, share) in r.fig2_signature_kinds() {
        let k = format!("{kind:?}");
        t.row([
            k.clone(),
            format!("{:.1}%", share * 100.0),
            paper(&k).to_string(),
        ]);
    }
    t.render()
}

pub fn fig3(r: &StudyResults) -> String {
    let mut t = Table::new("Figure 3 — content classification of hijacked domains")
        .headers(["topic", "share", "paper"]);
    for (topic, share) in r.fig3_topics() {
        let paper = match topic.as_str() {
            "Gambling" => "dominant (gambling/adult lead Table 1)",
            "Adult" => "second",
            "Unknown" => "shell-hidden (the paper's 'HTML Snippet' keywords)",
            _ => "minor",
        };
        t.row([topic, format!("{:.1}%", share * 100.0), paper.to_string()]);
    }
    t.render()
}

pub fn fig4(r: &StudyResults) -> String {
    let pairs = r.fig4_rank_vs_count();
    let mut t = Table::new("Figure 4 — Tranco rank vs hijacked subdomains per SLD (first 25)")
        .headers(["rank", "hijacked subdomains"]);
    for (rank, count) in pairs.iter().take(25) {
        t.row([thousands(*rank as u64), count.to_string()]);
    }
    let tranco_fqdns: u32 = pairs.iter().map(|(_, c)| *c).sum();
    let avg = tranco_fqdns as f64 / pairs.len().max(1) as f64;
    format!(
        "{}\nTranco-ranked SLDs with hijacks: {} | avg hijacked subdomains per ranked SLD: {:.2} (paper: 1.89)\n",
        t.render(),
        pairs.len(),
        avg
    )
}

pub fn fig5(r: &StudyResults) -> String {
    let (fqdns, slds, apex) = r.fig5_sld_stats();
    format!(
        "== Figure 5 — abused names ==\nunique FQDNs: {fqdns} (paper 17,698; scaled ≈ {})\nunique SLDs:  {slds} (paper 11,924)\napex-level:   {apex} (paper 1,565 SLD hijacks)\n",
        r.scale.apply(17_698)
    )
}

pub fn fig6(r: &StudyResults) -> String {
    let (hist, total, mean) = r.fig6_upload_histogram();
    let mut t = Table::new("Figure 6 — HTML files uploaded per abused site (bins of 5,000)")
        .headers(["bin", "sites"]);
    for (lo, c) in hist.bins() {
        if c > 0 {
            t.row([format!("{}+", thousands(lo)), c.to_string()]);
        }
    }
    format!(
        "{}\ntotal files ≈ {} (paper ≈ 492.5M; scaled ≈ {}) | mean per site {:.0} (paper 31,810)\n",
        t.render(),
        thousands(total),
        thousands(r.scale.apply(492_489_492)),
        mean
    )
}

fn victims_table(title: &str, rows: Vec<(String, u32)>, paper_note: &str) -> String {
    let mut t = Table::new(title).headers(["victim apex", "hijacked subdomains"]);
    for (apex, c) in rows {
        t.row([apex, c.to_string()]);
    }
    format!("{}{paper_note}\n", t.render())
}

pub fn fig7(r: &StudyResults) -> String {
    victims_table(
        "Figure 7 — top Tranco-listed victims",
        r.fig7_top_tranco(25),
        "paper: 8,432 Tranco-listed abused domains; top 25 shown",
    )
}

pub fn fig8(r: &StudyResults) -> String {
    let (f500, g500) = r.enterprise_victim_rates();
    let mut s = victims_table(
        "Figure 8 — top Fortune 500 victims",
        r.fig8_top_fortune500(25),
        "",
    );
    let _ = writeln!(
        s,
        "Fortune 500 victim rate: {:.1}% (paper 31%) | Global 500: {:.1}% (paper 25.4%)",
        f500 * 100.0,
        g500 * 100.0
    );
    s
}

pub fn fig9(r: &StudyResults) -> String {
    victims_table(
        "Figure 9 — top university victims",
        r.fig9_top_universities(25),
        "paper: 264 abused university subdomains between 2020 and 2023",
    )
}

pub fn fig10(r: &StudyResults) -> String {
    let series = r.fig10_registrar_diversity();
    let mut t = Table::new("Figure 10 — % change-clusters spanning ≥ X registrars")
        .headers(["X", "share", "paper"]);
    for (x, frac) in &series {
        let paper = match x {
            2 => "89%",
            4 => "33%",
            _ => "-",
        };
        t.row([
            x.to_string(),
            format!("{:.1}%", frac * 100.0),
            paper.to_string(),
        ]);
    }
    format!(
        "{}(clusters confined to one registrar are the parking rotations the rule-out discards)\n",
        t.render()
    )
}

pub fn fig11(r: &StudyResults) -> String {
    let mut t = Table::new("Figure 11 — abuse share by cloud provider")
        .headers(["provider", "share", "paper"]);
    for (p, share) in r.fig11_provider_shares() {
        let paper = match p.as_str() {
            "Azure" => "> 1/2",
            "AWS" => "~1/3",
            _ => "small",
        };
        t.row([p, format!("{:.1}%", share * 100.0), paper.to_string()]);
    }
    t.render()
}

pub fn fig12(r: &StudyResults) -> String {
    let mut t =
        Table::new("Figure 12 — abused content by victim sector").headers(["sector", "hijacks"]);
    for (s, c) in r.fig12_sectors() {
        t.row([s, c.to_string()]);
    }
    format!(
        "{}paper: Industrial/Energy/Motor-Vehicle lead, but abuse is widespread across sectors\n",
        t.render()
    )
}

pub fn fig15(r: &StudyResults) -> String {
    let intervals = r.abuse_intervals();
    let (ecdf, stats) = lifespan_stats(&intervals, r.horizon);
    let mut t = Table::new("Figure 15 — hijack duration ECDF").headers(["days ≤", "fraction"]);
    for d in [5, 15, 30, 65, 100, 200, 365, 700] {
        t.row([d.to_string(), format!("{:.2}", ecdf.fraction_le(d as f64))]);
    }
    format!(
        "{}\nwithin 15d: {:.1}% (paper: 'a large number') | >65d: {:.1}% (paper: >33%) | >1y: {:.1}% (paper: 'some') | median {:.0}d\n",
        t.render(),
        stats.frac_within_15d * 100.0,
        stats.frac_over_65d * 100.0,
        stats.frac_over_1y * 100.0,
        stats.median_days
    )
}

pub fn fig16(r: &StudyResults) -> String {
    let intervals = r.abuse_intervals();
    let (bars, monthly) = timeframes(&intervals, r.horizon);
    let series: Vec<(i32, f64)> = monthly.iter().map(|(m, c)| (*m, *c as f64)).collect();
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 16 — hijack time frames ==");
    let _ = writeln!(out, "domains (sorted by start): {}", bars.len());
    let _ = writeln!(out, "concurrent hijacks by month: {}", spark(&series));
    for (m, c) in &monthly {
        let _ = writeln!(out, "  {}  {:>4} active", month_label(*m), c);
    }
    let _ = writeln!(
        out,
        "paper shape: 2020 burst, early-2021 lull, sustained ramp through 2023"
    );
    out
}

pub fn fig18(r: &StudyResults) -> String {
    let (ages, frac_older_1y) = r.fig18_domain_ages();
    let ecdf = analysis::Ecdf::new(ages.iter().map(|a| *a as f64 / 365.25).collect());
    let mut t =
        Table::new("Figure 18 — WHOIS age of abused SLDs (years)").headers(["age ≤", "fraction"]);
    for y in [1, 3, 5, 10, 15, 20, 25] {
        t.row([y.to_string(), format!("{:.2}", ecdf.fraction_le(y as f64))]);
    }
    format!(
        "{}\nolder than 1 year: {:.2}% (paper: 98.51%); bulk older than a decade\n",
        t.render(),
        frac_older_1y * 100.0
    )
}

pub fn fig19(r: &StudyResults) -> String {
    let (one, multi, by_month) = r.fig19_virustotal();
    let mut t = Table::new("Figure 19 — VirusTotal flags by first-certificate month")
        .headers(["month", "flagged"]);
    for (m, c) in by_month {
        t.row([month_label(m), c.to_string()]);
    }
    format!(
        "{}\nflagged ≥1 vendor: {one} of {} (paper: 135 of 17,698) | ≥2 vendors: {multi} (paper: 18)\n",
        t.render(),
        r.abuse.len()
    )
}

pub fn fig20(r: &StudyResults) -> String {
    let hijacked: Vec<dns::Name> = r.abuse.iter().map(|a| a.fqdn.clone()).collect();
    let tl = cert_timeline(&r.world.ct, &hijacked, 3.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 20 — single-SAN vs multi-SAN certs for hijacked subdomains =="
    );
    let _ = writeln!(
        out,
        "single-SAN total {} (paper 24,239) | multi-SAN/wildcard {} (paper 41,877)",
        tl.single_san_total, tl.multi_san_total
    );
    let _ = writeln!(out, "single-SAN by month: {}", spark(&tl.single_by_month));
    let _ = writeln!(out, "multi-SAN  by month: {}", spark(&tl.multi_by_month));
    let months: Vec<String> = tl.anomaly_months.iter().map(|m| month_label(*m)).collect();
    let _ = writeln!(
        out,
        "anomaly months: {:?} (paper windows: 2017-07/08 and 2022-09..12)",
        months
    );
    let _ = writeln!(
        out,
        "Let's Encrypt share inside anomalies: {:.0}% (paper: 95% / 53%), elsewhere {:.0}%",
        tl.le_share_in_anomalies * 100.0,
        tl.le_share_elsewhere * 100.0
    );
    out
}

pub fn fig21(r: &StudyResults) -> String {
    let infra = cluster_infrastructure(&r.infra_inputs());
    let mut t = Table::new("Figure 21 — phone-number geography (WhatsApp links)")
        .headers(["country", "numbers", "paper"]);
    for (c, n) in &infra.phone_countries {
        let paper = match c.as_str() {
            "Indonesia" => "dominant",
            "Cambodia" => "second",
            _ => "minor",
        };
        t.row([c.clone(), n.to_string(), paper.to_string()]);
    }
    format!(
        "{}paper: 792 unique phone numbers, all Asian country codes\n",
        t.render()
    )
}

pub fn fig22(r: &StudyResults) -> String {
    let infra = cluster_infrastructure(&r.infra_inputs());
    let mut t = Table::new("Figure 22 — top clusters by hijacked domains").headers([
        "#",
        "identifiers",
        "domains",
    ]);
    for (i, c) in infra.clusters.iter().take(50).enumerate() {
        t.row([
            (i + 1).to_string(),
            c.identifiers.len().to_string(),
            c.domains.len().to_string(),
        ]);
    }
    format!(
        "{}\nclusters: {} (paper: 1,798) | identifiers: {} | covered domains: {} of {} (paper: 8,489 of 20,904 ≈ 1/3)\npaper head sizes: 743/414/222/179/112 domains; giant cluster 1,609 identifiers\n",
        t.render(),
        infra.clusters.len(),
        infra.identifier_count,
        infra.covered_domains,
        r.abuse.len()
    )
}

pub fn fig26(r: &StudyResults) -> String {
    let infra = cluster_infrastructure(&r.infra_inputs());
    let mut t = Table::new("Figure 26a — backend-IP hosting organizations").headers(["org", "IPs"]);
    for (o, n) in &infra.ip_orgs {
        t.row([o.clone(), n.to_string()]);
    }
    let mut t2 = Table::new("Figure 26b — backend-IP geography").headers(["geo", "IPs"]);
    for (g, n) in &infra.ip_geos {
        t2.row([g.clone(), n.to_string()]);
    }
    format!(
        "{}\n{}paper: hosting providers concentrated in US, France, Singapore\n",
        t.render(),
        t2.render()
    )
}

pub fn fig27(r: &StudyResults) -> String {
    let infra = cluster_infrastructure(&r.infra_inputs());
    format!(
        "== Figures 27/28 — identifier graph & dendrogram ==\nnodes {} | edges {} | connected components {}\nHAC cutoff 0.95 → {} clusters (paper: 1,798)\nWordPress share of abused pages: {:.0}% (paper: ~22%)\n",
        infra.graph_nodes,
        infra.graph_edges,
        infra.graph_components,
        infra.clusters.len(),
        r.wordpress_share() * 100.0
    )
}

pub fn table1(r: &StudyResults) -> String {
    let mut t = Table::new("Table 1 — top index.html keywords").headers(["#", "keyword", "count"]);
    for (i, (kw, c)) in r.table1_index_keywords(12).into_iter().enumerate() {
        t.row([(i + 1).to_string(), kw, c.to_string()]);
    }
    format!(
        "{}paper top terms: sex, daftar, situs judi, gacor, judi slot online, situs slot, slot gacor…\n",
        t.render()
    )
}

pub fn table2(r: &StudyResults) -> String {
    let mut t = Table::new("Table 2 — abused cloud services among monitored").headers([
        "service",
        "monitored",
        "abused",
        "% abused",
    ]);
    for (s, mon, ab, p) in r.table2_rows() {
        t.row([
            s.to_string(),
            thousands(mon),
            if ab == 0 { "-".into() } else { thousands(ab) },
            if ab == 0 {
                "-".into()
            } else {
                format!("{p:.2}")
            },
        ]);
    }
    format!(
        "{}paper: randomized-allocation services (Google, IP pools) show '-' abuse — reproduced above\n",
        t.render()
    )
}

pub fn table3(r: &StudyResults) -> String {
    let abused = r.abused_by_service();
    let mut t = Table::new("Table 3 — abused freetext resources").headers([
        "provider", "suffix", "function", "record", "abuses", "paper",
    ]);
    let paper = |s: cloudsim::ServiceId| -> &'static str {
        use cloudsim::ServiceId::*;
        match s {
            AzureWebApp => "6,288",
            AzureTrafficManager => "1,468",
            AzureCloudappLegacy => "1,037",
            AzureEdge => "830",
            AzureCloudappRegional => "928",
            AzureWebAppSip => "223",
            AwsS3Website => "2,227",
            AwsElasticBeanstalk => "555",
            HerokuApp => "139",
            PantheonSite => "50",
            NetlifyApp => "14",
            _ => "-",
        }
    };
    let mut rows: Vec<_> = abused.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    for (&s, &c) in rows {
        let spec = cloudsim::provider::spec(s);
        t.row([
            spec.provider.as_str().to_string(),
            format!("[freetext].{}", spec.suffix.unwrap_or("-")),
            spec.function.as_str().to_string(),
            "CNAME".to_string(),
            c.to_string(),
            paper(s).to_string(),
        ]);
    }
    t.render()
}

pub fn table4() -> String {
    use cloudsim::CapabilityClass;
    use dangling_core::capability::{capabilities, cookie_access};
    let mut t = Table::new("Table 4 — attacker capabilities by resource class").headers([
        "class",
        "file",
        "content",
        "html",
        "js",
        "headers",
        "https",
        "cookie access",
    ]);
    for (label, class) in [
        (
            "Static content (S3, Pantheon)",
            CapabilityClass::StaticContent,
        ),
        ("Full webserver (the rest)", CapabilityClass::FullWebserver),
    ] {
        let c = capabilities(class);
        let b = |v: bool| if v { "yes" } else { "-" };
        t.row([
            label.to_string(),
            b(c.file).into(),
            b(c.content).into(),
            b(c.html).into(),
            b(c.javascript).into(),
            b(c.headers).into(),
            b(c.https).into(),
            format!("{:?}", cookie_access(class)),
        ]);
    }
    t.render()
}

pub fn table5(r: &StudyResults) -> String {
    let mut t = Table::new("Table 5 — top meta-tag keywords").headers(["#", "keyword", "count"]);
    for (i, (kw, c)) in r.table5_meta_keywords(12).into_iter().enumerate() {
        t.row([(i + 1).to_string(), kw, c.to_string()]);
    }
    format!(
        "{}paper: slot 144,108 | online 77,669 | judi 60,521 | situs 35,265 | joker123 | terpercaya | gacor…\nmeta-keyword tag present on {:.0}% of abused pages (paper: 41%)\n",
        t.render(),
        r.meta_keyword_fraction() * 100.0
    )
}

pub fn table6(r: &StudyResults) -> String {
    let (top, total) = r.table6_tlds(12);
    let mut t =
        Table::new("Table 6 — top TLDs of abused SLDs").headers(["#", "TLD", "count", "paper"]);
    let paper = |tld: &str| match tld {
        "com" => "12,942",
        "org" => "1,069",
        "net" => "996",
        "uk" | "de" => "758",
        "au" | "edu" => "414",
        "ca" => "398",
        "br" => "308",
        "nl" => "207",
        "jp" => "183",
        "co" => "156",
        _ => "-",
    };
    for (i, (tld, c)) in top.into_iter().enumerate() {
        let p = paper(&tld).to_string();
        t.row([(i + 1).to_string(), tld, c.to_string(), p]);
    }
    format!("{}distinct TLDs: {total} (paper: 218)\n", t.render())
}

pub fn liveness(r: &StudyResults) -> String {
    match r.liveness_rates() {
        Some((icmp, tcp, http)) => format!(
            "== §2 — liveness probe comparison over live hijacks ==\nsamples: {}\nICMP responsive: {:.0}% (paper: 72%)\nTCP 80/443:      {:.0}% (paper: 93%)\nHTTP (Host hdr): {:.0}% (paper: 89%)\nshape: ICMP underestimates liveness; port probes miss virtual-hosting semantics —\nonly the application-layer request reveals whether the *FQDN's* service exists.\n",
            r.liveness.len(),
            icmp * 100.0,
            tcp * 100.0,
            http * 100.0
        ),
        None => "no liveness samples (no hijacks occurred)\n".into(),
    }
}

pub fn economics(r: &StudyResults) -> String {
    let model = attacker::CostModel::default();
    let mut out = String::new();
    let _ = writeln!(out, "== §4.3 — hijack economics ==");
    let freetext = r
        .world
        .truth
        .iter()
        .filter(|t| cloudsim::provider::spec(t.service).naming == cloudsim::NamingModel::Freetext)
        .count();
    let _ = writeln!(
        out,
        "hijacks via freetext re-registration: {} of {} (paper: all of 20,904)",
        freetext,
        r.world.truth.len()
    );
    let _ = writeln!(
        out,
        "IP-pool takeovers: {} (paper: 0) | lottery opportunities evaluated & declined: {}",
        r.world.truth.len() - freetext,
        r.ip_lottery_declines
    );
    let _ = writeln!(
        out,
        "Google-hosted (random-name) abuses: 0 by construction of the attack surface (paper: 0)"
    );
    for rank in [1u32, 100, 10_000] {
        let _ = writeln!(
            out,
            "break-even pool for rank {:>6}: {:>7} addresses (real pools: millions)",
            rank,
            model.breakeven_pool_size(Some(rank))
        );
    }
    out
}

pub fn seo(r: &StudyResults) -> String {
    let (frac, shares) = r.seo_shares();
    let mut t = Table::new("§5.2.1 — SEO technique prevalence among abused pages").headers([
        "technique",
        "share",
        "paper",
    ]);
    for (tech, share) in shares {
        let paper = match tech {
            contentgen::abuse::SeoTechnique::DoorwayPages => "62.13% of SEO",
            contentgen::abuse::SeoTechnique::JapaneseKeywordHack => "7.17% (with link networks)",
            contentgen::abuse::SeoTechnique::KeywordStuffing => "41% carry meta keywords",
            contentgen::abuse::SeoTechnique::LinkNetwork => "(in the 7.17%)",
            contentgen::abuse::SeoTechnique::ClickJacking => "adult pages",
        };
        t.row([
            tech.as_str().to_string(),
            format!("{:.1}%", share * 100.0),
            paper.to_string(),
        ]);
    }
    format!(
        "{}\nSEO share of all abuse: {:.0}% (paper: 75%)\n",
        t.render(),
        frac * 100.0
    )
}

pub fn cookies(r: &StudyResults) -> String {
    let (cookies, subdomains, ips) = r.world.vault.summary();
    format!(
        "== §5.5 — stolen authentication cookies ==\nleaked cookies: {cookies} (paper: 83)\nhijacked subdomains involved: {subdomains} (paper: 3)\nclient source IPs: {ips} (paper: 53)\nnote: leakage requires full-webserver capability for HttpOnly and HTTPS for Secure cookies (Table 4)\n"
    )
}

pub fn malware(r: &StudyResults) -> String {
    let s = attacker::malware::summarize(&r.world.binaries);
    format!(
        "== §5.4 — malware hosting (a negative result) ==\nbinaries offered: {} (paper: 2,628 of 58,353 samples)\nunique APKs: {} (paper: 181, gambling apps)\nunique EXEs: {} (paper: 1)\ntrojan-flagged: {} (paper: 2)\nconclusion: hijacked domains are not a malware channel — reproduced\n",
        s.total_binaries, s.unique_apks, s.unique_exes, s.trojan_flagged
    )
}

pub fn caa(r: &StudyResults) -> String {
    let parents = r.abused_parents();
    let caa_of = |apex: &dns::Name| -> (bool, bool) {
        r.world
            .population
            .orgs
            .iter()
            .find(|o| &o.apex == apex)
            .map(|o| match o.caa {
                worldgen::CaaPolicy::None => (false, false),
                worldgen::CaaPolicy::FreeCa => (true, false),
                worldgen::CaaPolicy::PaidOnly => (true, true),
            })
            .unwrap_or((false, false))
    };
    let hijack_has_cert = |apex: &dns::Name| -> bool {
        r.world
            .truth
            .iter()
            .any(|t| t.cert.is_some() && t.victim_fqdn.sld().as_ref() == Some(apex))
    };
    let census = caa_census(&parents, caa_of, hijack_has_cert);
    format!(
        "== §5.6.2 — CAA census over abused parents ==\nparents: {}\nwith CAA: {} ({}) (paper: 2%)\npaid-only CAA: {} ({}) (paper: 0.4%)\nCAA parents that STILL had hijacks with valid certs: {} (paper: ~half)\nattacker issuances actually blocked by CAA: {}\nconclusion: CAA is not an effective countermeasure — reproduced\n",
        census.parents,
        census.with_caa,
        pct(census.with_caa as u64, census.parents as u64),
        census.paid_only,
        pct(census.paid_only as u64, census.parents as u64),
        census.caa_but_hijack_cert,
        r.caa_blocked_certs
    )
}

pub fn hsts(r: &StudyResults) -> String {
    // Probe the parents over HTTP through the world's web view.
    let web = r.world.web();
    let mut with_hsts = 0usize;
    let mut responding = 0usize;
    let parents = r.abused_parents();
    for apex in &parents {
        let Some(ip) = r.world.origins.ip_of(apex) else {
            continue;
        };
        if let Some(resp) = httpsim::Endpoint::http_serve(
            &web,
            ip,
            &httpsim::Request::get(&apex.to_string(), "/"),
            SimTime::monitor_end(),
        ) {
            responding += 1;
            if resp.headers.contains("Strict-Transport-Security") {
                with_hsts += 1;
            }
        }
    }
    format!(
        "== App. A.2 — HSTS on parents of hijacked subdomains ==\nparents responding: {responding}\nwith HSTS header: {with_hsts} ({})  (paper: >16% of non-error responses)\nimplication: HSTS-pinned clients force hijackers to obtain valid certificates\n",
        pct(with_hsts as u64, responding.max(1) as u64)
    )
}

pub fn detection(r: &StudyResults) -> String {
    format!(
        "== Detection evaluation vs ground truth (simulation-only capability) ==\ntrue positives:  {}\nfalse positives: {}\nfalse negatives: {} (mostly hijacks shorter than the weekly crawl cadence)\nprecision: {:.3} | recall: {:.3}\n",
        r.detection.true_positives,
        r.detection.false_positives,
        r.detection.false_negatives,
        r.detection.precision(),
        r.detection.recall()
    )
}

pub fn latency(r: &StudyResults) -> String {
    let mut out = String::from("== Crawl timing telemetry (modeled network clock) ==\n");
    match r.resolution_latency_summary() {
        None => out.push_str("no rounds recorded latency telemetry (blocking path?)\n"),
        Some(s) => {
            out.push_str(&format!(
                "rounds: {}   crawls sampled: {}\nworst per-round DNS resolution latency: p50 {}  p95 {}  p99 {}  p99.9 {}\n",
                r.resolution_latency.len(),
                s.samples,
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.p99_ns),
                fmt_ns(s.p999_ns),
            ));
            out.push_str("last rounds (day: p50 / p95 / p99 / p99.9):\n");
            for round in r.resolution_latency.iter().rev().take(5).rev() {
                out.push_str(&format!(
                    "  day {:>5}: {} / {} / {} / {}\n",
                    round.day.0,
                    fmt_ns(round.p50_ns),
                    fmt_ns(round.p95_ns),
                    fmt_ns(round.p99_ns),
                    fmt_ns(round.p999_ns),
                ));
            }
        }
    }
    out.push_str(
        "timing is out-of-band: study results are byte-identical across the\n\
         zero/datacenter/wan profiles (see the latency_equivalence suite)\n",
    );
    out
}

/// Per-round critical-path analysis over the causal spans collected during
/// the run (DESIGN.md §12). Renders, for each crawl round: the makespan
/// trace (longest root span in virtual time), its queue-wait vs service
/// decomposition, the causal chain along the critical trace, and the top-K
/// slowest FQDNs.
pub fn critical_path(_r: &StudyResults) -> String {
    let spans = obs::collect_causal();
    if spans.is_empty() {
        return String::from(
            "== Per-round critical path (causal virtual-time traces) ==\n\
             no causal spans collected; run `repro --critical-path` (or --trace)\n\
             to enable causal tracing for this target\n",
        );
    }
    let rounds = obs::critical_paths(&spans, 5);
    let mut out = String::from("== Per-round critical path (causal virtual-time traces) ==\n");
    out.push_str(&format!(
        "causal spans: {}   rounds traced: {}\n",
        spans.len(),
        rounds.len()
    ));
    for rcp in rounds.iter().rev().take(5).rev() {
        out.push_str(&format!(
            "day {:>5}: {} traces, makespan {} ({}), decomposed {:.1}% (queue-wait {} + service {})\n",
            rcp.day,
            rcp.traces,
            fmt_ns(rcp.makespan_ns),
            rcp.critical.fqdn,
            rcp.decomposed_fraction * 100.0,
            fmt_ns(rcp.queue_wait_total_ns),
            fmt_ns(rcp.service_total_ns),
        ));
        out.push_str("  critical chain:");
        for (name, start, dur) in &rcp.chain {
            out.push_str(&format!("  {name}@{}+{}", fmt_ns(*start), fmt_ns(*dur)));
        }
        out.push('\n');
        out.push_str("  slowest traces (fqdn: total = queue-wait + service):\n");
        for d in &rcp.top {
            out.push_str(&format!(
                "    {}: {} = {} + {}\n",
                d.fqdn,
                fmt_ns(d.total_ns),
                fmt_ns(d.queue_wait_ns),
                fmt_ns(d.service_ns),
            ));
        }
    }
    out.push_str(
        "tracing is out-of-band: study results are byte-identical with causal\n\
         tracing on or off, at any sample rate (telemetry_equivalence suite)\n",
    );
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
