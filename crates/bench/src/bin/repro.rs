//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig20 table2 liveness
//! cargo run --release -p bench --bin repro -- --scale 100 --seed 42 all ablations
//! ```

use bench::{
    render_target, run_study_cfg, run_study_cfg_persisted, run_study_cfg_persisted_sink,
    run_study_cfg_sink, study_config_with_profile, ABLATIONS, TARGETS,
};
use dangling_core::{compact_state_dir, migrate_state_dir, PersistOptions, OBS_FORMAT};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Load a `--serve-queries` script: one JSON-encoded [`serve::Query`] per
/// line (`"Status"`, `{"Verdict":{"fqdn":"a.b.example"}}`, ...). Without a
/// script the daemon still answers a status+health pass per round.
fn load_query_script(path: Option<&str>) -> Vec<serve::Query> {
    let Some(path) = path else {
        return vec![serve::Query::Status, serve::Query::Health];
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading query script {path}: {e}"));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            serde_json::from_str(l).unwrap_or_else(|e| panic!("bad query {l:?} in {path}: {e}"))
        })
        .collect()
}

fn main() {
    let mut scale: u32 = 200;
    let mut scale_explicit = false;
    let mut profile: Option<String> = None;
    let mut seed: u64 = 42;
    let mut threads: usize = 1;
    let mut latency_profile: String = "zero".into();
    let mut json_path: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut resume = false;
    let mut incremental = false;
    let mut max_rounds: Option<u64> = None;
    let mut compact = false;
    let mut migrate = false;
    let mut format: Option<u32> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_sample: u64 = 1;
    let mut critical_path_flag = false;
    let mut metrics_path: Option<String> = None;
    let mut progress = false;
    let mut quiet = false;
    let mut serve_mode = false;
    let mut serve_queries: Option<String> = None;
    let mut serve_out: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(args.next().expect("--json takes an output path"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a denominator");
                scale_explicit = true;
            }
            "--profile" => {
                profile = Some(args.next().expect("--profile takes a profile name"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a worker count");
            }
            "--latency-profile" => {
                let name = args.next().expect("--latency-profile takes a profile name");
                if !simcore::LatencyProfile::NAMES.contains(&name.as_str()) {
                    eprintln!(
                        "unknown latency profile {name:?}; expected one of: {}",
                        simcore::LatencyProfile::NAMES.join(" ")
                    );
                    std::process::exit(2);
                }
                latency_profile = name;
            }
            "--persist" => {
                state_dir.get_or_insert_with(|| "repro_state".into());
            }
            "--state-dir" => {
                state_dir = Some(args.next().expect("--state-dir takes a directory path"));
            }
            "--resume" => resume = true,
            "--incremental" => incremental = true,
            "--rounds" => {
                max_rounds = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--rounds takes a round count"),
                );
            }
            "--compact" => compact = true,
            "--migrate-state" => migrate = true,
            "--format" => {
                let v: u32 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--format takes a storelog payload format version");
                if !(storelog::MIN_FORMAT_VERSION..=storelog::FORMAT_VERSION).contains(&v) {
                    eprintln!(
                        "unsupported --format {v}; this build writes \
                         v{}..v{}",
                        storelog::MIN_FORMAT_VERSION,
                        storelog::FORMAT_VERSION
                    );
                    std::process::exit(2);
                }
                format = Some(v);
            }
            "--trace" => {
                trace_path = Some(args.next().expect("--trace takes an output path"));
            }
            "--trace-sample" => {
                trace_sample = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace-sample takes a sampling modulus (keep 1-in-N traces)");
            }
            "--critical-path" => critical_path_flag = true,
            "--metrics" => {
                metrics_path = Some(args.next().expect("--metrics takes an output path"));
            }
            "--serve" => serve_mode = true,
            "--serve-queries" => {
                serve_queries = Some(args.next().expect("--serve-queries takes a script path"));
            }
            "--serve-out" => {
                serve_out = Some(args.next().expect("--serve-out takes an output path"));
            }
            "--progress" => progress = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale N | --profile paper-scale] [--seed N] [--threads N] \
                     [--latency-profile NAME] [--json OUT] \
                     [--persist | --state-dir DIR] [--resume] [--incremental] [--rounds N] \
                     [--format V] [--migrate-state] \
                     [--serve] [--serve-queries FILE] [--serve-out FILE] \
                     [--compact] [--trace OUT] [--trace-sample N] [--critical-path] \
                     [--metrics OUT] [--progress] [-q] <targets...>"
                );
                println!("targets: all | ablations | {}", TARGETS.join(" "));
                println!("ablations: {}", ABLATIONS.join(" "));
                println!("--profile paper-scale runs the full study population (scale 1: the");
                println!("  paper's 1.5M->3.1M monitored-FQDN growth curve), prints the monthly");
                println!("  growth curve, and fails if pipeline.bytes_per_fqdn exceeds the");
                println!(
                    "  documented budget ({:.0} bytes/FQDN). Combine with --scale to smoke the",
                    dangling_core::BYTES_PER_FQDN_BUDGET
                );
                println!("  same checks at reduced scale (CI does).");
                println!("--threads parallelizes the weekly crawl, Algorithm-1 classification");
                println!("  and the retrospective pass; results are byte-identical.");
                println!(
                    "--latency-profile selects the crawl's modeled network clock \
                     ({}; default zero).",
                    simcore::LatencyProfile::NAMES.join(" | ")
                );
                println!("  off = legacy blocking crawl; zero/datacenter/wan only move virtual");
                println!("  time (results byte-identical); lossy drops queries deterministically.");
                println!("--incremental streams the retrospective pass round by round instead");
                println!("  of one batch at the horizon (same results, byte for byte; emits");
                println!("  retro.incr.* metrics). With --resume, recorded rounds replay");
                println!("  straight into it without re-crawling.");
                println!("--persist records observations to ./repro_state (--state-dir names it);");
                println!("--resume continues a recorded run, --rounds N stops after N rounds,");
                println!("--compact drops superseded records from the state dir and exits.");
                println!(
                    "--format V records a fresh state dir with storelog payload format V \
                     (default v{OBS_FORMAT}:"
                );
                println!(
                    "  binary interned/delta records; v1 = legacy JSON). Ignored on --resume."
                );
                println!("--migrate-state rewrites a v1 state dir to v2 in place and exits");
                println!("  (original kept as DIR.v1.bak; replayed results are byte-identical).");
                println!("--trace OUT writes a Chrome trace_event JSON of pipeline spans");
                println!("  (load it at ui.perfetto.dev); --metrics OUT dumps every counter,");
                println!("  gauge and histogram as JSON. Telemetry never changes results.");
                println!("--trace also records per-crawl causal spans (virtual-time track,");
                println!("  flow arrows dns -> connect -> request). --trace-sample N keeps a");
                println!("  deterministic 1-in-N of traces (keyed hash, not RNG; default 1).");
                println!("--critical-path enables causal tracing and renders the per-round");
                println!("  critical-path report (longest chain, queue-wait vs service).");
                println!("--serve runs the monitoring daemon: each committed round publishes a");
                println!("  snapshot-consistent query view (forces --incremental; provisional");
                println!("  verdicts). --serve-queries FILE runs a JSON-lines query script");
                println!("  against every published round; --serve-out FILE collects the");
                println!("  replies as JSON lines. Combine with --persist/--resume for");
                println!("  stop-and-continue service runs.");
                println!("--progress prints one status line per monitoring round;");
                println!("-q / --quiet silences narration (warnings still print).");
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    obs::set_verbosity(if quiet {
        obs::Verbosity::Quiet
    } else {
        obs::Verbosity::Normal
    });
    obs::set_progress(progress);
    if trace_path.is_some() {
        obs::set_tracing(true);
    }
    obs::set_trace_sample(trace_sample);
    if trace_path.is_some() || critical_path_flag {
        obs::set_causal_tracing(true);
    }
    if migrate {
        let dir = state_dir.unwrap_or_else(|| "repro_state".into());
        match migrate_state_dir(std::path::Path::new(&dir)) {
            // migrate_state_dir logs the full stat line (rounds, records,
            // payload bytes, backup path) itself.
            Ok(_stats) => return,
            Err(e) => {
                obs::warn!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if compact {
        let dir = state_dir.unwrap_or_else(|| "repro_state".into());
        match compact_state_dir(std::path::Path::new(&dir)) {
            Ok(stats) => {
                obs::info!(
                    "compacted {dir}: {} -> {} records, {} -> {} bytes",
                    stats.records_before,
                    stats.records_after,
                    stats.bytes_before,
                    stats.bytes_after
                );
                return;
            }
            Err(e) => {
                obs::warn!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    // Named profiles: bundles of settings plus post-run checks. `paper-scale`
    // is the full study population with the per-FQDN memory budget enforced;
    // an explicit --scale keeps the same checks at reduced scale (CI smoke).
    let mut budget_profile = false;
    if let Some(p) = &profile {
        match p.as_str() {
            "paper-scale" => {
                budget_profile = true;
                if !scale_explicit {
                    scale = 1;
                }
            }
            other => {
                eprintln!("unknown profile {other:?}; expected: paper-scale");
                std::process::exit(2);
            }
        }
    }
    if targets.is_empty() {
        targets.push("summary".into());
    }
    // Expand meta-targets.
    let mut expanded: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => expanded.extend(TARGETS.iter().map(|s| s.to_string())),
            "ablations" => expanded.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other => expanded.push(other.to_string()),
        }
    }
    if critical_path_flag && !expanded.iter().any(|t| t == "critical-path") {
        expanded.push("critical-path".into());
    }

    // Serve mode publishes the streaming pass's advisory state, so it
    // implies the incremental retro pass.
    if serve_mode {
        incremental = true;
    }
    obs::info!(
        "running study at scale 1/{scale}, seed {seed}, {threads} worker thread(s), \
         latency profile {latency_profile}{}{}...",
        if incremental {
            ", incremental retro pass"
        } else {
            ""
        },
        if serve_mode { ", serve mode" } else { "" }
    );
    let cfg = study_config_with_profile(scale, seed, threads, &latency_profile);

    // The daemon pair plus a query thread replaying the script against
    // every published round. All of it is out-of-band: results stay
    // byte-identical with serve mode on (the serve_equivalence suite).
    let mut sink_box: Option<Box<dyn dangling_core::RoundSink>> = None;
    let served = serve_mode.then(|| {
        let (sink, handle) = serve::daemon();
        sink_box = Some(Box::new(sink));
        let script = load_query_script(serve_queries.as_deref());
        let stop = Arc::new(AtomicBool::new(false));
        let querier = {
            let handle = handle.clone();
            let script = script.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut replies: Vec<String> = Vec::new();
                let mut last_seen = u64::MAX;
                loop {
                    let published = handle.rounds_published();
                    if published != last_seen {
                        last_seen = published;
                        for q in &script {
                            let reply = handle.query(q);
                            replies.push(serde_json::to_string(&reply).expect("replies serialize"));
                        }
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                replies
            })
        };
        (handle, script, stop, querier)
    });

    let start = std::time::Instant::now();
    let results = match &state_dir {
        None => match sink_box {
            None => run_study_cfg(cfg, max_rounds, incremental),
            Some(sink) => run_study_cfg_sink(cfg, max_rounds, incremental, sink),
        },
        Some(dir) => {
            let mut opts = PersistOptions::new(dir);
            opts.resume = resume;
            opts.max_rounds = max_rounds;
            opts.format = format;
            obs::info!(
                "persisting to {dir}{}{}",
                if resume { " (resuming)" } else { "" },
                match max_rounds {
                    Some(n) => format!(", stopping after {n} rounds"),
                    None => String::new(),
                }
            );
            let run = match sink_box {
                None => run_study_cfg_persisted(cfg, &opts, incremental),
                Some(sink) => run_study_cfg_persisted_sink(cfg, &opts, incremental, sink),
            };
            match run {
                Ok(r) => r,
                Err(e) => {
                    obs::warn!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    obs::info!(
        "study complete in {:.1}s: {} monitored, {} hijacks (truth), {} detected\n",
        start.elapsed().as_secs_f64(),
        results.monitored_total,
        results.world.truth.len(),
        results.abuse.len()
    );

    if budget_profile {
        // Growth curve: cumulative monitored FQDNs by month — at scale 1
        // this is the study's own 1.5M -> 3.1M timeline. Print yearly
        // waypoints (every 12th month) plus the final point.
        let mut acc = 0.0;
        let curve: Vec<(i32, f64)> = results
            .monitored_monthly
            .iter()
            .map(|&(m, v)| {
                acc += v;
                (m, acc)
            })
            .collect();
        obs::info!("paper-scale growth curve (cumulative monitored FQDNs):");
        for (i, (m, total)) in curve.iter().enumerate() {
            if i % 12 == 0 || i + 1 == curve.len() {
                obs::info!("  {:>4}-{:02}  {:>9}", m / 12, m % 12 + 1, *total as u64);
            }
        }
        let bpf = obs::gauge("pipeline.bytes_per_fqdn").get();
        let budget = dangling_core::BYTES_PER_FQDN_BUDGET;
        obs::info!(
            "paper-scale memory: {bpf:.0} bytes/FQDN (budget {budget:.0}, {} monitored)",
            results.monitored_total
        );
        if bpf > budget {
            obs::warn!(
                "error: pipeline.bytes_per_fqdn {bpf:.0} exceeds the documented \
                 budget of {budget:.0} bytes"
            );
            std::process::exit(1);
        }
    }

    if let Some((handle, script, stop, querier)) = served {
        // Graceful teardown mirrors the daemon contract: drain in-flight
        // queries, stop the querier, then run the script once more against
        // the final sealed round so --serve-out always covers it.
        handle.drain();
        stop.store(true, Ordering::SeqCst);
        let mut replies = querier.join().expect("query thread");
        for q in &script {
            let reply = handle.query(q);
            replies.push(serde_json::to_string(&reply).expect("replies serialize"));
        }
        let q = obs::histogram("serve.query_ns").snapshot();
        let p = obs::histogram("serve.publish_round_ns").snapshot();
        obs::info!(
            "serve: {} rounds published, {} queries answered \
             (query p50/p95/p99/p99.9 {:.0}/{:.0}/{:.0}/{:.0} us; \
             publish p50/p99/p99.9 {:.1}/{:.1}/{:.1} ms)",
            handle.rounds_published(),
            handle.queries_served(),
            q.quantile(0.50) as f64 / 1e3,
            q.quantile(0.95) as f64 / 1e3,
            q.quantile(0.99) as f64 / 1e3,
            q.quantile(0.999) as f64 / 1e3,
            p.quantile(0.50) as f64 / 1e6,
            p.quantile(0.99) as f64 / 1e6,
            p.quantile(0.999) as f64 / 1e6,
        );
        // Surface the serve-path percentiles as gauges so a `--metrics`
        // dump carries them as plain JSON numbers CI can assert against.
        obs::gauge("serve.query_p50_ns").set(q.quantile(0.50) as f64);
        obs::gauge("serve.query_p95_ns").set(q.quantile(0.95) as f64);
        obs::gauge("serve.query_p99_ns").set(q.quantile(0.99) as f64);
        obs::gauge("serve.query_p999_ns").set(q.quantile(0.999) as f64);
        obs::gauge("serve.publish_p50_ns").set(p.quantile(0.50) as f64);
        obs::gauge("serve.publish_p99_ns").set(p.quantile(0.99) as f64);
        obs::gauge("serve.publish_p999_ns").set(p.quantile(0.999) as f64);
        if let Some(path) = &serve_out {
            let mut text = replies.join("\n");
            text.push('\n');
            std::fs::write(path, text).expect("write serve replies");
            obs::info!("wrote {} serve replies to {path}", replies.len());
        }
    }

    if let Some(path) = &json_path {
        let summary = bench::json_summary(&results);
        std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap())
            .expect("write json summary");
        obs::info!("wrote machine-readable summary to {path}");
    }
    if let Some(path) = &metrics_path {
        std::fs::write(path, obs::metrics_json()).expect("write metrics dump");
        obs::info!("wrote metrics dump to {path}");
    }
    if let Some(path) = &trace_path {
        match obs::export_trace(std::path::Path::new(path)) {
            Ok(n) => obs::info!("wrote {n} spans to {path} (open at ui.perfetto.dev)"),
            Err(e) => obs::warn!("error writing trace to {path}: {e}"),
        }
    }

    for t in expanded {
        let out = match t.as_str() {
            "ablation-randomized" => bench::ablations::randomized_names(scale.max(400), seed),
            "ablation-cooldown" => bench::ablations::cooldown(scale.max(400), seed),
            "ablation-signatures" => bench::ablations::naive_signatures(&results),
            "ablation-cutoff" => bench::ablations::cutoff_sweep(&results),
            "ablation-probe" => bench::ablations::probe_methods(&results),
            "extension-wordpress" => bench::ablations::wordpress_extension(scale.max(400), seed),
            other => render_target(&results, other),
        };
        println!("{out}");
    }
}
