//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig20 table2 liveness
//! cargo run --release -p bench --bin repro -- --scale 100 --seed 42 all ablations
//! ```

use bench::{render_target, run_study_with, ABLATIONS, TARGETS};

fn main() {
    let mut scale: u32 = 200;
    let mut seed: u64 = 42;
    let mut threads: usize = 1;
    let mut json_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(args.next().expect("--json takes an output path"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a denominator");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a worker count");
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale N] [--seed N] [--threads N] [--json OUT] <targets...>"
                );
                println!("targets: all | ablations | {}", TARGETS.join(" "));
                println!("ablations: {}", ABLATIONS.join(" "));
                println!("--threads parallelizes the weekly crawl; results are identical.");
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("summary".into());
    }
    // Expand meta-targets.
    let mut expanded: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => expanded.extend(TARGETS.iter().map(|s| s.to_string())),
            "ablations" => expanded.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other => expanded.push(other.to_string()),
        }
    }

    eprintln!("running study at scale 1/{scale}, seed {seed}, {threads} crawl thread(s)...");
    let start = std::time::Instant::now();
    let results = run_study_with(scale, seed, threads);
    eprintln!(
        "study complete in {:.1}s: {} monitored, {} hijacks (truth), {} detected\n",
        start.elapsed().as_secs_f64(),
        results.monitored_total,
        results.world.truth.len(),
        results.abuse.len()
    );

    if let Some(path) = &json_path {
        let summary = bench::json_summary(&results);
        std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap())
            .expect("write json summary");
        eprintln!("wrote machine-readable summary to {path}");
    }

    for t in expanded {
        let out = match t.as_str() {
            "ablation-randomized" => bench::ablations::randomized_names(scale.max(400), seed),
            "ablation-cooldown" => bench::ablations::cooldown(scale.max(400), seed),
            "ablation-signatures" => bench::ablations::naive_signatures(&results),
            "ablation-cutoff" => bench::ablations::cutoff_sweep(&results),
            "ablation-probe" => bench::ablations::probe_methods(&results),
            "extension-wordpress" => bench::ablations::wordpress_extension(scale.max(400), seed),
            other => render_target(&results, other),
        };
        println!("{out}");
    }
}
