//! Property tests for the HTTP substrate: message and cookie roundtrips,
//! parser totality, and cookie-policy invariants.

use httpsim::parse::{parse_request, parse_response, serialize_request, serialize_response};
use httpsim::{Cookie, HeaderMap, HstsPolicy, Method, Request, Response, StatusCode};
use proptest::prelude::*;
use simcore::SimTime;

fn arb_header_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9-]{0,20}").unwrap()
}

fn arb_header_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^\r\n]]{0,40}")
        .unwrap()
        .prop_map(|s| s.trim().to_string())
}

fn arb_headers() -> impl Strategy<Value = HeaderMap> {
    proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8)
        .prop_map(|v| v.into_iter().collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Head), Just(Method::Post)],
        proptest::string::string_regex("/[a-z0-9/._-]{0,30}").unwrap(),
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(method, path, mut headers, body)| {
            headers.set("Content-Length", body.len().to_string());
            Request {
                method,
                path,
                headers,
                body,
                https: false,
            }
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        prop_oneof![
            Just(StatusCode::OK),
            Just(StatusCode::NOT_FOUND),
            Just(StatusCode::FOUND),
            Just(StatusCode::SERVICE_UNAVAILABLE)
        ],
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(status, mut headers, body)| {
            headers.set("Content-Length", body.len().to_string());
            Response {
                status,
                headers,
                body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in arb_request()) {
        let wire = serialize_request(&req);
        let back = parse_request(&wire).unwrap();
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(&back.path, &req.path);
        prop_assert_eq!(&back.body, &req.body);
        for (n, v) in req.headers.iter() {
            prop_assert_eq!(back.headers.get(n).is_some(), true, "missing header {}", n);
            let _ = v;
        }
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let wire = serialize_response(&resp);
        let back = parse_response(&wire).unwrap();
        prop_assert_eq!(back.status, resp.status);
        prop_assert_eq!(&back.body, &resp.body);
    }

    #[test]
    fn parsers_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_request(&bytes);
        let _ = parse_response(&bytes);
    }

    /// Secure cookies are never sent over plain HTTP, for any host/domain.
    #[test]
    fn secure_cookie_never_on_http(
        host in proptest::string::string_regex("[a-z]{1,8}\\.[a-z]{1,8}\\.(com|net|org)").unwrap(),
    ) {
        let set = "t=v; Secure".to_string();
        if let Some(c) = Cookie::parse_set_cookie(&set, &host, SimTime(0)) {
            prop_assert!(!c.sent_to(&host, false, SimTime(0)));
            prop_assert!(c.sent_to(&host, true, SimTime(0)));
        }
    }

    /// HttpOnly cookies are never script-visible anywhere.
    #[test]
    fn httponly_never_script_visible(
        host in proptest::string::string_regex("[a-z]{1,8}\\.(com|net)").unwrap(),
        sub in proptest::string::string_regex("[a-z]{1,8}").unwrap(),
    ) {
        let origin = format!("{sub}.{host}");
        let set = format!("sid=v; HttpOnly; Domain={host}");
        let c = Cookie::parse_set_cookie(&set, &origin, SimTime(0)).unwrap();
        prop_assert!(!c.readable_by_script(&origin, true, SimTime(0)));
        prop_assert!(!c.readable_by_script(&host, true, SimTime(0)));
    }

    /// A domain-wide cookie is sent to every subdomain of its domain and to
    /// no host outside it.
    #[test]
    fn domain_cookie_scope(
        apex in proptest::string::string_regex("[a-z]{2,8}\\.(com|net)").unwrap(),
        sub_a in proptest::string::string_regex("[a-z]{1,6}").unwrap(),
        sub_b in proptest::string::string_regex("[a-z]{1,6}").unwrap(),
        outsider in proptest::string::string_regex("[a-z]{2,8}\\.org").unwrap(),
    ) {
        let origin = format!("{sub_a}.{apex}");
        let set = format!("a=1; Domain={apex}");
        let c = Cookie::parse_set_cookie(&set, &origin, SimTime(0)).unwrap();
        let sibling = format!("{sub_b}.{apex}");
        prop_assert!(c.sent_to(&sibling, false, SimTime(0)));
        prop_assert!(c.sent_to(&apex, false, SimTime(0)));
        prop_assert!(!c.sent_to(&outsider, false, SimTime(0)));
    }

    /// HSTS parse/serialize roundtrip.
    #[test]
    fn hsts_roundtrip(max_age in 0u64..10_000_000_000, inc in any::<bool>()) {
        let p = HstsPolicy { max_age, include_subdomains: inc };
        prop_assert_eq!(HstsPolicy::parse(&p.to_header_value()), Some(p));
    }
}
