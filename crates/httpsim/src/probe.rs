//! Liveness probing — the §2 methodology comparison.
//!
//! Prior work ([12], [3], [16]) classified a record as dangling when the
//! *IP address* behind it answered no ICMP/TCP/UDP probes. The paper shows
//! this is wrong under virtual hosting: a cloud front end answers TCP on
//! 80/443 for *every* name it hosts (underestimating vulnerability), while
//! ICMP is often filtered (overestimating it). Only an application-layer
//! request carrying the FQDN in the `Host` header reveals whether *that
//! specific service* still exists.
//!
//! [`Endpoint`] is the abstract "thing at the end of a connection" that the
//! cloud simulator implements; [`probe`] evaluates one FQDN with one probe
//! type, returning what each technique would conclude.

use crate::message::{Request, Response};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::net::Ipv4Addr;

/// The three probe techniques compared in §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    /// ICMP echo against the resolved IP (the [3] approach).
    IcmpPing,
    /// TCP connect against the resolved IP on a port (the [12]/[16] approach;
    /// the pipeline uses 80 and 443).
    TcpConnect(u16),
    /// Full HTTP request with the FQDN in the Host header (the paper's
    /// approach).
    Http { https: bool },
}

/// What a probe observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbeResult {
    /// ICMP/TCP: reachable. Says nothing about the FQDN's service.
    Reachable,
    /// ICMP/TCP: no answer.
    Unreachable,
    /// HTTP: got a response (any status — a 404 from the platform's catch-all
    /// still proves the front end is alive, and its *body* is what the
    /// signature pipeline inspects).
    HttpResponse(Response),
    /// HTTP: connection failed entirely (no front end at that IP).
    ConnectionFailed,
}

impl ProbeResult {
    /// Would this probe classify the target as "alive"? This is the exact
    /// quantity the §2 comparison tabulates per probe type.
    pub fn considers_alive(&self) -> bool {
        match self {
            ProbeResult::Reachable => true,
            ProbeResult::Unreachable => false,
            // §2 counts "responsive domains": any HTTP response counts.
            ProbeResult::HttpResponse(_) => true,
            ProbeResult::ConnectionFailed => false,
        }
    }
}

/// The network-visible surface of an IP address in the simulated world.
/// `cloudsim` implements this for its front-end servers; tests implement it
/// directly.
///
/// `Sync` is a supertrait: crawl shards probe one shared endpoint surface
/// from many threads, so implementations must be safely shareable.
pub trait Endpoint: Sync {
    /// Does the IP answer ICMP echo at `now`? Cloud front ends commonly
    /// filter ICMP — this is what makes ping-based scans overestimate
    /// vulnerability.
    fn icmp_responds(&self, ip: Ipv4Addr, now: SimTime) -> bool;

    /// Is the TCP port open at `now`? Virtual-hosting front ends keep 80/443
    /// open regardless of whether a given hosted name still exists.
    fn tcp_open(&self, ip: Ipv4Addr, port: u16, now: SimTime) -> bool;

    /// Serve an HTTP request addressed to `ip` (routing on the Host header).
    /// `None` models connection failure (no server at the IP).
    fn http_serve(&self, ip: Ipv4Addr, request: &Request, now: SimTime) -> Option<Response>;
}

impl<E: Endpoint + ?Sized> Endpoint for &E {
    fn icmp_responds(&self, ip: Ipv4Addr, now: SimTime) -> bool {
        (**self).icmp_responds(ip, now)
    }

    fn tcp_open(&self, ip: Ipv4Addr, port: u16, now: SimTime) -> bool {
        (**self).tcp_open(ip, port, now)
    }

    fn http_serve(&self, ip: Ipv4Addr, request: &Request, now: SimTime) -> Option<Response> {
        (**self).http_serve(ip, request, now)
    }
}

/// The network operation a staged probe is waiting on. Mirrors
/// [`simcore::QueryClass`] without depending on it: `httpsim` stays a leaf
/// crate; the crawl driver maps these onto its latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeWait {
    /// Transport-level step: ICMP echo, TCP handshake, or the HTTP
    /// connection establishment — all three probe kinds share this phase.
    Connect,
    /// Application-level step: the HTTP request/response on the established
    /// connection (HTTP probes only).
    Request,
}

enum ProbePhase {
    Connect,
    Request,
    Done(ProbeResult),
}

/// One probe in flight: the submit/poll form of [`probe`]. Every kind
/// starts with a shared connect-phase event; only `Http` has a second,
/// request-phase event. Each [`ProbeInFlight::step`] performs exactly the
/// endpoint interaction the pending phase models, so an event-driven caller
/// prices the wait (via [`ProbeInFlight::pending`]) and steps on
/// completion, while the blocking [`probe`] steps inline.
pub struct ProbeInFlight {
    kind: ProbeKind,
    ip: Ipv4Addr,
    host: String,
    /// Request path for HTTP probes (default `/`).
    path: &'static str,
    phase: ProbePhase,
    /// Simulated nanoseconds consumed so far (telemetry only).
    elapsed_ns: u64,
    /// Causal trace context + next child-span index, when this probe's
    /// trace is sampled. Pure telemetry: never read by probe logic.
    trace: Option<(obs::TraceCtx, u64)>,
}

impl ProbeInFlight {
    pub fn new(kind: ProbeKind, ip: Ipv4Addr, host: impl Into<String>) -> Self {
        ProbeInFlight {
            kind,
            ip,
            host: host.into(),
            path: "/",
            phase: ProbePhase::Connect,
            elapsed_ns: 0,
            trace: None,
        }
    }

    /// Use `path` for the request phase instead of `/` (e.g.
    /// `/sitemap.xml`).
    pub fn with_path(mut self, path: &'static str) -> Self {
        self.path = path;
        self
    }

    /// Attach a causal trace context (re-based to this probe's start).
    /// Each timed step then emits a `probe.connect` / `probe.request`
    /// child span stamped in virtual time.
    pub fn set_trace(&mut self, ctx: obs::TraceCtx) {
        self.trace = Some((ctx, 0));
    }

    /// What the probe is currently waiting on (`None` once done).
    pub fn pending(&self) -> Option<ProbeWait> {
        match self.phase {
            ProbePhase::Connect => Some(ProbeWait::Connect),
            ProbePhase::Request => Some(ProbeWait::Request),
            ProbePhase::Done(_) => None,
        }
    }

    pub fn is_done(&self) -> bool {
        matches!(self.phase, ProbePhase::Done(_))
    }

    /// Complete the pending phase against the endpoint.
    pub fn step<E: Endpoint + ?Sized>(&mut self, endpoint: &E, now: SimTime) {
        self.phase = match &self.phase {
            // The shared connect-phase event. ICMP and TCP probes conclude
            // here; HTTP probes proceed to the request phase (connection
            // failure surfaces there, preserving `http_serve`'s None
            // semantics for endpoints whose TCP and HTTP views disagree).
            ProbePhase::Connect => match self.kind {
                ProbeKind::IcmpPing => {
                    ProbePhase::Done(reachability(endpoint.icmp_responds(self.ip, now)))
                }
                ProbeKind::TcpConnect(port) => {
                    ProbePhase::Done(reachability(endpoint.tcp_open(self.ip, port, now)))
                }
                ProbeKind::Http { .. } => ProbePhase::Request,
            },
            ProbePhase::Request => {
                let https = matches!(self.kind, ProbeKind::Http { https: true });
                let req = if https {
                    Request::get_https(&self.host, self.path)
                } else {
                    Request::get(&self.host, self.path)
                };
                ProbePhase::Done(match endpoint.http_serve(self.ip, &req, now) {
                    Some(resp) => ProbeResult::HttpResponse(resp),
                    None => ProbeResult::ConnectionFailed,
                })
            }
            ProbePhase::Done(r) => ProbePhase::Done(r.clone()),
        };
    }

    /// [`Self::step`], charging `cost_ns` of simulated time to the phase
    /// just completed and emitting its causal child span (when traced).
    /// The event-driven crawl uses this; the blocking [`probe`] driver
    /// keeps using the free-running `step`.
    pub fn step_timed<E: Endpoint + ?Sized>(&mut self, endpoint: &E, now: SimTime, cost_ns: u64) {
        let name = match self.phase {
            ProbePhase::Connect => "probe.connect",
            ProbePhase::Request => "probe.request",
            ProbePhase::Done(_) => {
                return;
            }
        };
        if let Some((ctx, index)) = &mut self.trace {
            let start_ns = ctx.base_ns + self.elapsed_ns;
            ctx.emit_child(
                *index,
                name,
                start_ns,
                cost_ns,
                vec![("host", obs::span::ArgValue::Str(self.host.clone()))],
            );
            *index += 1;
        }
        self.elapsed_ns += cost_ns;
        self.step(endpoint, now);
    }

    /// Harvest the result of a completed probe.
    pub fn into_result(self) -> ProbeResult {
        match self.phase {
            ProbePhase::Done(r) => r,
            _ => panic!("probe still in flight"),
        }
    }
}

fn reachability(alive: bool) -> ProbeResult {
    if alive {
        ProbeResult::Reachable
    } else {
        ProbeResult::Unreachable
    }
}

/// Run one probe of `kind` against `ip` for the FQDN `host` — the blocking
/// driver of [`ProbeInFlight`].
pub fn probe<E: Endpoint + ?Sized>(
    endpoint: &E,
    kind: ProbeKind,
    ip: Ipv4Addr,
    host: &str,
    now: SimTime,
) -> ProbeResult {
    let mut fl = ProbeInFlight::new(kind, ip, host);
    while !fl.is_done() {
        fl.step(endpoint, now);
    }
    fl.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;

    /// A virtual-hosting front end: filters ICMP, keeps 80/443 open, serves
    /// only names it knows.
    struct VhostFrontEnd {
        ip: Ipv4Addr,
        hosted: Vec<String>,
    }

    impl Endpoint for VhostFrontEnd {
        fn icmp_responds(&self, ip: Ipv4Addr, _now: SimTime) -> bool {
            // filtered even for its own IP
            let _ = ip;
            false
        }

        fn tcp_open(&self, ip: Ipv4Addr, port: u16, _now: SimTime) -> bool {
            ip == self.ip && (port == 80 || port == 443)
        }

        fn http_serve(&self, ip: Ipv4Addr, req: &Request, _now: SimTime) -> Option<Response> {
            if ip != self.ip {
                return None;
            }
            let host = req.host()?;
            if self.hosted.iter().any(|h| h == host) {
                Some(Response::ok_html("<html>service</html>"))
            } else {
                Some(Response::not_found("<html>no such app</html>"))
            }
        }
    }

    #[test]
    fn virtual_hosting_disagreement() {
        // The exact situation §2 describes: the IP is alive, the FQDN's
        // service is gone.
        let fe = VhostFrontEnd {
            ip: Ipv4Addr::new(20, 1, 1, 1),
            hosted: vec!["alive.azurewebsites.net".into()],
        };
        let now = SimTime(0);
        let ip = fe.ip;

        // ICMP says dead (overestimates vulnerability).
        assert!(
            !probe(&fe, ProbeKind::IcmpPing, ip, "gone.azurewebsites.net", now).considers_alive()
        );
        // TCP says alive (underestimates vulnerability).
        assert!(probe(
            &fe,
            ProbeKind::TcpConnect(443),
            ip,
            "gone.azurewebsites.net",
            now
        )
        .considers_alive());
        // HTTP responds (alive front end) but with a platform 404 body — the
        // signal an attacker (and the pipeline) actually uses.
        match probe(
            &fe,
            ProbeKind::Http { https: false },
            ip,
            "gone.azurewebsites.net",
            now,
        ) {
            ProbeResult::HttpResponse(r) => assert_eq!(r.status, StatusCode::NOT_FOUND),
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn http_to_wrong_ip_fails() {
        let fe = VhostFrontEnd {
            ip: Ipv4Addr::new(20, 1, 1, 1),
            hosted: vec![],
        };
        let r = probe(
            &fe,
            ProbeKind::Http { https: false },
            Ipv4Addr::new(9, 9, 9, 9),
            "x",
            SimTime(0),
        );
        assert_eq!(r, ProbeResult::ConnectionFailed);
        assert!(!r.considers_alive());
    }

    #[test]
    fn staged_probe_phases() {
        let fe = VhostFrontEnd {
            ip: Ipv4Addr::new(20, 1, 1, 1),
            hosted: vec!["alive.azurewebsites.net".into()],
        };
        let now = SimTime(0);
        // ICMP and TCP conclude on the shared connect-phase event.
        for kind in [ProbeKind::IcmpPing, ProbeKind::TcpConnect(443)] {
            let mut fl = ProbeInFlight::new(kind, fe.ip, "alive.azurewebsites.net");
            assert_eq!(fl.pending(), Some(ProbeWait::Connect));
            fl.step(&fe, now);
            assert!(fl.is_done());
        }
        // HTTP takes connect then request.
        let mut fl = ProbeInFlight::new(
            ProbeKind::Http { https: false },
            fe.ip,
            "alive.azurewebsites.net",
        );
        assert_eq!(fl.pending(), Some(ProbeWait::Connect));
        fl.step(&fe, now);
        assert_eq!(fl.pending(), Some(ProbeWait::Request));
        fl.step(&fe, now);
        assert!(fl.is_done());
        match fl.into_result() {
            ProbeResult::HttpResponse(r) => assert!(r.status.is_success()),
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn tcp_other_ports_closed() {
        let fe = VhostFrontEnd {
            ip: Ipv4Addr::new(20, 1, 1, 1),
            hosted: vec![],
        };
        assert!(!probe(&fe, ProbeKind::TcpConnect(22), fe.ip, "x", SimTime(0)).considers_alive());
    }
}
