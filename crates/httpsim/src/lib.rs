//! # httpsim — HTTP substrate for the dangling-resource study
//!
//! The paper's crucial methodological point in §2 is that **liveness must be
//! checked at the application layer**: ICMP and TCP probes mis-estimate the
//! availability of virtually-hosted services (72% / 93% responsive vs 89%
//! for real HTTP requests on their hijacked set), so the pipeline downloads
//! HTML per-FQDN instead of port-scanning. This crate supplies everything
//! needed to express that:
//!
//! - [`message`] — HTTP/1.1 requests/responses with status codes,
//! - [`headers`] — a case-insensitive, order-preserving header map,
//! - [`parse`] — textual HTTP/1.1 serialization and parsing,
//! - [`cookie`] — `Set-Cookie` handling with the `HttpOnly`/`Secure`/
//!   `SameSite` attributes that gate the cookie-theft analysis of §5.5,
//! - [`hsts`] — `Strict-Transport-Security` parsing and a client-side store
//!   (App. A.2 measures HSTS prevalence on hijacked parents),
//! - [`probe`] — the three liveness probe types (ICMP / TCP / HTTP) whose
//!   disagreement motivates the paper's collection design.

pub mod cookie;
pub mod headers;
pub mod hsts;
pub mod message;
pub mod parse;
pub mod probe;

pub use cookie::{Cookie, CookieJar, SameSite};
pub use headers::HeaderMap;
pub use hsts::{HstsPolicy, HstsStore};
pub use message::{Method, Request, Response, StatusCode};
pub use probe::{Endpoint, ProbeInFlight, ProbeKind, ProbeResult, ProbeWait};
