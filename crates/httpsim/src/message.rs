//! HTTP/1.1 message model.

use crate::headers::HeaderMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Request methods used by the pipeline (the crawler only ever sends GET and
/// HEAD; POST exists for the attacker's referral endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Get,
    Head,
    Post,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status code wrapper with the reason phrases the simulation serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    pub const OK: StatusCode = StatusCode(200);
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    pub const FOUND: StatusCode = StatusCode(302);
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    pub const GONE: StatusCode = StatusCode(410);
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            301 => "Moved Permanently",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            410 => "Gone",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    pub method: Method,
    /// Origin-form target, e.g. `/sitemap.xml`.
    pub path: String,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
    /// Whether the request travelled over TLS — the `Secure`-cookie and HSTS
    /// logic branch on this.
    pub https: bool,
}

impl Request {
    /// A GET for `path` at virtual host `host`.
    pub fn get(host: &str, path: &str) -> Self {
        let mut headers = HeaderMap::new();
        headers.set("Host", host);
        headers.set("User-Agent", "dangling-study/1.0");
        Request {
            method: Method::Get,
            path: path.to_string(),
            headers,
            body: Vec::new(),
            https: false,
        }
    }

    /// Same as [`Request::get`] but over TLS.
    pub fn get_https(host: &str, path: &str) -> Self {
        let mut r = Self::get(host, path);
        r.https = true;
        r
    }

    /// The `Host` header (virtual-hosting key).
    pub fn host(&self) -> Option<&str> {
        self.headers.get("Host")
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    pub status: StatusCode,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
}

impl Response {
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: HeaderMap::new(),
            body: Vec::new(),
        }
    }

    pub fn ok_html(body: impl Into<Vec<u8>>) -> Self {
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r.body = body.into();
        r.headers.set("Content-Length", r.body.len().to_string());
        r
    }

    pub fn ok_xml(body: impl Into<Vec<u8>>) -> Self {
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", "application/xml");
        r.body = body.into();
        r.headers.set("Content-Length", r.body.len().to_string());
        r
    }

    pub fn not_found(body: impl Into<Vec<u8>>) -> Self {
        let mut r = Response::new(StatusCode::NOT_FOUND);
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r.body = body.into();
        r.headers.set("Content-Length", r.body.len().to_string());
        r
    }

    /// UTF-8 view of the body (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::BAD_GATEWAY.is_server_error());
        assert!(!StatusCode::OK.is_client_error());
    }

    #[test]
    fn request_builders() {
        let r = Request::get("shop.example.com", "/");
        assert_eq!(r.host(), Some("shop.example.com"));
        assert!(!r.https);
        let rs = Request::get_https("shop.example.com", "/");
        assert!(rs.https);
    }

    #[test]
    fn response_builders() {
        let r = Response::ok_html("<html></html>");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.get("content-length"), Some("13"));
        assert_eq!(r.body_text(), "<html></html>");
    }

    #[test]
    fn method_roundtrip() {
        for m in [Method::Get, Method::Head, Method::Post] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }
}
