//! Cookies, `Set-Cookie` parsing, and the browser cookie-sending policy.
//!
//! §5.5 of the paper rests on exactly these semantics: a cookie is sent back
//! to the domain that created it *or any subdomain thereof* (when a `Domain`
//! attribute widens scope), `HttpOnly` cookies are invisible to JavaScript
//! (so content-only hijacks cannot read them), and `Secure` cookies are only
//! sent over HTTPS (so stealing them requires the hijacker to obtain a valid
//! certificate — the bridge to §5.6).

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// The `SameSite` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SameSite {
    Strict,
    Lax,
    None,
}

/// A cookie as stored by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cookie {
    pub name: String,
    pub value: String,
    /// Scope domain. When set via the `Domain` attribute the cookie is sent
    /// to that domain and all subdomains ("domain cookie"); when absent it is
    /// host-only.
    pub domain: String,
    /// True if the `Domain` attribute was present (subdomains included).
    pub domain_wide: bool,
    pub path: String,
    pub secure: bool,
    pub http_only: bool,
    pub same_site: Option<SameSite>,
    /// Absolute expiry in simulated time; `None` = session cookie.
    pub expires: Option<SimTime>,
    /// Heuristic: does this look like an authentication/session cookie?
    /// (Used by the §5.5 leak analysis to count *authentication* cookies.)
    pub is_auth_like: bool,
}

impl Cookie {
    /// Parse a `Set-Cookie` header value in the context of `request_host`.
    /// Returns `None` on malformed input or an out-of-scope `Domain`
    /// attribute (a host may only set cookies for itself or its ancestors).
    pub fn parse_set_cookie(value: &str, request_host: &str, now: SimTime) -> Option<Cookie> {
        let mut parts = value.split(';');
        let nv = parts.next()?.trim();
        let (name, val) = nv.split_once('=')?;
        let name = name.trim();
        if name.is_empty() {
            return None;
        }
        let mut cookie = Cookie {
            name: name.to_string(),
            value: val.trim().to_string(),
            domain: request_host.to_ascii_lowercase(),
            domain_wide: false,
            path: "/".to_string(),
            secure: false,
            http_only: false,
            same_site: None,
            expires: None,
            is_auth_like: looks_auth_like(name),
        };
        for attr in parts {
            let attr = attr.trim();
            let (k, v) = match attr.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (attr, None),
            };
            match k.to_ascii_lowercase().as_str() {
                "domain" => {
                    let d = v?.trim_start_matches('.').to_ascii_lowercase();
                    // Scope check: d must be the host itself or a suffix of it.
                    if !host_matches_domain(request_host, &d) {
                        return None;
                    }
                    cookie.domain = d;
                    cookie.domain_wide = true;
                }
                "path" => cookie.path = v?.to_string(),
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                "samesite" => {
                    cookie.same_site = match v?.to_ascii_lowercase().as_str() {
                        "strict" => Some(SameSite::Strict),
                        "lax" => Some(SameSite::Lax),
                        "none" => Some(SameSite::None),
                        _ => return None,
                    }
                }
                "max-age" => {
                    let secs: i64 = v?.parse().ok()?;
                    let days = (secs / 86_400).max(0) as i32;
                    cookie.expires = Some(now + days);
                }
                // `Expires=` with an HTTP date is out of scope for the sim;
                // ignore unknown attributes like real browsers do.
                _ => {}
            }
        }
        // RFC 6265bis: SameSite=None requires Secure.
        if cookie.same_site == Some(SameSite::None) && !cookie.secure {
            return None;
        }
        Some(cookie)
    }

    /// Serialize as a `Set-Cookie` header value.
    pub fn to_set_cookie(&self) -> String {
        let mut s = format!("{}={}", self.name, self.value);
        if self.domain_wide {
            s.push_str(&format!("; Domain={}", self.domain));
        }
        if self.path != "/" {
            s.push_str(&format!("; Path={}", self.path));
        }
        if self.secure {
            s.push_str("; Secure");
        }
        if self.http_only {
            s.push_str("; HttpOnly");
        }
        match self.same_site {
            Some(SameSite::Strict) => s.push_str("; SameSite=Strict"),
            Some(SameSite::Lax) => s.push_str("; SameSite=Lax"),
            Some(SameSite::None) => s.push_str("; SameSite=None"),
            None => {}
        }
        s
    }

    /// Would a browser send this cookie to `host` over `https`?
    pub fn sent_to(&self, host: &str, https: bool, now: SimTime) -> bool {
        if let Some(exp) = self.expires {
            if now >= exp {
                return false;
            }
        }
        if self.secure && !https {
            return false;
        }
        let host = host.to_ascii_lowercase();
        if self.domain_wide {
            host_matches_domain(&host, &self.domain)
        } else {
            host == self.domain
        }
    }

    /// Is this cookie readable by JavaScript running on a page served from
    /// `host`? This is the §5.5 content-only-hijack capability.
    pub fn readable_by_script(&self, host: &str, https: bool, now: SimTime) -> bool {
        !self.http_only && self.sent_to(host, https, now)
    }
}

/// Host/domain matching per RFC 6265 §5.1.3: `host` matches `domain` if they
/// are equal or `host` ends with `.domain`.
pub fn host_matches_domain(host: &str, domain: &str) -> bool {
    let host = host.to_ascii_lowercase();
    let domain = domain.to_ascii_lowercase();
    host == domain || host.ends_with(&format!(".{domain}"))
}

fn looks_auth_like(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    ["session", "auth", "token", "sid", "login", "jwt"]
        .iter()
        .any(|k| n.contains(k))
}

/// A client-side cookie store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a cookie, replacing one with the same (name, domain, path).
    pub fn store(&mut self, cookie: Cookie) {
        self.cookies.retain(|c| {
            !(c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        });
        self.cookies.push(cookie);
    }

    /// Ingest all `Set-Cookie` headers from a response.
    pub fn ingest(
        &mut self,
        headers: &crate::headers::HeaderMap,
        request_host: &str,
        now: SimTime,
    ) {
        for v in headers.get_all("Set-Cookie") {
            if let Some(c) = Cookie::parse_set_cookie(v, request_host, now) {
                self.store(c);
            }
        }
    }

    /// Cookies a browser would attach to a request for `host`.
    pub fn cookies_for(&self, host: &str, https: bool, now: SimTime) -> Vec<&Cookie> {
        self.cookies
            .iter()
            .filter(|c| c.sent_to(host, https, now))
            .collect()
    }

    /// Cookies JavaScript on `host` could exfiltrate (non-HttpOnly).
    pub fn script_visible(&self, host: &str, https: bool, now: SimTime) -> Vec<&Cookie> {
        self.cookies
            .iter()
            .filter(|c| c.readable_by_script(host, https, now))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(100);

    #[test]
    fn parse_basic() {
        let c =
            Cookie::parse_set_cookie("sessionid=abc123; HttpOnly; Secure", "www.example.com", T0)
                .unwrap();
        assert_eq!(c.name, "sessionid");
        assert!(c.http_only);
        assert!(c.secure);
        assert!(c.is_auth_like);
        assert!(!c.domain_wide);
    }

    #[test]
    fn domain_cookie_sent_to_subdomains() {
        let c = Cookie::parse_set_cookie("auth=tok; Domain=example.com", "www.example.com", T0)
            .unwrap();
        // The §5.5 scenario: parent-scoped cookie leaks to a hijacked subdomain.
        assert!(c.sent_to("hijacked.example.com", false, T0));
        assert!(c.sent_to("example.com", false, T0));
        assert!(!c.sent_to("badexample.com", false, T0));
    }

    #[test]
    fn host_only_cookie_not_sent_to_siblings() {
        let c = Cookie::parse_set_cookie("a=1", "www.example.com", T0).unwrap();
        assert!(c.sent_to("www.example.com", false, T0));
        assert!(!c.sent_to("other.example.com", false, T0));
        assert!(!c.sent_to("example.com", false, T0));
    }

    #[test]
    fn out_of_scope_domain_rejected() {
        // a host cannot set cookies for an unrelated domain
        assert!(Cookie::parse_set_cookie("a=1; Domain=evil.com", "www.example.com", T0).is_none());
        // ... nor for a *sibling*
        assert!(
            Cookie::parse_set_cookie("a=1; Domain=other.example.com", "www.example.com", T0)
                .is_none()
        );
    }

    #[test]
    fn secure_requires_https() {
        let c =
            Cookie::parse_set_cookie("t=1; Secure; Domain=example.com", "example.com", T0).unwrap();
        assert!(!c.sent_to("x.example.com", false, T0));
        assert!(c.sent_to("x.example.com", true, T0));
    }

    #[test]
    fn httponly_invisible_to_script() {
        let c = Cookie::parse_set_cookie("sid=1; HttpOnly; Domain=example.com", "example.com", T0)
            .unwrap();
        assert!(c.sent_to("h.example.com", false, T0));
        assert!(!c.readable_by_script("h.example.com", false, T0));
        let c2 = Cookie::parse_set_cookie("pref=1; Domain=example.com", "example.com", T0).unwrap();
        assert!(c2.readable_by_script("h.example.com", false, T0));
    }

    #[test]
    fn samesite_none_requires_secure() {
        assert!(Cookie::parse_set_cookie("a=1; SameSite=None", "x.com", T0).is_none());
        let c = Cookie::parse_set_cookie("a=1; SameSite=None; Secure", "x.com", T0).unwrap();
        assert_eq!(c.same_site, Some(SameSite::None));
    }

    #[test]
    fn max_age_expiry() {
        let c = Cookie::parse_set_cookie("a=1; Max-Age=172800", "x.com", T0).unwrap(); // 2 days
        assert!(c.sent_to("x.com", false, T0 + 1));
        assert!(!c.sent_to("x.com", false, T0 + 2));
    }

    #[test]
    fn jar_replaces_same_key() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::parse_set_cookie("a=1", "x.com", T0).unwrap());
        jar.store(Cookie::parse_set_cookie("a=2", "x.com", T0).unwrap());
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.cookies_for("x.com", false, T0)[0].value, "2");
    }

    #[test]
    fn jar_ingests_response_headers() {
        use crate::headers::HeaderMap;
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "auth=tok; Domain=example.com; HttpOnly");
        h.append("Set-Cookie", "theme=dark");
        h.append("Set-Cookie", "bad"); // malformed, skipped
        let mut jar = CookieJar::new();
        jar.ingest(&h, "login.example.com", T0);
        assert_eq!(jar.len(), 2);
        // Hijacked sibling subdomain receives the domain cookie only.
        let sent = jar.cookies_for("hijacked.example.com", false, T0);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].name, "auth");
        // ...but script there cannot read it (HttpOnly).
        assert!(jar
            .script_visible("hijacked.example.com", false, T0)
            .is_empty());
    }

    #[test]
    fn set_cookie_roundtrip() {
        let orig = "tok=v; Domain=example.com; Secure; HttpOnly; SameSite=None";
        let c = Cookie::parse_set_cookie(orig, "a.example.com", T0).unwrap();
        let re = Cookie::parse_set_cookie(&c.to_set_cookie(), "a.example.com", T0).unwrap();
        assert_eq!(c, re);
    }
}
