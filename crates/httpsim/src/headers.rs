//! Case-insensitive, order-preserving HTTP header map.

use serde::{Deserialize, Serialize};

/// A multimap of HTTP headers. Lookup is case-insensitive; insertion order is
/// preserved for serialization fidelity. Multiple values per name are allowed
/// (`Set-Cookie` in particular must not be folded).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header, keeping any existing values for the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all values of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value of `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all values of `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<N: Into<String>, V: Into<String>> FromIterator<(N, V)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        HeaderMap {
            entries: iter
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("X-Other"));
    }

    #[test]
    fn multiple_values_preserved() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        let all: Vec<_> = h.get_all("set-cookie").collect();
        assert_eq!(all, vec!["a=1", "b=2"]);
        assert_eq!(h.get("Set-Cookie"), Some("a=1"));
    }

    #[test]
    fn set_replaces() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("x", "2");
        h.set("X", "3");
        assert_eq!(h.get_all("x").count(), 1);
        assert_eq!(h.get("x"), Some("3"));
    }

    #[test]
    fn remove_counts() {
        let mut h: HeaderMap = [("a", "1"), ("A", "2"), ("b", "3")].into_iter().collect();
        assert_eq!(h.remove("a"), 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove("zzz"), 0);
    }

    #[test]
    fn order_preserved() {
        let h: HeaderMap = [("z", "1"), ("a", "2"), ("m", "3")].into_iter().collect();
        let names: Vec<_> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }
}
