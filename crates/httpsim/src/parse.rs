//! Textual HTTP/1.1 serialization and parsing.
//!
//! CRLF line endings, `Content-Length` framing (the only framing the
//! simulation uses), and tolerant header parsing. Parsing is total: hostile
//! input yields `Err`, never a panic.

use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, StatusCode};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or malformed start line.
    BadStartLine,
    /// Unsupported method.
    BadMethod,
    /// Version was not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
    /// Status code was not a 3-digit integer.
    BadStatus,
    /// A header line lacked a colon.
    BadHeader,
    /// Headers were not terminated by an empty line.
    MissingHeaderTerminator,
    /// `Content-Length` disagreed with the available body bytes.
    BodyLength,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadStartLine => "malformed start line",
            ParseError::BadMethod => "unsupported method",
            ParseError::BadVersion => "unsupported HTTP version",
            ParseError::BadStatus => "malformed status code",
            ParseError::BadHeader => "malformed header line",
            ParseError::MissingHeaderTerminator => "missing CRLF CRLF",
            ParseError::BodyLength => "Content-Length mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Serialize a request to wire text.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + req.body.len());
    out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", req.method, req.path).as_bytes());
    for (n, v) in req.headers.iter() {
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    out
}

/// Serialize a response to wire text.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + resp.body.len());
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason()).as_bytes(),
    );
    for (n, v) in resp.headers.iter() {
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

/// Split head (start line + headers) from body at the first CRLFCRLF.
fn split_head(input: &[u8]) -> Result<(&[u8], &[u8]), ParseError> {
    input
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (&input[..i], &input[i + 4..]))
        .ok_or(ParseError::MissingHeaderTerminator)
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<HeaderMap, ParseError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader);
        }
        headers.append(name.trim(), value.trim());
    }
    Ok(headers)
}

fn check_body(headers: &HeaderMap, body: &[u8]) -> Result<Vec<u8>, ParseError> {
    match headers.get("Content-Length") {
        Some(cl) => {
            let n: usize = cl.trim().parse().map_err(|_| ParseError::BodyLength)?;
            if body.len() < n {
                return Err(ParseError::BodyLength);
            }
            Ok(body[..n].to_vec())
        }
        None => Ok(body.to_vec()),
    }
}

/// Parse a request from wire text.
pub fn parse_request(input: &[u8]) -> Result<Request, ParseError> {
    let (head, body) = split_head(input)?;
    let head = std::str::from_utf8(head).map_err(|_| ParseError::BadStartLine)?;
    let mut lines = head.lines();
    let start = lines.next().ok_or(ParseError::BadStartLine)?;
    let mut parts = start.split(' ');
    let method = Method::parse(parts.next().ok_or(ParseError::BadStartLine)?)
        .ok_or(ParseError::BadMethod)?;
    let path = parts.next().ok_or(ParseError::BadStartLine)?.to_string();
    let version = parts.next().ok_or(ParseError::BadStartLine)?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadVersion);
    }
    if parts.next().is_some() {
        return Err(ParseError::BadStartLine);
    }
    let headers = parse_headers(lines)?;
    let body = check_body(&headers, body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
        https: false,
    })
}

/// Parse a response from wire text.
pub fn parse_response(input: &[u8]) -> Result<Response, ParseError> {
    let (head, body) = split_head(input)?;
    let head = std::str::from_utf8(head).map_err(|_| ParseError::BadStartLine)?;
    let mut lines = head.lines();
    let start = lines.next().ok_or(ParseError::BadStartLine)?;
    let mut parts = start.splitn(3, ' ');
    let version = parts.next().ok_or(ParseError::BadStartLine)?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadVersion);
    }
    let code: u16 = parts
        .next()
        .ok_or(ParseError::BadStartLine)?
        .parse()
        .map_err(|_| ParseError::BadStatus)?;
    if !(100..600).contains(&code) {
        return Err(ParseError::BadStatus);
    }
    let headers = parse_headers(lines)?;
    let body = check_body(&headers, body)?;
    Ok(Response {
        status: StatusCode(code),
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::get("www.example.com", "/index.html");
        let wire = serialize_request(&req);
        let back = parse_request(&wire).unwrap();
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path, "/index.html");
        assert_eq!(back.host(), Some("www.example.com"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok_html("<html><body>hi</body></html>");
        let wire = serialize_response(&resp);
        let back = parse_response(&wire).unwrap();
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.body, resp.body);
        assert_eq!(
            back.headers.get("content-type"),
            resp.headers.get("content-type")
        );
    }

    #[test]
    fn content_length_truncates_body() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhello";
        let r = parse_response(wire).unwrap();
        assert_eq!(r.body, b"he");
    }

    #[test]
    fn content_length_underflow_rejected() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nhi";
        assert_eq!(parse_response(wire), Err(ParseError::BodyLength));
    }

    #[test]
    fn missing_terminator_rejected() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nHost: x"),
            Err(ParseError::MissingHeaderTerminator)
        );
    }

    #[test]
    fn bad_method_rejected() {
        assert_eq!(
            parse_request(b"BREW / HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadMethod)
        );
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(
            parse_request(b"GET / HTTP/2\r\n\r\n"),
            Err(ParseError::BadVersion)
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(ParseError::BadHeader)
        );
    }

    #[test]
    fn multiple_set_cookie_survive() {
        let mut resp = Response::new(StatusCode::OK);
        resp.headers.append("Set-Cookie", "a=1; HttpOnly");
        resp.headers.append("Set-Cookie", "b=2; Secure");
        let back = parse_response(&serialize_response(&resp)).unwrap();
        assert_eq!(back.headers.get_all("set-cookie").count(), 2);
    }

    #[test]
    fn bad_status_rejected() {
        assert_eq!(
            parse_response(b"HTTP/1.1 999 Nope\r\n\r\n"),
            Err(ParseError::BadStatus)
        );
        assert_eq!(
            parse_response(b"HTTP/1.1 abc Nope\r\n\r\n"),
            Err(ParseError::BadStatus)
        );
    }
}
