//! HTTP Strict Transport Security (RFC 6797).
//!
//! Appendix A.2 of the paper measures HSTS prevalence on the parents of
//! hijacked subdomains (>16% of non-error responses) and argues that a
//! hijacker who wants traffic from HSTS-pinned clients *must* obtain a valid
//! certificate — one of the four motivations for fraudulent issuance.

use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;

/// A parsed `Strict-Transport-Security` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HstsPolicy {
    /// Lifetime in seconds.
    pub max_age: u64,
    pub include_subdomains: bool,
}

impl HstsPolicy {
    /// Parse a header value like `max-age=31536000; includeSubDomains`.
    /// Returns `None` on malformed input or missing `max-age` (RFC 6797
    /// requires it).
    pub fn parse(value: &str) -> Option<HstsPolicy> {
        let mut max_age: Option<u64> = None;
        let mut include_subdomains = false;
        for directive in value.split(';') {
            let d = directive.trim();
            if d.is_empty() {
                continue;
            }
            let (k, v) = match d.split_once('=') {
                Some((k, v)) => (k.trim().to_ascii_lowercase(), Some(v.trim())),
                None => (d.to_ascii_lowercase(), None),
            };
            match k.as_str() {
                "max-age" => {
                    let raw = v?.trim_matches('"');
                    max_age = Some(raw.parse().ok()?);
                }
                "includesubdomains" => include_subdomains = true,
                "preload" => {}
                _ => return None, // unknown directive: reject (strictness aids tests)
            }
        }
        Some(HstsPolicy {
            max_age: max_age?,
            include_subdomains,
        })
    }

    /// Serialize back to a header value.
    pub fn to_header_value(&self) -> String {
        let mut s = format!("max-age={}", self.max_age);
        if self.include_subdomains {
            s.push_str("; includeSubDomains");
        }
        s
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredPolicy {
    include_subdomains: bool,
    expires: SimTime,
}

/// A client-side HSTS host store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HstsStore {
    hosts: HashMap<String, StoredPolicy>,
}

impl HstsStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a policy observed on `host` at time `now`. `max-age=0` deletes.
    pub fn observe(&mut self, host: &str, policy: HstsPolicy, now: SimTime) {
        let host = host.to_ascii_lowercase();
        if policy.max_age == 0 {
            self.hosts.remove(&host);
            return;
        }
        let days = (policy.max_age / 86_400).min(i32::MAX as u64) as i32;
        self.hosts.insert(
            host,
            StoredPolicy {
                include_subdomains: policy.include_subdomains,
                expires: now + days.max(1),
            },
        );
    }

    /// Would this client force HTTPS when navigating to `host` at `now`?
    pub fn must_use_https(&self, host: &str, now: SimTime) -> bool {
        let host = host.to_ascii_lowercase();
        // Exact-host pin.
        if let Some(p) = self.hosts.get(&host) {
            if p.expires > now {
                return true;
            }
        }
        // Superdomain pins with includeSubDomains.
        let mut rest = host.as_str();
        while let Some(idx) = rest.find('.') {
            rest = &rest[idx + 1..];
            if let Some(p) = self.hosts.get(rest) {
                if p.include_subdomains && p.expires > now {
                    return true;
                }
            }
        }
        false
    }

    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_standard() {
        let p = HstsPolicy::parse("max-age=31536000; includeSubDomains").unwrap();
        assert_eq!(p.max_age, 31_536_000);
        assert!(p.include_subdomains);
    }

    #[test]
    fn parse_requires_max_age() {
        assert!(HstsPolicy::parse("includeSubDomains").is_none());
        assert!(HstsPolicy::parse("max-age=abc").is_none());
        assert!(HstsPolicy::parse("max-age=100; bogus-directive").is_none());
    }

    #[test]
    fn roundtrip() {
        let p = HstsPolicy::parse("max-age=86400").unwrap();
        assert_eq!(HstsPolicy::parse(&p.to_header_value()), Some(p));
    }

    #[test]
    fn store_exact_and_subdomain() {
        let mut s = HstsStore::new();
        let now = SimTime(0);
        s.observe(
            "example.com",
            HstsPolicy {
                max_age: 86_400 * 30,
                include_subdomains: true,
            },
            now,
        );
        assert!(s.must_use_https("example.com", now + 1));
        // The hijacked-subdomain case from Appendix A.2:
        assert!(s.must_use_https("hijacked.example.com", now + 1));
        assert!(!s.must_use_https("other.net", now + 1));
    }

    #[test]
    fn no_subdomain_without_flag() {
        let mut s = HstsStore::new();
        let now = SimTime(0);
        s.observe(
            "example.com",
            HstsPolicy {
                max_age: 86_400 * 30,
                include_subdomains: false,
            },
            now,
        );
        assert!(s.must_use_https("example.com", now));
        assert!(!s.must_use_https("sub.example.com", now));
    }

    #[test]
    fn expiry_honored() {
        let mut s = HstsStore::new();
        let now = SimTime(0);
        s.observe(
            "example.com",
            HstsPolicy {
                max_age: 86_400 * 2,
                include_subdomains: true,
            },
            now,
        );
        assert!(s.must_use_https("example.com", now + 1));
        assert!(!s.must_use_https("example.com", now + 3));
    }

    #[test]
    fn max_age_zero_deletes() {
        let mut s = HstsStore::new();
        let now = SimTime(0);
        s.observe(
            "example.com",
            HstsPolicy {
                max_age: 86_400,
                include_subdomains: false,
            },
            now,
        );
        s.observe(
            "example.com",
            HstsPolicy {
                max_age: 0,
                include_subdomains: false,
            },
            now,
        );
        assert!(!s.must_use_https("example.com", now));
        assert!(s.is_empty());
    }
}
