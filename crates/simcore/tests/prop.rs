//! Property tests for the discrete-event queue — the determinism tiebreaker
//! the completion queue leans on. Two invariants: (1) events scheduled for
//! the same instant pop in insertion order (FIFO within an instant), and
//! (2) no interleaving of schedules and pops ever yields a pop whose time
//! precedes an earlier pop (time never inverts).

use proptest::prelude::*;
use simcore::net::NetTime;
use simcore::{EventQueue, SimTime};

/// One step of an interleaved workload: schedule an event `delay` units
/// after the queue's current time (tagged with an id), or pop.
#[derive(Debug, Clone)]
enum Op {
    Schedule(u32),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<(Op, u32)>> {
    proptest::collection::vec(
        (
            prop_oneof![
                2 => (0u32..20).prop_map(Op::Schedule),
                1 => Just(Op::Pop),
            ],
            0u32..4,
        ),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same-instant events pop in insertion order, for any batch shape.
    #[test]
    fn same_time_pops_in_insertion_order(batch_sizes in proptest::collection::vec(1usize..8, 1..12)) {
        let mut q: EventQueue<(usize, usize)> = EventQueue::new();
        // Batch i is scheduled entirely at time i (ascending), interleaved
        // with nothing else; ids record insertion order within the batch.
        for (t, &n) in batch_sizes.iter().enumerate() {
            for id in 0..n {
                q.schedule(SimTime(t as i32), (t, id));
            }
        }
        for (t, &n) in batch_sizes.iter().enumerate() {
            for id in 0..n {
                let (at, ev) = q.pop().expect("event present");
                prop_assert_eq!(at, SimTime(t as i32));
                prop_assert_eq!(ev, (t, id));
            }
        }
        prop_assert!(q.pop().is_none());
    }

    /// Arbitrary interleavings of schedule/pop on the day clock never invert
    /// time, and same-instant pops preserve schedule order.
    #[test]
    fn interleaved_schedule_pop_never_inverts_time(ops in arb_ops()) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut next_id: u64 = 0;
        let mut last: Option<(SimTime, u64)> = None;
        for (op, _) in &ops {
            match op {
                Op::Schedule(delay) => {
                    q.schedule_in(*delay as i32, next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    if let Some((at, id)) = q.pop() {
                        prop_assert_eq!(at, q.now(), "pop advances now to its own time");
                        if let Some((prev_at, prev_id)) = last {
                            prop_assert!(at >= prev_at, "time inverted: {at} after {prev_at}");
                            if at == prev_at {
                                prop_assert!(
                                    id > prev_id,
                                    "FIFO broken at {at}: id {id} after {prev_id}"
                                );
                            }
                        }
                        last = Some((at, id));
                    }
                }
            }
        }
        // Drain the remainder: same invariant must hold to exhaustion.
        while let Some((at, id)) = q.pop() {
            if let Some((prev_at, prev_id)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(id > prev_id);
                }
            }
            last = Some((at, id));
        }
    }

    /// The same invariants hold on the nanosecond completion-queue clock,
    /// with delays spanning nine orders of magnitude.
    #[test]
    fn net_clock_interleaving_never_inverts_time(ops in arb_ops()) {
        let mut q: EventQueue<u64, NetTime> = EventQueue::new();
        let mut next_id: u64 = 0;
        let mut last: Option<(NetTime, u64)> = None;
        for (op, scale) in &ops {
            match op {
                Op::Schedule(delay) => {
                    // Spread delays across ns/us/ms/s so equal fire times
                    // still occur but magnitudes vary wildly.
                    let ns = (*delay as u64) * 10u64.pow(scale * 3);
                    q.schedule_in(ns, next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    if let Some((at, id)) = q.pop() {
                        if let Some((prev_at, prev_id)) = last {
                            prop_assert!(at >= prev_at);
                            if at == prev_at {
                                prop_assert!(id > prev_id);
                            }
                        }
                        last = Some((at, id));
                    }
                }
            }
        }
        while let Some((at, id)) = q.pop() {
            if let Some((prev_at, prev_id)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(id > prev_id);
                }
            }
            last = Some((at, id));
        }
    }
}
