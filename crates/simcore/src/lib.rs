//! # simcore — deterministic simulation kernel
//!
//! Foundation for the dangling-resource-abuse reproduction: simulated time,
//! reproducible random-number streams, a discrete-event queue, and the
//! statistical distributions the world generator and attacker models draw
//! from.
//!
//! Everything in the workspace that involves chance goes through
//! [`rng::RngTree`], which derives independent, *named* child streams from a
//! single world seed. Re-running any experiment with the same seed reproduces
//! every table and figure bit-for-bit, regardless of how unrelated parts of
//! the simulation are reordered.
//!
//! Time is measured in whole days ([`time::SimTime`]) because the paper's
//! methodology samples weekly and reasons in days/months/years. Calendar
//! conversions use the proleptic Gregorian calendar.

pub mod dist;
pub mod events;
pub mod net;
pub mod rng;
pub mod scale;
pub mod time;

pub use dist::{LogNormal, Pareto, Poisson, WeightedIndex, Zipf};
pub use events::{EventQueue, QueueTime};
pub use net::{CompletionQueue, LatencyModel, LatencyProfile, NetTime, QueryClass, QueryFate};
pub use rng::RngTree;
pub use scale::Scale;
pub use time::{Date, SimTime};
