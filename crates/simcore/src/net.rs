//! Modeled network time and per-query latency.
//!
//! The paper's crawl (§3.1, Algorithm 1) is a real network measurement whose
//! throughput is bounded by round-trip latency and concurrency, not CPU. The
//! simulated transports used to be synchronous call-and-return, which made
//! crawl throughput a pure function of thread count. This module supplies
//! the missing dimension: a **nanosecond-granular virtual clock**
//! ([`NetTime`]) that runs *within* one crawl round (orthogonal to the
//! day-granular [`crate::SimTime`] world clock), a [`CompletionQueue`] that
//! drains pending network operations in deterministic `(fire_time, seq)`
//! order, and a [`LatencyModel`] that prices every query from a keyed RNG
//! stream — base RTT + jitter + per-platform multipliers + loss/timeout
//! injection — so latency draws are a pure function of *(fqdn, day, event
//! ordinal)* and never of which thread issued the query.

use crate::events::{EventQueue, QueueTime};
use crate::rng::RngTree;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A point in simulated network time: nanoseconds since the start of the
/// current round's virtual clock. Sub-day resolution — one monitoring round
/// (7 simulated days) is far longer than any crawl's modeled makespan, so
/// the network clock resets every round and never needs to interact with
/// [`crate::SimTime`] arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NetTime(pub u64);

impl NetTime {
    pub const ZERO: NetTime = NetTime(0);

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl QueueTime for NetTime {
    type Delta = u64;
    const ZERO: Self = NetTime(0);
    fn after(self, delta: u64) -> Self {
        NetTime(self.0.saturating_add(delta))
    }
}

impl Add<u64> for NetTime {
    type Output = NetTime;
    fn add(self, rhs: u64) -> NetTime {
        NetTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for NetTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl fmt::Display for NetTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The deterministic completion queue the event-driven crawl drains: the
/// same `(fire_time, seq)` discipline as the world's [`EventQueue`], on the
/// network clock. Same-instant completions pop in submission order, so a
/// zero-latency profile reproduces the synchronous call-and-return schedule
/// exactly.
pub type CompletionQueue<E> = EventQueue<E, NetTime>;

/// The kind of network operation being priced. The three probe techniques
/// and the crawl's request chain all decompose into these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// One DNS query/response exchange (per CNAME hop, per retry).
    Dns,
    /// Transport-level reachability: TCP handshake, or an ICMP echo.
    Connect,
    /// One HTTP request/response on an established connection.
    Http,
}

/// What the latency model decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryFate {
    /// Simulated time the attempt consumes. For a dropped query this is the
    /// full timeout budget the caller waits before retrying.
    pub cost_ns: u64,
    /// The query was lost on the wire: no response arrives; the caller
    /// retries or gives up (SERVFAIL) after its retry budget.
    pub dropped: bool,
}

/// A named latency profile: the tunable surface of the [`LatencyModel`].
///
/// All times are nanoseconds of simulated time. Jitter is uniform in
/// `[0, jitter]` on top of the base, both scaled by the per-platform
/// multiplier of the first matching name suffix (cloud platforms differ in
/// how fast their resolvers/front ends answer — the per-platform dimension
/// rate-limit and slow-platform scenarios tune).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    pub name: String,
    pub dns_base_ns: u64,
    pub dns_jitter_ns: u64,
    pub connect_base_ns: u64,
    pub connect_jitter_ns: u64,
    pub http_base_ns: u64,
    pub http_jitter_ns: u64,
    /// Per-DNS-query drop probability (loss → timeout → retry → SERVFAIL).
    pub dns_loss: f64,
    /// Timeout budget one dropped query consumes before the retry fires.
    pub dns_timeout_ns: u64,
    /// `(name suffix, multiplier)` pairs; the first suffix match scales the
    /// sampled cost. Models per-platform speed differences.
    pub platform_multipliers: Vec<(String, f64)>,
}

const MS: u64 = 1_000_000;

impl LatencyProfile {
    /// The zero-latency compatibility profile (the default): every operation
    /// completes instantly and nothing is ever dropped, so the event-driven
    /// crawl's completion order degenerates to submission order and results
    /// are byte-identical to the synchronous path.
    pub fn zero() -> Self {
        LatencyProfile {
            name: "zero".into(),
            dns_base_ns: 0,
            dns_jitter_ns: 0,
            connect_base_ns: 0,
            connect_jitter_ns: 0,
            http_base_ns: 0,
            http_jitter_ns: 0,
            dns_loss: 0.0,
            dns_timeout_ns: 0,
            platform_multipliers: Vec::new(),
        }
    }

    /// Same-facility measurement: sub-millisecond RTTs, no loss.
    pub fn datacenter() -> Self {
        LatencyProfile {
            name: "datacenter".into(),
            dns_base_ns: 400_000,
            dns_jitter_ns: 200_000,
            connect_base_ns: 300_000,
            connect_jitter_ns: 100_000,
            http_base_ns: 1_200_000,
            http_jitter_ns: 600_000,
            dns_loss: 0.0,
            dns_timeout_ns: 500 * MS,
            platform_multipliers: Vec::new(),
        }
    }

    /// Internet-scale measurement, the paper's own vantage: tens of
    /// milliseconds per exchange, platform-dependent front-end speed, no
    /// loss.
    pub fn wan() -> Self {
        LatencyProfile {
            name: "wan".into(),
            dns_base_ns: 18 * MS,
            dns_jitter_ns: 24 * MS,
            connect_base_ns: 30 * MS,
            connect_jitter_ns: 20 * MS,
            http_base_ns: 90 * MS,
            http_jitter_ns: 80 * MS,
            dns_loss: 0.0,
            dns_timeout_ns: 5_000 * MS,
            platform_multipliers: vec![
                ("azurewebsites.net".into(), 1.3),
                ("web.core.windows.net".into(), 1.2),
                ("trafficmanager.net".into(), 1.1),
                ("elasticbeanstalk.com".into(), 1.25),
                ("s3.amazonaws.com".into(), 1.15),
            ],
        }
    }

    /// The wan profile plus a 5% per-query DNS loss rate: queries time out,
    /// retries burn budget, and names whose retry budget runs dry resolve
    /// SERVFAIL. Changes *results* (deterministically — draws are keyed per
    /// (fqdn, day, ordinal)), which is exactly what the lossy
    /// parallel-equivalence leg pins.
    pub fn lossy() -> Self {
        LatencyProfile {
            name: "lossy".into(),
            dns_loss: 0.05,
            ..Self::wan()
        }
    }

    /// Look up a built-in profile by name; `off` maps to the disabled model
    /// (no event machinery at all, the legacy blocking path).
    pub fn by_name(name: &str) -> Option<LatencyModel> {
        match name {
            "off" => Some(LatencyModel::off()),
            "zero" => Some(LatencyModel::new(Self::zero())),
            "datacenter" => Some(LatencyModel::new(Self::datacenter())),
            "wan" => Some(LatencyModel::new(Self::wan())),
            "lossy" => Some(LatencyModel::new(Self::lossy())),
            _ => None,
        }
    }

    /// The built-in profile names, for CLI help and validation messages.
    pub const NAMES: &'static [&'static str] = &["off", "zero", "datacenter", "wan", "lossy"];
}

/// Per-query latency oracle. `None` profile = model off: callers take the
/// legacy synchronous path and no virtual clock exists at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    profile: Option<LatencyProfile>,
}

impl Default for LatencyModel {
    /// The default is the **zero** profile — event-driven with a degenerate
    /// clock — not `off`, so the completion-queue machinery is exercised on
    /// every default-config run.
    fn default() -> Self {
        LatencyModel::new(LatencyProfile::zero())
    }
}

impl LatencyModel {
    pub fn new(profile: LatencyProfile) -> Self {
        LatencyModel {
            profile: Some(profile),
        }
    }

    /// The disabled model: the legacy blocking call-and-return path.
    pub fn off() -> Self {
        LatencyModel { profile: None }
    }

    pub fn enabled(&self) -> bool {
        self.profile.is_some()
    }

    pub fn profile(&self) -> Option<&LatencyProfile> {
        self.profile.as_ref()
    }

    pub fn name(&self) -> &str {
        self.profile
            .as_ref()
            .map(|p| p.name.as_str())
            .unwrap_or("off")
    }

    /// True when every sample is trivially `{0, not dropped}` — the zero
    /// profile (or the model being off). Callers can skip RNG stream-key
    /// construction entirely on this path.
    pub fn is_free(&self) -> bool {
        match &self.profile {
            None => true,
            Some(p) => {
                p.dns_base_ns == 0
                    && p.dns_jitter_ns == 0
                    && p.connect_base_ns == 0
                    && p.connect_jitter_ns == 0
                    && p.http_base_ns == 0
                    && p.http_jitter_ns == 0
                    && p.dns_loss == 0.0
            }
        }
    }

    /// Price one attempt. `stream_key` must identify the *logical* attempt —
    /// the pipeline uses `net/{fqdn}/{day}/{ordinal}` where `ordinal` counts
    /// the crawl task's network events (retries included) — so the draw is a
    /// pure function of content, invariant under any thread schedule.
    /// `target` is the name the operation is addressed to (the DNS qname of
    /// the current CNAME hop, or the HTTP host), matched against the
    /// profile's platform multiplier suffixes.
    pub fn sample(
        &self,
        tree: &RngTree,
        stream_key: &str,
        target: &str,
        class: QueryClass,
    ) -> QueryFate {
        let Some(p) = &self.profile else {
            return QueryFate {
                cost_ns: 0,
                dropped: false,
            };
        };
        let (base, jitter) = match class {
            QueryClass::Dns => (p.dns_base_ns, p.dns_jitter_ns),
            QueryClass::Connect => (p.connect_base_ns, p.connect_jitter_ns),
            QueryClass::Http => (p.http_base_ns, p.http_jitter_ns),
        };
        // Fast path for the zero profile: no RNG derivation at all.
        if base == 0 && jitter == 0 && p.dns_loss == 0.0 {
            return QueryFate {
                cost_ns: 0,
                dropped: false,
            };
        }
        let mut rng = tree.rng(stream_key);
        if class == QueryClass::Dns && p.dns_loss > 0.0 && rng.gen_bool(p.dns_loss) {
            return QueryFate {
                cost_ns: p.dns_timeout_ns,
                dropped: true,
            };
        }
        let raw = base
            + if jitter > 0 {
                rng.gen_range(0..=jitter)
            } else {
                0
            };
        let mult = p
            .platform_multipliers
            .iter()
            .find(|(suffix, _)| target.ends_with(suffix.as_str()))
            .map(|&(_, m)| m)
            .unwrap_or(1.0);
        QueryFate {
            cost_ns: (raw as f64 * mult) as u64,
            dropped: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_profile_costs_nothing() {
        let m = LatencyModel::default();
        let tree = RngTree::new(1);
        let f = m.sample(&tree, "net/a.b.c/7/0", "a.b.c", QueryClass::Dns);
        assert_eq!(
            f,
            QueryFate {
                cost_ns: 0,
                dropped: false
            }
        );
        assert_eq!(m.name(), "zero");
        assert!(m.enabled());
    }

    #[test]
    fn off_model_is_disabled() {
        let m = LatencyModel::off();
        assert!(!m.enabled());
        assert_eq!(m.name(), "off");
        let tree = RngTree::new(1);
        let f = m.sample(&tree, "k", "t", QueryClass::Http);
        assert_eq!(f.cost_ns, 0);
        assert!(!f.dropped);
    }

    #[test]
    fn sampling_is_keyed_not_sequential() {
        let m = LatencyProfile::by_name("wan").unwrap();
        let tree = RngTree::new(9);
        let a = m.sample(&tree, "net/x/7/0", "x", QueryClass::Dns);
        let b = m.sample(&tree, "net/x/7/0", "x", QueryClass::Dns);
        assert_eq!(a, b, "same key, same draw — regardless of call order");
        let c = m.sample(&tree, "net/x/7/1", "x", QueryClass::Dns);
        // Overwhelmingly likely distinct with 24ms of jitter.
        assert_ne!(
            a.cost_ns, c.cost_ns,
            "different ordinals draw independently"
        );
    }

    #[test]
    fn platform_multiplier_scales_matching_suffix() {
        let mut p = LatencyProfile::wan();
        p.dns_jitter_ns = 0; // make the draw deterministic in value
        let m = LatencyModel::new(p);
        let tree = RngTree::new(9);
        let plain = m.sample(&tree, "k", "shop.example.com", QueryClass::Dns);
        let azure = m.sample(&tree, "k", "shop-prod.azurewebsites.net", QueryClass::Dns);
        assert_eq!(plain.cost_ns, 18 * MS);
        assert_eq!(azure.cost_ns, (18.0 * MS as f64 * 1.3) as u64);
    }

    #[test]
    fn lossy_profile_drops_deterministically() {
        let m = LatencyProfile::by_name("lossy").unwrap();
        let tree = RngTree::new(4);
        // Whatever the outcome, it is a pure function of the key.
        let mut dropped = 0;
        for i in 0..1000 {
            let key = format!("net/h{i}.apex.com/7/0");
            let a = m.sample(&tree, &key, "x", QueryClass::Dns);
            let b = m.sample(&tree, &key, "x", QueryClass::Dns);
            assert_eq!(a, b);
            if a.dropped {
                assert_eq!(a.cost_ns, 5_000 * MS, "drop costs the timeout budget");
                dropped += 1;
            }
        }
        // ~5% of 1000; generous band.
        assert!((20..=110).contains(&dropped), "dropped {dropped}/1000");
    }

    #[test]
    fn unknown_profile_rejected() {
        assert!(LatencyProfile::by_name("warp").is_none());
        for name in LatencyProfile::NAMES {
            assert!(LatencyProfile::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn net_time_display() {
        assert_eq!(NetTime(12).to_string(), "12ns");
        assert_eq!(NetTime(1_500_000).to_string(), "1.500ms");
        assert_eq!(NetTime(2_250_000_000).to_string(), "2.250s");
    }
}
