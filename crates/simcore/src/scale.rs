//! Experiment scaling.
//!
//! The paper monitors 1.5M → 3.1M FQDNs over 3.5 years. A laptop-scale
//! reproduction runs the identical pipeline over a world scaled down by a
//! configurable factor; absolute counts scale linearly while the *shapes* the
//! paper's claims rest on (ratios, distributions, rankings, crossovers) are
//! preserved.

use serde::{Deserialize, Serialize};

/// A linear down-scaling factor applied to population sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Denominator: `Scale::new(100)` simulates 1/100 of the paper's world.
    pub denominator: u32,
}

impl Scale {
    /// The paper's own scale (1:1). Only for the brave.
    pub const FULL: Scale = Scale { denominator: 1 };

    /// Default reproduction scale (1:100), sized so the full longitudinal
    /// scenario plus every analysis runs in seconds.
    pub const DEFAULT: Scale = Scale { denominator: 100 };

    pub fn new(denominator: u32) -> Self {
        assert!(denominator > 0, "scale denominator must be positive");
        Self { denominator }
    }

    /// Scale a paper-reported population count down, rounding to nearest and
    /// keeping at least 1 whenever the paper's count was nonzero.
    pub fn apply(&self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            return 0;
        }
        let scaled = (paper_count as f64 / self.denominator as f64).round() as u64;
        scaled.max(1)
    }

    /// Scale a count expected to stay fractional-accurate (e.g. rates used as
    /// Poisson intensities).
    pub fn apply_f64(&self, paper_count: f64) -> f64 {
        paper_count / self.denominator as f64
    }

    /// Multiply a measured count back up to paper-equivalent units for
    /// side-by-side reporting.
    pub fn project_up(&self, measured: u64) -> u64 {
        measured * self.denominator as u64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_identity() {
        assert_eq!(Scale::FULL.apply(12345), 12345);
    }

    #[test]
    fn rounds_and_floors_at_one() {
        let s = Scale::new(100);
        assert_eq!(s.apply(1_508_273), 15083);
        assert_eq!(s.apply(50), 1); // nonzero stays nonzero
        assert_eq!(s.apply(0), 0);
        assert_eq!(s.apply(150), 2);
    }

    #[test]
    fn project_up_inverts_order_of_magnitude() {
        let s = Scale::new(100);
        assert_eq!(s.project_up(s.apply(20_904)), 20_900);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_rejected() {
        Scale::new(0);
    }
}
