//! Named, reproducible random-number streams.
//!
//! The whole workspace derives randomness from a single `u64` world seed. To
//! keep experiments reproducible under refactoring, components never share an
//! RNG: each asks the [`RngTree`] for a child stream identified by a string
//! path (e.g. `"worldgen/tranco"`, `"attacker/campaign/17"`). Child seeds are
//! derived by hashing the parent seed with the label, so adding a new consumer
//! never perturbs the streams of existing consumers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A node in the seed-derivation tree.
///
/// ```
/// use simcore::RngTree;
/// use rand::Rng;
///
/// let root = RngTree::new(42);
/// let mut a = root.rng("worldgen");
/// let mut b = root.rng("attacker");
/// // Streams are independent and reproducible:
/// let x: u64 = a.gen();
/// let y: u64 = b.gen();
/// assert_eq!(x, RngTree::new(42).rng("worldgen").gen::<u64>());
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone)]
pub struct RngTree {
    seed: u64,
}

impl RngTree {
    /// Root of the tree for a given world seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The raw seed of this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive a child node for `label`.
    pub fn child(&self, label: &str) -> RngTree {
        RngTree {
            seed: derive(self.seed, label.as_bytes()),
        }
    }

    /// Derive an indexed child (convenience for per-entity streams).
    pub fn child_idx(&self, label: &str, idx: u64) -> RngTree {
        let mut bytes = Vec::with_capacity(label.len() + 9);
        bytes.extend_from_slice(label.as_bytes());
        bytes.push(b'#');
        bytes.extend_from_slice(&idx.to_le_bytes());
        RngTree {
            seed: derive(self.seed, &bytes),
        }
    }

    /// A ready-to-use RNG for the child stream `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.child(label).seed)
    }

    /// A ready-to-use RNG for the indexed child stream.
    pub fn rng_idx(&self, label: &str, idx: u64) -> StdRng {
        StdRng::seed_from_u64(self.child_idx(label, idx).seed)
    }
}

/// Seed derivation: FNV-1a over the label, mixed into the parent seed with a
/// SplitMix64 finalizer. Not cryptographic — just well-spread and stable.
fn derive(seed: u64, label: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET ^ seed;
    for &b in label {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// SplitMix64 finalizer: bijective on u64, excellent avalanche behaviour.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let a = RngTree::new(7).rng("x").gen::<u64>();
        let b = RngTree::new(7).rng("x").gen::<u64>();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_differ() {
        let t = RngTree::new(7);
        assert_ne!(t.rng("x").gen::<u64>(), t.rng("y").gen::<u64>());
        assert_ne!(t.child("x").seed(), t.child("y").seed());
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(
            RngTree::new(1).child("x").seed(),
            RngTree::new(2).child("x").seed()
        );
    }

    #[test]
    fn indexed_children_distinct() {
        let t = RngTree::new(99);
        let seeds: HashSet<u64> = (0..1000).map(|i| t.child_idx("c", i).seed()).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn nested_derivation_stable() {
        let t = RngTree::new(3).child("a").child("b");
        let u = RngTree::new(3).child("a").child("b");
        assert_eq!(t.seed(), u.seed());
        // and differs from flattened label
        assert_ne!(t.seed(), RngTree::new(3).child("ab").seed());
    }

    #[test]
    fn splitmix_bijective_sample() {
        // spot-check no collisions over a contiguous range
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
