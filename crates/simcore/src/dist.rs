//! Statistical distributions used by the world and attacker models.
//!
//! The `rand` crate only ships uniform-family distributions; the reproduction
//! needs Zipf (domain popularity), log-normal (hijack lifetimes, page
//! counts), Pareto (heavy-tailed upload volumes), Poisson (event counts) and
//! weighted categorical choice (sector/topic mixes). Implemented here from
//! first principles so the dependency footprint stays at the approved list.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampled by inversion over the precomputed CDF — O(log n) per sample after
/// O(n) setup, exact (no rejection), deterministic given the RNG stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf sampler. Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s.is_finite(), "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index whose cumulative mass reaches u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite() && mu.is_finite());
        Self { mu, sigma }
    }

    /// Construct from a target *median* and a multiplicative spread factor
    /// (the ratio between the ~84th percentile and the median).
    pub fn from_median_spread(median: f64, spread: f64) -> Self {
        assert!(median > 0.0 && spread >= 1.0);
        Self::new(median.ln(), spread.ln())
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Self { x_min, alpha }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: x = x_min / U^(1/alpha); guard U=0.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson distribution (Knuth's algorithm for small lambda, normal
/// approximation above 30 where Knuth's product underflows practically).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite());
        Self { lambda }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction; adequate for
            // the event-count use cases here.
            let z = standard_normal(rng);
            let x = self.lambda + self.lambda.sqrt() * z + 0.5;
            x.max(0.0) as u64
        }
    }
}

/// Weighted categorical distribution over indices `0..weights.len()`.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Panics on empty or all-zero/negative weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        for v in &mut cdf {
            *v /= acc;
        }
        Self { cdf }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// One draw from N(0,1) via Box–Muller. Uses a single pair per call (the
/// second variate is discarded: simplicity over a cached half-sample, and
/// determinism is unaffected).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn zipf_rank1_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 1001];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // rank 1 of zipf(1.0, n=1000) has mass 1/H_1000 ~ 13.4%
        let p1 = counts[1] as f64 / 20_000.0;
        assert!((p1 - 0.134).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut r = rng();
        for _ in 0..1000 {
            let k = z.sample(&mut r);
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median_spread(100.0, 3.0);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..10_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[5000];
        assert!((median / 100.0 - 1.0).abs() < 0.15, "median = {median}");
    }

    #[test]
    fn pareto_min_respected() {
        let d = Pareto::new(2.0, 1.5);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn pareto_heavy_tail() {
        let d = Pareto::new(1.0, 1.1);
        let mut r = rng();
        let n = 20_000;
        let big = (0..n).filter(|_| d.sample(&mut r) > 100.0).count();
        // P(X > 100) = 100^-1.1 ~ 0.63%
        let frac = big as f64 / n as f64;
        assert!(frac > 0.002 && frac < 0.02, "frac = {frac}");
    }

    #[test]
    fn poisson_mean_small() {
        let d = Poisson::new(4.0);
        let mut r = rng();
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn poisson_mean_large() {
        let d = Poisson::new(200.0);
        let mut r = rng();
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn poisson_zero() {
        let d = Poisson::new(0.0);
        assert_eq!(d.sample(&mut rng()), 0);
    }

    #[test]
    fn weighted_index_proportions() {
        let w = WeightedIndex::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[3] as f64 / 20_000.0 - 0.6).abs() < 0.02);
        assert!((counts[1] as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn weighted_index_rejects_zero_sum() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
