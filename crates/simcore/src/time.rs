//! Simulated time.
//!
//! The simulation epoch is **2015-01-01** (day 0). This predates the paper's
//! monitoring window (2020-01 .. 2023-06) on purpose: §5.6.1 analyses the
//! *entire Certificate Transparency history* of the hijacked subdomains and
//! finds issuance campaigns as early as mid-2017, so the simulated world must
//! have a past.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in whole days since 2015-01-01.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub i32);

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

/// Days from 0000-03-01 to 2015-01-01 using Howard Hinnant's civil-date
/// algorithm (`days_from_civil(2015, 1, 1)`).
const EPOCH_CIVIL_DAYS: i64 = days_from_civil(2015, 1, 1);

/// `days_from_civil`: number of days since 1970-01-01 for a Gregorian date.
/// Algorithm by Howard Hinnant (public domain), valid for all i32 years.
const fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = m as i64;
    let d = d as i64;
    let mp = if m > 2 { m - 3 } else { m + 9 }; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

impl Date {
    /// Construct a date, panicking on out-of-range month/day. Use
    /// [`Date::checked_new`] for fallible construction.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Self::checked_new(year, month, day)
            .unwrap_or_else(|| panic!("invalid date {year:04}-{month:02}-{day:02}"))
    }

    /// Construct a date, returning `None` if month/day are out of range for
    /// the given year (leap years included).
    pub fn checked_new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 {
            return None;
        }
        if day > days_in_month(year, month) {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// The `SimTime` of midnight at the start of this date.
    pub fn to_sim(self) -> SimTime {
        SimTime((days_from_civil(self.year, self.month, self.day) - EPOCH_CIVIL_DAYS) as i32)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.split('-');
        let y = it.next()?.parse().ok()?;
        let m = it.next()?.parse().ok()?;
        let d = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Self::checked_new(y, m, d)
    }
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

impl SimTime {
    /// Day 0 of the simulation (2015-01-01).
    pub const EPOCH: SimTime = SimTime(0);

    /// Start of the paper's monitoring window (2020-01-01).
    pub fn monitor_start() -> SimTime {
        Date::new(2020, 1, 1).to_sim()
    }

    /// End of the paper's monitoring window (2023-06-30).
    pub fn monitor_end() -> SimTime {
        Date::new(2023, 6, 30).to_sim()
    }

    /// Convert to a calendar date.
    pub fn to_date(self) -> Date {
        let (year, month, day) = civil_from_days(self.0 as i64 + EPOCH_CIVIL_DAYS);
        Date { year, month, day }
    }

    /// Days elapsed since another time (may be negative).
    pub fn days_since(self, other: SimTime) -> i32 {
        self.0 - other.0
    }

    /// Month index since the epoch: `year*12 + (month-1)`. Used for the
    /// monthly time-series figures (Fig 1, Fig 16, Fig 20).
    pub fn month_index(self) -> i32 {
        let d = self.to_date();
        d.year * 12 + (d.month as i32 - 1)
    }

    /// First day of this time's calendar month.
    pub fn month_floor(self) -> SimTime {
        let d = self.to_date();
        Date::new(d.year, d.month, 1).to_sim()
    }

    /// The year as an i32 (for per-year bucketing).
    pub fn year(self) -> i32 {
        self.to_date().year
    }
}

impl Add<i32> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: i32) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<i32> for SimTime {
    fn add_assign(&mut self, rhs: i32) {
        self.0 += rhs;
    }
}

impl Sub<i32> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: i32) -> SimTime {
        SimTime(self.0 - rhs)
    }
}

impl SubAssign<i32> for SimTime {
    fn sub_assign(&mut self, rhs: i32) {
        self.0 -= rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = i32;
    fn sub(self, rhs: SimTime) -> i32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_date())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        assert_eq!(SimTime::EPOCH.to_date(), Date::new(2015, 1, 1));
        assert_eq!(Date::new(2015, 1, 1).to_sim(), SimTime::EPOCH);
    }

    #[test]
    fn known_dates() {
        // 2015 is not a leap year; 2016 is.
        assert_eq!(Date::new(2015, 12, 31).to_sim().0, 364);
        assert_eq!(Date::new(2016, 1, 1).to_sim().0, 365);
        assert_eq!(Date::new(2016, 12, 31).to_sim().0, 365 + 365);
        assert_eq!(Date::new(2017, 1, 1).to_sim().0, 365 + 366);
    }

    #[test]
    fn monitor_window() {
        let start = SimTime::monitor_start();
        let end = SimTime::monitor_end();
        assert_eq!(start.to_date(), Date::new(2020, 1, 1));
        assert_eq!(end.to_date(), Date::new(2023, 6, 30));
        // ~3.5 years of monitoring.
        assert_eq!(end - start, 1276);
    }

    #[test]
    fn leap_rules() {
        assert!(is_leap_year(2016));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2015));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 2), 28);
    }

    #[test]
    fn date_validation() {
        assert!(Date::checked_new(2020, 2, 29).is_some());
        assert!(Date::checked_new(2021, 2, 29).is_none());
        assert!(Date::checked_new(2021, 13, 1).is_none());
        assert!(Date::checked_new(2021, 0, 1).is_none());
        assert!(Date::checked_new(2021, 4, 31).is_none());
        assert!(Date::checked_new(2021, 4, 0).is_none());
    }

    #[test]
    fn parse_display_roundtrip() {
        let d = Date::parse("2022-09-09").unwrap();
        assert_eq!(d, Date::new(2022, 9, 9));
        assert_eq!(d.to_string(), "2022-09-09");
        assert!(Date::parse("2022-9").is_none());
        assert!(Date::parse("2022-09-09-01").is_none());
        assert!(Date::parse("not-a-date").is_none());
    }

    #[test]
    fn roundtrip_many_days() {
        // Every day across 20 years survives to_date -> to_sim.
        for day in 0..(366 * 20) {
            let t = SimTime(day);
            assert_eq!(t.to_date().to_sim(), t, "day {day}");
        }
    }

    #[test]
    fn month_index_is_monotone() {
        let mut last = i32::MIN;
        for day in 0..(366 * 10) {
            let idx = SimTime(day).month_index();
            assert!(idx >= last);
            last = idx;
        }
        assert_eq!(
            Date::new(2020, 1, 15).to_sim().month_index() + 1,
            Date::new(2020, 2, 1).to_sim().month_index()
        );
    }

    #[test]
    fn month_floor_is_first_day() {
        let t = Date::new(2021, 7, 23).to_sim();
        assert_eq!(t.month_floor().to_date(), Date::new(2021, 7, 1));
    }

    #[test]
    fn arithmetic() {
        let t = Date::new(2020, 1, 1).to_sim();
        assert_eq!((t + 31).to_date(), Date::new(2020, 2, 1));
        assert_eq!((t - 1).to_date(), Date::new(2019, 12, 31));
        assert_eq!((t + 7).days_since(t), 7);
    }
}
