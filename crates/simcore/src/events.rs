//! Discrete-event queue.
//!
//! A classic priority queue keyed by a point on a virtual clock with a
//! monotonically increasing sequence number as tiebreaker, so events
//! scheduled for the same instant fire in insertion order (deterministic
//! FIFO within an instant). Two clocks use it: the day-granular [`SimTime`]
//! world queue, and the nanosecond-granular [`crate::net::NetTime`]
//! completion queue the event-driven crawl drains — both inherit the same
//! `(fire_time, seq)` ordering contract, which is what makes completion
//! order a pure function of the schedule and never of thread timing.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A point on a virtual clock usable as an [`EventQueue`] key.
pub trait QueueTime: Copy + Ord + fmt::Display {
    /// The additive delay type (days for [`SimTime`], nanoseconds for
    /// [`crate::net::NetTime`]).
    type Delta: Copy;
    /// The clock's origin — where a fresh queue's `now` starts.
    const ZERO: Self;
    /// The instant `delta` after `self`.
    fn after(self, delta: Self::Delta) -> Self;
}

impl QueueTime for SimTime {
    type Delta = i32;
    const ZERO: Self = SimTime::EPOCH;
    fn after(self, delta: i32) -> Self {
        self + delta
    }
}

struct Entry<T, E> {
    at: T,
    seq: u64,
    event: E,
}

impl<T: QueueTime, E> PartialEq for Entry<T, E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: QueueTime, E> Eq for Entry<T, E> {}
impl<T: QueueTime, E> PartialOrd for Entry<T, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: QueueTime, E> Ord for Entry<T, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(5), "later");
/// q.schedule(SimTime(1), "first");
/// q.schedule(SimTime(1), "second");
/// assert_eq!(q.pop(), Some((SimTime(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime(1), "second")));
/// assert_eq!(q.pop(), Some((SimTime(5), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E, T: QueueTime = SimTime> {
    heap: BinaryHeap<Entry<T, E>>,
    seq: u64,
    now: T,
}

impl<E, T: QueueTime> Default for EventQueue<E, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, T: QueueTime> EventQueue<E, T> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: T::ZERO,
        }
    }

    /// The time of the most recently popped event (starts at the clock's
    /// origin).
    pub fn now(&self) -> T {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics — it would silently reorder the
    /// timeline otherwise.
    pub fn schedule(&mut self, at: T, event: E) {
        assert!(
            at >= self.now,
            "scheduling event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` `delay` clock units after the current time and
    /// return the absolute instant it will fire — the enqueue→fire window
    /// callers (e.g. causal tracing) can attribute as queue wait. A
    /// negative delay panics via the past-scheduling check in
    /// [`Self::schedule`].
    pub fn schedule_in(&mut self, delay: T::Delta, event: E) -> T {
        let at = self.now.after(delay);
        self.schedule(at, event);
        at
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(T, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<T> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetTime;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 'c');
        q.schedule(SimTime(2), 'a');
        q.schedule(SimTime(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn now_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(3), ());
        q.schedule(SimTime(7), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime(3));
        q.pop();
        assert_eq!(q.now(), SimTime(7));
    }

    #[test]
    #[should_panic]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.pop();
        q.schedule(SimTime(4), ());
    }

    #[test]
    fn schedule_in_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.pop();
        q.schedule_in(2, 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), ());
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn net_clock_queue_orders_by_nanos_then_fifo() {
        let mut q: EventQueue<char, NetTime> = EventQueue::new();
        q.schedule(NetTime(5_000), 'c');
        q.schedule(NetTime(100), 'a');
        q.schedule(NetTime(100), 'b');
        assert_eq!(q.pop(), Some((NetTime(100), 'a')));
        assert_eq!(q.pop(), Some((NetTime(100), 'b')));
        q.schedule_in(50, 'd'); // 100ns + 50ns
        assert_eq!(q.pop(), Some((NetTime(150), 'd')));
        assert_eq!(q.pop(), Some((NetTime(5_000), 'c')));
    }
}
