//! Discrete-event queue.
//!
//! A classic priority queue keyed by [`SimTime`] with a monotonically
//! increasing sequence number as tiebreaker, so events scheduled for the same
//! day fire in insertion order (deterministic FIFO within a day).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(5), "later");
/// q.schedule(SimTime(1), "first");
/// q.schedule(SimTime(1), "second");
/// assert_eq!(q.pop(), Some((SimTime(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime(1), "second")));
/// assert_eq!(q.pop(), Some((SimTime(5), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// The time of the most recently popped event (starts at the epoch).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics — it would silently reorder the
    /// timeline otherwise.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` `delay` days after the current time.
    pub fn schedule_in(&mut self, delay: i32, event: E) {
        assert!(delay >= 0);
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 'c');
        q.schedule(SimTime(2), 'a');
        q.schedule(SimTime(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn now_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(3), ());
        q.schedule(SimTime(7), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime(3));
        q.pop();
        assert_eq!(q.now(), SimTime(7));
    }

    #[test]
    #[should_panic]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.pop();
        q.schedule(SimTime(4), ());
    }

    #[test]
    fn schedule_in_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.pop();
        q.schedule_in(2, 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), ());
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
