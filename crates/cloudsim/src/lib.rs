//! # cloudsim — cloud-platform simulator
//!
//! Models the twelve cloud platforms the paper monitors, with the property
//! §4.3 identifies as the root cause of every observed hijack: **resource
//! naming**. Each service allocates resources under one of three models:
//!
//! - [`provider::NamingModel::Freetext`] — the customer types a name and the
//!   platform mints `<name>.<service-suffix>` (Azure Web Apps, S3 website
//!   buckets, Heroku, …). Releasing the resource frees the name for anyone,
//!   which makes re-registration *deterministic* — the attack the paper
//!   actually observes, 20,904 times.
//! - [`provider::NamingModel::IpPool`] — the resource receives a random IP
//!   from a large provider pool (EC2/Azure VM public addresses). Obtaining a
//!   *specific* released IP is a lottery; §4.3 finds zero such takeovers.
//! - [`provider::NamingModel::RandomName`] — the platform generates the
//!   subdomain itself (Google Cloud). No user input, no deterministic
//!   re-registration; the paper finds no abused Google-hosted domains.
//!
//! [`platform::CloudPlatform`] owns resource lifecycles, the authoritative
//! DNS zones for all service suffixes, per-service virtual-hosting front
//! ends, and implements [`httpsim::Endpoint`] so the probe machinery and
//! crawler talk to it exactly like prior work talked to real clouds.

pub mod content;
pub mod ip;
pub mod platform;
pub mod provider;
pub mod resource;

pub use content::{PageStats, SiteContent, Sitemap};
pub use ip::{Cidr, IpPool, IpRangeTable};
pub use platform::{CloudPlatform, PlatformConfig, RegisterError};
pub use provider::{
    CapabilityClass, NamingModel, ProviderId, ServiceFunction, ServiceId, ServiceSpec, CATALOG,
};
pub use resource::{AccountId, Resource, ResourceId, ResourceState};
