//! Hosted site content.
//!
//! What a cloud resource serves: an index page, an optional sitemap, a page
//! store (modelled statistically — the paper's attackers upload up to
//! 144,349 HTML files per site, which we track as counts + a sampled page
//! rather than materializing terabytes), response headers, and robots.txt /
//! .htaccess (the cloaking machinery of §5.2.1).

use httpsim::{HeaderMap, Request, Response, StatusCode};
use serde::{Deserialize, Serialize};

/// Sitemap metadata plus a small representative sample. The monitoring
/// pipeline compares *size* (the paper flags new sitemaps and >100KB jumps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sitemap {
    /// Number of URL entries.
    pub entries: u64,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// A sample of the XML (first N entries) actually served.
    pub sample_xml: String,
}

impl Sitemap {
    /// Build a sitemap whose serialized size approximates `entries` URLs of
    /// ~80 bytes each.
    pub fn synthetic(entries: u64, sample_xml: String) -> Self {
        Sitemap {
            entries,
            bytes: 120 + entries * 80,
            sample_xml,
        }
    }
}

/// Statistics of the non-index pages on a site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PageStats {
    /// Number of HTML files uploaded (Figure 6's x-axis).
    pub count: u64,
    /// Their total size in bytes (the 24 TB aggregate of §3.2).
    pub total_bytes: u64,
}

/// Everything a resource serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SiteContent {
    /// The index HTML (may be an "under maintenance" shell page; the abuse
    /// often hides thousands of pages behind an innocuous index — §3).
    pub index_html: String,
    pub sitemap: Option<Sitemap>,
    pub pages: PageStats,
    /// A representative non-index page (what a crawler following the sitemap
    /// would fetch).
    pub sample_page: Option<String>,
    /// robots.txt body, if present (Japanese-keyword-hack cloaking touches
    /// this).
    pub robots_txt: Option<String>,
    /// Extra response headers the site sets (HSTS, Set-Cookie, …).
    pub extra_headers: Vec<(String, String)>,
    /// BCP47-ish primary language tag of the index content.
    pub language: String,
}

impl SiteContent {
    /// A minimal benign placeholder.
    pub fn placeholder(text: &str) -> Self {
        SiteContent {
            index_html: format!(
                "<html><head><title>{text}</title></head><body><h1>{text}</h1></body></html>"
            ),
            language: "en".into(),
            ..Default::default()
        }
    }

    /// Serve a request path against this content.
    pub fn serve(&self, req: &Request) -> Response {
        let mut resp = match req.path.as_str() {
            "/" | "/index.html" => Response::ok_html(self.index_html.clone()),
            "/sitemap.xml" => match &self.sitemap {
                Some(sm) => {
                    let mut r = Response::ok_xml(sm.sample_xml.clone());
                    // Advertise the true size so the monitor's size-diff
                    // logic sees what a full download would have seen.
                    r.headers.set("Content-Length", sm.bytes.to_string());
                    r
                }
                None => Response::not_found("<html><body>no sitemap</body></html>"),
            },
            "/robots.txt" => match &self.robots_txt {
                Some(txt) => {
                    let mut r = Response::new(StatusCode::OK);
                    r.headers.set("Content-Type", "text/plain");
                    r.body = txt.clone().into_bytes();
                    r
                }
                None => Response::not_found("not found"),
            },
            _ => match &self.sample_page {
                Some(page) if self.pages.count > 0 => Response::ok_html(page.clone()),
                _ => Response::not_found("<html><body>404</body></html>"),
            },
        };
        for (n, v) in &self.extra_headers {
            resp.headers.append(n.clone(), v.clone());
        }
        resp
    }

    /// Extract the headers this site would attach (used when building
    /// synthetic responses without a request).
    pub fn header_map(&self) -> HeaderMap {
        self.extra_headers
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_index_and_404() {
        let c = SiteContent::placeholder("hello");
        let r = c.serve(&Request::get("x", "/"));
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body_text().contains("hello"));
        let r = c.serve(&Request::get("x", "/nope.html"));
        assert_eq!(r.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn serves_sitemap_with_true_size() {
        let mut c = SiteContent::placeholder("s");
        c.sitemap = Some(Sitemap::synthetic(10_000, "<urlset/>".into()));
        let r = c.serve(&Request::get("x", "/sitemap.xml"));
        assert_eq!(r.status, StatusCode::OK);
        let cl: u64 = r.headers.get("content-length").unwrap().parse().unwrap();
        assert_eq!(cl, 120 + 10_000 * 80);
    }

    #[test]
    fn serves_sample_page_when_pages_exist() {
        let mut c = SiteContent::placeholder("s");
        c.pages = PageStats {
            count: 5000,
            total_bytes: 5000 * 50_000,
        };
        c.sample_page = Some("<html><body>doorway</body></html>".into());
        let r = c.serve(&Request::get("x", "/page-xyz.html"));
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body_text().contains("doorway"));
    }

    #[test]
    fn extra_headers_attached() {
        let mut c = SiteContent::placeholder("s");
        c.extra_headers
            .push(("Strict-Transport-Security".into(), "max-age=300".into()));
        let r = c.serve(&Request::get("x", "/"));
        assert_eq!(
            r.headers.get("strict-transport-security"),
            Some("max-age=300")
        );
    }

    #[test]
    fn robots_txt() {
        let mut c = SiteContent::placeholder("s");
        c.robots_txt = Some("User-agent: *\nDisallow: /admin".into());
        let r = c.serve(&Request::get("x", "/robots.txt"));
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body_text().contains("Disallow"));
    }
}
