//! IPv4 CIDR blocks, provider range tables, and the random IP pool.
//!
//! The paper's Algorithm 1 classifies an FQDN as cloud-hosted when one of its
//! A records falls inside a published provider range (the analog of
//! `ip-ranges.amazonaws.com/ip-ranges.json`); [`IpRangeTable`] is that
//! lookup. [`IpPool`] models the random public-IP assignment of VM services,
//! the mechanism that makes IP takeovers a lottery (§4.3).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: Ipv4Addr,
    prefix_len: u8,
}

impl Cidr {
    /// Construct, normalizing the base address to the network address.
    /// Panics if `prefix_len > 32`.
    pub fn new(base: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        let mask = Self::mask_of(prefix_len);
        Cidr {
            base: Ipv4Addr::from(u32::from(base) & mask),
            prefix_len,
        }
    }

    fn mask_of(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    pub fn base(&self) -> Ipv4Addr {
        self.base
    }

    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask_of(self.prefix_len)) == u32::from(self.base)
    }

    /// True if `other` is entirely inside `self`.
    pub fn covers(&self, other: &Cidr) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.base)
    }

    /// The `i`-th address in the block. Panics if out of range.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(
            i < self.size(),
            "index {i} out of /{} block",
            self.prefix_len
        );
        Ipv4Addr::from(u32::from(self.base) + i as u32)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix_len)
    }
}

/// `a.b.c.d/n` parser.
impl FromStr for Cidr {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| format!("no '/' in {s:?}"))?;
        let base: Ipv4Addr = ip.parse().map_err(|e| format!("bad address: {e}"))?;
        let prefix_len: u8 = len.parse().map_err(|e| format!("bad prefix: {e}"))?;
        if prefix_len > 32 {
            return Err(format!("prefix {prefix_len} > 32"));
        }
        Ok(Cidr::new(base, prefix_len))
    }
}

/// Longest-prefix-match table mapping IPs to a tag (provider, service, …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpRangeTable<T> {
    /// Sorted by prefix length descending so the first hit is the longest
    /// match.
    entries: Vec<(Cidr, T)>,
}

impl<T: Clone> IpRangeTable<T> {
    pub fn new() -> Self {
        IpRangeTable {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, cidr: Cidr, tag: T) {
        let pos = self
            .entries
            .partition_point(|(c, _)| c.prefix_len() >= cidr.prefix_len());
        self.entries.insert(pos, (cidr, tag));
    }

    /// Longest-prefix match.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&T> {
        self.entries
            .iter()
            .find(|(c, _)| c.contains(ip))
            .map(|(_, t)| t)
    }

    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.lookup(ip).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &(Cidr, T)> {
        self.entries.iter()
    }
}

impl<T: Clone> Default for IpRangeTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of public IPs with random allocation — the VM public-IP model.
///
/// Allocation picks uniformly among free addresses, which is exactly why a
/// targeted takeover of one *specific* released address requires an expected
/// `free_count` allocate/release cycles (the economics the paper's attackers
/// decline, §4.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpPool {
    blocks: Vec<Cidr>,
    total: u64,
    allocated: HashSet<Ipv4Addr>,
}

impl IpPool {
    pub fn new(blocks: Vec<Cidr>) -> Self {
        let total = blocks.iter().map(|b| b.size()).sum();
        IpPool {
            blocks,
            total,
            allocated: HashSet::new(),
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn allocated_count(&self) -> u64 {
        self.allocated.len() as u64
    }

    pub fn free_count(&self) -> u64 {
        self.total - self.allocated.len() as u64
    }

    pub fn is_allocated(&self, ip: Ipv4Addr) -> bool {
        self.allocated.contains(&ip)
    }

    pub fn in_pool(&self, ip: Ipv4Addr) -> bool {
        self.blocks.iter().any(|b| b.contains(ip))
    }

    /// Allocate a uniformly random free address. Returns `None` if exhausted.
    pub fn allocate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Ipv4Addr> {
        if self.free_count() == 0 {
            return None;
        }
        // Rejection sampling over the blocks; the pools are never near-full
        // in the simulation so this terminates fast, but guard anyway.
        for _ in 0..10_000 {
            let block = self.blocks.choose(rng)?;
            let ip = block.nth(rng.gen_range(0..block.size()));
            if !self.allocated.contains(&ip) {
                self.allocated.insert(ip);
                return Some(ip);
            }
        }
        // Fall back to a scan (deterministic, only hit when nearly full).
        for block in &self.blocks {
            for i in 0..block.size() {
                let ip = block.nth(i);
                if !self.allocated.contains(&ip) {
                    self.allocated.insert(ip);
                    return Some(ip);
                }
            }
        }
        None
    }

    /// Release an address back to the pool. Returns false if it was not
    /// allocated.
    pub fn release(&mut self, ip: Ipv4Addr) -> bool {
        self.allocated.remove(&ip)
    }

    /// The attacker primitive: try to obtain `target` by allocating. One
    /// attempt = one allocation; returns `Ok(attempts)` on success within
    /// `max_attempts`, `Err(attempts)` on giving up. All intermediate
    /// allocations are released (as a real attacker would, to avoid cost).
    pub fn lottery_for<R: Rng + ?Sized>(
        &mut self,
        target: Ipv4Addr,
        max_attempts: u64,
        rng: &mut R,
    ) -> Result<u64, u64> {
        if self.is_allocated(target) || !self.in_pool(target) {
            return Err(0);
        }
        let mut held: Vec<Ipv4Addr> = Vec::new();
        let mut attempts = 0;
        let mut won = false;
        while attempts < max_attempts {
            attempts += 1;
            match self.allocate(rng) {
                Some(ip) if ip == target => {
                    won = true;
                    break;
                }
                Some(ip) => held.push(ip),
                None => break,
            }
        }
        for ip in held {
            self.release(ip);
        }
        if won {
            Ok(attempts)
        } else {
            Err(attempts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cidr_contains() {
        let c: Cidr = "20.40.0.0/16".parse().unwrap();
        assert!(c.contains("20.40.1.2".parse().unwrap()));
        assert!(!c.contains("20.41.0.0".parse().unwrap()));
        assert_eq!(c.size(), 65_536);
    }

    #[test]
    fn cidr_normalizes_base() {
        let c = Cidr::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(c.base(), "10.1.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(c.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn cidr_parse_errors() {
        assert!("10.0.0.0".parse::<Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("10.0.0.x/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn cidr_covers() {
        let big: Cidr = "10.0.0.0/8".parse().unwrap();
        let small: Cidr = "10.1.0.0/16".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
    }

    #[test]
    fn range_table_longest_match() {
        let mut t = IpRangeTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), "aws");
        t.insert("10.1.0.0/16".parse().unwrap(), "aws-s3");
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()), Some(&"aws-s3"));
        assert_eq!(t.lookup("10.2.0.1".parse().unwrap()), Some(&"aws"));
        assert_eq!(t.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn pool_allocate_release() {
        let mut pool = IpPool::new(vec!["192.0.2.0/28".parse().unwrap()]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pool.total(), 16);
        let ip = pool.allocate(&mut rng).unwrap();
        assert!(pool.is_allocated(ip));
        assert_eq!(pool.free_count(), 15);
        assert!(pool.release(ip));
        assert!(!pool.release(ip));
        assert_eq!(pool.free_count(), 16);
    }

    #[test]
    fn pool_exhaustion() {
        let mut pool = IpPool::new(vec!["192.0.2.0/30".parse().unwrap()]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4 {
            assert!(pool.allocate(&mut rng).is_some());
        }
        assert!(pool.allocate(&mut rng).is_none());
    }

    #[test]
    fn lottery_expected_cost_scales_with_pool() {
        // In a pool of 256 with the target free, expected attempts ~ pool
        // size (sampling with replacement released back each round).
        let mut pool = IpPool::new(vec!["198.51.100.0/24".parse().unwrap()]);
        let target: Ipv4Addr = "198.51.100.77".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total_attempts = 0u64;
        let mut wins = 0;
        for _ in 0..20 {
            match pool.lottery_for(target, 10_000, &mut rng) {
                Ok(n) => {
                    wins += 1;
                    total_attempts += n;
                    pool.release(target);
                }
                Err(n) => total_attempts += n,
            }
        }
        assert_eq!(wins, 20);
        let mean = total_attempts as f64 / 20.0;
        // Uniform over 256 free addresses => geometric with p≈1/256 but the
        // attacker *holds* non-target allocations within a round, improving
        // odds as the round progresses; expected ≈ (N+1)/2 ≈ 128.
        assert!(mean > 40.0 && mean < 400.0, "mean attempts = {mean}");
    }

    #[test]
    fn lottery_refuses_allocated_target() {
        let mut pool = IpPool::new(vec!["192.0.2.0/28".parse().unwrap()]);
        let mut rng = StdRng::seed_from_u64(4);
        let ip = pool.allocate(&mut rng).unwrap();
        assert_eq!(pool.lottery_for(ip, 100, &mut rng), Err(0));
    }

    #[test]
    fn lottery_gives_up() {
        // Huge pool, tiny budget: must fail and must not leak allocations.
        let mut pool = IpPool::new(vec!["10.0.0.0/16".parse().unwrap()]);
        let target: Ipv4Addr = "10.0.77.77".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let before = pool.allocated_count();
        let r = pool.lottery_for(target, 10, &mut rng);
        assert!(matches!(r, Err(10)) || r.is_ok());
        if r.is_err() {
            assert_eq!(pool.allocated_count(), before);
        }
    }
}
