//! Cloud resources and their lifecycle.

use crate::content::SiteContent;
use crate::provider::ServiceId;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

/// Opaque resource handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u64);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res-{}", self.0)
    }
}

/// A customer account at a provider. The study only needs to distinguish
/// legitimate owners from attacker accounts, and attacker accounts from each
/// other (for campaign attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccountId {
    /// A legitimate organization, by worldgen org index.
    Org(u32),
    /// An attacker campaign, by campaign index.
    Attacker(u32),
}

impl AccountId {
    pub fn is_attacker(&self) -> bool {
        matches!(self, AccountId::Attacker(_))
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceState {
    Active,
    /// Released at the given time; the identity (name or IP) returns to the
    /// available pool.
    Released {
        at: SimTime,
    },
}

/// A provisioned cloud resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resource {
    pub id: ResourceId,
    pub service: ServiceId,
    /// The chosen (or generated) resource name; `None` for IP-pool services.
    pub name: Option<String>,
    pub region: Option<String>,
    pub owner: AccountId,
    pub state: ResourceState,
    pub created: SimTime,
    /// The provider-generated FQDN (`<name>.<suffix>`); `None` for IP-pool
    /// services, which are addressed by IP only.
    pub generated_fqdn: Option<Name>,
    /// Serving IP: the shared front end for virtual-hosted services, or the
    /// dedicated pool address for IP services.
    pub ip: Ipv4Addr,
    /// Custom domains routed to this resource (virtual-hosting aliases).
    pub custom_domains: BTreeSet<Name>,
    /// Hosts for which a valid TLS certificate is configured. The generated
    /// FQDN is always covered (providers ship wildcard platform certs);
    /// custom domains appear here only after explicit issuance (§5.6).
    pub tls_hosts: BTreeSet<Name>,
    pub content: SiteContent,
}

impl Resource {
    pub fn is_active(&self) -> bool {
        matches!(self.state, ResourceState::Active)
    }

    pub fn released_at(&self) -> Option<SimTime> {
        match self.state {
            ResourceState::Active => None,
            ResourceState::Released { at } => Some(at),
        }
    }

    /// Does this resource answer HTTPS for `host`?
    pub fn serves_https_for(&self, host: &Name) -> bool {
        if let Some(g) = &self.generated_fqdn {
            if host == g {
                return true;
            }
        }
        self.tls_hosts.contains(host)
    }

    /// All hostnames that route to this resource.
    pub fn hostnames(&self) -> impl Iterator<Item = &Name> {
        self.generated_fqdn.iter().chain(self.custom_domains.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Resource {
        Resource {
            id: ResourceId(1),
            service: ServiceId::AzureWebApp,
            name: Some("contoso".into()),
            region: None,
            owner: AccountId::Org(7),
            state: ResourceState::Active,
            created: SimTime(10),
            generated_fqdn: Some("contoso.azurewebsites.net".parse().unwrap()),
            ip: "20.40.0.5".parse().unwrap(),
            custom_domains: BTreeSet::new(),
            tls_hosts: BTreeSet::new(),
            content: SiteContent::placeholder("x"),
        }
    }

    #[test]
    fn lifecycle_accessors() {
        let mut r = sample();
        assert!(r.is_active());
        assert_eq!(r.released_at(), None);
        r.state = ResourceState::Released { at: SimTime(99) };
        assert!(!r.is_active());
        assert_eq!(r.released_at(), Some(SimTime(99)));
    }

    #[test]
    fn https_covers_generated_but_not_custom_by_default() {
        let mut r = sample();
        let custom: Name = "shop.contoso.com".parse().unwrap();
        r.custom_domains.insert(custom.clone());
        assert!(r.serves_https_for(&"contoso.azurewebsites.net".parse().unwrap()));
        assert!(!r.serves_https_for(&custom));
        r.tls_hosts.insert(custom.clone());
        assert!(r.serves_https_for(&custom));
    }

    #[test]
    fn hostnames_iterates_all() {
        let mut r = sample();
        r.custom_domains.insert("a.contoso.com".parse().unwrap());
        r.custom_domains.insert("b.contoso.com".parse().unwrap());
        assert_eq!(r.hostnames().count(), 3);
    }

    #[test]
    fn account_kinds() {
        assert!(AccountId::Attacker(3).is_attacker());
        assert!(!AccountId::Org(3).is_attacker());
    }
}
