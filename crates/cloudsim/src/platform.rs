//! The cloud platform: registration, release, re-registration, routing.
//!
//! This module is where the paper's core attack becomes mechanically
//! possible. [`CloudPlatform::register`] enforces only *name availability* —
//! exactly like the real services — so once a legitimate owner releases
//! `contoso.azurewebsites.net`, any account (including an attacker's) may
//! register the name `contoso` again and inherit all traffic from DNS
//! records that still point at the generated FQDN.
//!
//! Mitigation knobs ablated by the benchmark harness:
//! - [`PlatformConfig::reregistration_cooldown_days`] — §7's "disallow the
//!   re-registration of recently released resource names",
//! - [`PlatformConfig::randomize_freetext_names`] — §4.3's "randomized
//!   identifiers" mitigation (turns every Freetext service into RandomName).

use crate::content::SiteContent;
use crate::ip::{IpPool, IpRangeTable};
use crate::provider::{spec, NamingModel, ServiceId, ServiceSpec, CATALOG};
use crate::resource::{AccountId, Resource, ResourceId, ResourceState};
use dns::{Name, RecordData, ResourceRecord, Zone, ZoneSet};
use httpsim::{Endpoint, Request, Response, StatusCode};
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::splitmix64;
use simcore::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Platform-wide policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Days a released freetext name stays unavailable (0 = immediate
    /// re-registration, the real-world default the paper exploits).
    pub reregistration_cooldown_days: i32,
    /// Mitigation ablation: generate random names even for Freetext services.
    pub randomize_freetext_names: bool,
    /// Shared virtual-hosting front ends per service.
    pub front_ends_per_service: u32,
    /// Percent of front-end IPs answering ICMP echo when the service spec
    /// says ICMP is filtered (models inconsistent edge configurations; tuned
    /// so the §2 liveness comparison lands near the paper's 72%).
    pub icmp_unfiltered_percent: u8,
    /// Percent of front-end IPs with TCP 80/443 reachable (paper: ~93%).
    pub tcp_open_percent: u8,
    /// TTL for platform-generated DNS records.
    pub record_ttl: u32,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            reregistration_cooldown_days: 0,
            randomize_freetext_names: false,
            front_ends_per_service: 24,
            icmp_unfiltered_percent: 40,
            tcp_open_percent: 93,
            record_ttl: 300,
        }
    }
}

/// Registration failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterError {
    /// The name is currently held by an active resource.
    NameTaken,
    /// The name was recently released and is under the cooldown mitigation.
    NameOnCooldown { until: SimTime },
    /// Freetext services require a requested name.
    NameRequired,
    /// REGION-bearing services require a region.
    RegionRequired,
    /// Region not offered by the service.
    UnknownRegion,
    /// The requested name failed DNS label validation.
    InvalidName,
    /// IP pool exhausted.
    PoolExhausted,
}

type NameKey = (ServiceId, String, Option<String>);

/// The simulated multi-provider cloud.
pub struct CloudPlatform {
    cfg: PlatformConfig,
    resources: HashMap<ResourceId, Resource>,
    next_id: u64,
    active_names: HashMap<NameKey, ResourceId>,
    cooldowns: HashMap<NameKey, SimTime>,
    /// Host → active resource (generated FQDNs and bound custom domains).
    host_routes: HashMap<Name, ResourceId>,
    /// Dedicated IP → active resource (IpPool services).
    ip_routes: HashMap<Ipv4Addr, ResourceId>,
    front_ends: HashMap<ServiceId, Vec<Ipv4Addr>>,
    ip_index: IpRangeTable<ServiceId>,
    pools: HashMap<ServiceId, IpPool>,
    /// Authoritative zones for the service suffixes (azurewebsites.net, …).
    zones: ZoneSet,
    /// Lifetime counters (for Table 2's "# Monitored" style reporting).
    pub registrations: HashMap<ServiceId, u64>,
}

impl CloudPlatform {
    pub fn new(cfg: PlatformConfig) -> Self {
        let mut front_ends = HashMap::new();
        let mut pools = HashMap::new();
        let mut zones = ZoneSet::new();
        for s in CATALOG {
            match s.naming {
                NamingModel::Freetext | NamingModel::RandomName => {
                    let block: crate::ip::Cidr = s.ranges[0].parse().unwrap();
                    let n = cfg.front_ends_per_service.min(block.size() as u32) as u64;
                    let ips: Vec<Ipv4Addr> = (0..n).map(|i| block.nth(i + 1)).collect();
                    front_ends.insert(s.id, ips);
                    if let Some(zone_origin) = s.suffix_zone() {
                        if zones.get(&zone_origin).is_none() {
                            zones.insert(Zone::new(zone_origin));
                        }
                    }
                }
                NamingModel::IpPool => {
                    let blocks = s
                        .ranges
                        .iter()
                        .map(|r| r.parse().unwrap())
                        .collect::<Vec<_>>();
                    pools.insert(s.id, IpPool::new(blocks));
                }
            }
        }
        CloudPlatform {
            cfg,
            resources: HashMap::new(),
            next_id: 1,
            active_names: HashMap::new(),
            cooldowns: HashMap::new(),
            host_routes: HashMap::new(),
            ip_routes: HashMap::new(),
            front_ends,
            ip_index: crate::provider::cloud_ip_ranges(),
            pools,
            zones,
            registrations: HashMap::new(),
        }
    }

    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The platform's authoritative zones (to be composed into the world's
    /// DNS authority).
    pub fn zones(&self) -> &ZoneSet {
        &self.zones
    }

    /// Is a freetext name currently available for registration? This is the
    /// attacker's (free, unauthenticated) availability check.
    pub fn name_available(
        &self,
        service: ServiceId,
        name: &str,
        region: Option<&str>,
        now: SimTime,
    ) -> bool {
        let key = (
            service,
            name.to_ascii_lowercase(),
            region.map(str::to_string),
        );
        if self.active_names.contains_key(&key) {
            return false;
        }
        if let Some(&until) = self.cooldowns.get(&key) {
            if until > now {
                return false;
            }
        }
        true
    }

    /// Register a resource.
    pub fn register<R: Rng + ?Sized>(
        &mut self,
        service: ServiceId,
        requested_name: Option<&str>,
        region: Option<&str>,
        owner: AccountId,
        now: SimTime,
        rng: &mut R,
    ) -> Result<ResourceId, RegisterError> {
        let s: &ServiceSpec = spec(service);
        if s.needs_region() {
            let r = region.ok_or(RegisterError::RegionRequired)?;
            if !s.regions.contains(&r) {
                return Err(RegisterError::UnknownRegion);
            }
        }
        let id = ResourceId(self.next_id);
        let resource = match s.naming {
            NamingModel::IpPool => {
                let pool = self.pools.get_mut(&service).expect("pool exists");
                let ip = pool.allocate(rng).ok_or(RegisterError::PoolExhausted)?;
                Resource {
                    id,
                    service,
                    name: None,
                    region: region.map(str::to_string),
                    owner,
                    state: ResourceState::Active,
                    created: now,
                    generated_fqdn: None,
                    ip,
                    custom_domains: Default::default(),
                    tls_hosts: Default::default(),
                    content: SiteContent::default(),
                }
            }
            NamingModel::Freetext | NamingModel::RandomName => {
                let effective_random =
                    s.naming == NamingModel::RandomName || self.cfg.randomize_freetext_names;
                let name = if effective_random {
                    // 16 base-36 chars: unguessable, collision-free in practice.
                    let mut n = String::with_capacity(16);
                    for _ in 0..16 {
                        let c = b"abcdefghijklmnopqrstuvwxyz0123456789"[rng.gen_range(0..36usize)];
                        n.push(c as char);
                    }
                    n
                } else {
                    requested_name
                        .ok_or(RegisterError::NameRequired)?
                        .to_ascii_lowercase()
                };
                if name.is_empty()
                    || name.len() > 63
                    || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
                {
                    return Err(RegisterError::InvalidName);
                }
                let key = (service, name.clone(), region.map(str::to_string));
                if self.active_names.contains_key(&key) {
                    return Err(RegisterError::NameTaken);
                }
                if let Some(&until) = self.cooldowns.get(&key) {
                    if until > now {
                        return Err(RegisterError::NameOnCooldown { until });
                    }
                }
                let fqdn = s
                    .generated_fqdn(&name, region)
                    .map_err(|_| RegisterError::InvalidName)?;
                let fes = &self.front_ends[&service];
                let ip = fes[(splitmix64(hash_str(&name)) % fes.len() as u64) as usize];
                self.active_names.insert(key, id);
                Resource {
                    id,
                    service,
                    name: Some(name),
                    region: region.map(str::to_string),
                    owner,
                    state: ResourceState::Active,
                    created: now,
                    generated_fqdn: Some(fqdn),
                    ip,
                    custom_domains: Default::default(),
                    tls_hosts: Default::default(),
                    content: SiteContent::default(),
                }
            }
        };
        self.next_id += 1;
        if let Some(fqdn) = &resource.generated_fqdn {
            self.host_routes.insert(fqdn.clone(), id);
            // Publish the A record in the platform zone.
            if let Some(z) = self.zones.find_zone_mut(fqdn) {
                z.add(ResourceRecord::new(
                    fqdn.clone(),
                    self.cfg.record_ttl,
                    RecordData::A(resource.ip),
                ));
            }
        } else {
            self.ip_routes.insert(resource.ip, id);
        }
        *self.registrations.entry(service).or_insert(0) += 1;
        self.resources.insert(id, resource);
        Ok(id)
    }

    /// Release a resource: its name/IP becomes available again, routing and
    /// platform DNS entries are removed. Idempotent.
    pub fn release(&mut self, id: ResourceId, now: SimTime) {
        let Some(res) = self.resources.get_mut(&id) else {
            return;
        };
        if !res.is_active() {
            return;
        }
        res.state = ResourceState::Released { at: now };
        let res = self.resources.get(&id).unwrap().clone();
        if let Some(name) = &res.name {
            let key = (res.service, name.clone(), res.region.clone());
            self.active_names.remove(&key);
            if self.cfg.reregistration_cooldown_days > 0 {
                self.cooldowns
                    .insert(key, now + self.cfg.reregistration_cooldown_days);
            }
        }
        if let Some(fqdn) = &res.generated_fqdn {
            self.host_routes.remove(fqdn);
            if let Some(z) = self.zones.find_zone_mut(fqdn) {
                z.remove_name(fqdn);
            }
        } else {
            self.ip_routes.remove(&res.ip);
            if let Some(pool) = self.pools.get_mut(&res.service) {
                pool.release(res.ip);
            }
        }
        for host in res.custom_domains.iter() {
            self.host_routes.remove(host);
        }
    }

    /// Bind a custom domain to an active resource's virtual hosting.
    pub fn bind_custom_domain(&mut self, id: ResourceId, host: Name) -> bool {
        let Some(res) = self.resources.get_mut(&id) else {
            return false;
        };
        if !res.is_active() {
            return false;
        }
        res.custom_domains.insert(host.clone());
        self.host_routes.insert(host, id);
        true
    }

    /// Configure a valid certificate for `host` on the resource (reachable
    /// via HTTPS afterwards). The certificate object itself lives in certsim;
    /// the platform only needs the binding.
    pub fn add_tls_host(&mut self, id: ResourceId, host: Name) -> bool {
        match self.resources.get_mut(&id) {
            Some(res) if res.is_active() => {
                res.tls_hosts.insert(host);
                true
            }
            _ => false,
        }
    }

    /// Replace the site content of a resource.
    pub fn set_content(&mut self, id: ResourceId, content: SiteContent) -> bool {
        match self.resources.get_mut(&id) {
            Some(res) if res.is_active() => {
                res.content = content;
                true
            }
            _ => false,
        }
    }

    pub fn resource(&self, id: ResourceId) -> Option<&Resource> {
        self.resources.get(&id)
    }

    pub fn resource_by_host(&self, host: &Name) -> Option<&Resource> {
        self.host_routes
            .get(host)
            .and_then(|id| self.resources.get(id))
    }

    pub fn resource_by_ip(&self, ip: Ipv4Addr) -> Option<&Resource> {
        self.ip_routes
            .get(&ip)
            .and_then(|id| self.resources.get(id))
    }

    pub fn iter(&self) -> impl Iterator<Item = &Resource> {
        self.resources.values()
    }

    pub fn active_count(&self) -> usize {
        self.resources.values().filter(|r| r.is_active()).count()
    }

    /// Which service's range an IP belongs to.
    pub fn service_of_ip(&self, ip: Ipv4Addr) -> Option<ServiceId> {
        self.ip_index.lookup(ip).copied()
    }

    /// The IP pool of an IpPool service (attacker economics experiments).
    pub fn pool_mut(&mut self, service: ServiceId) -> Option<&mut IpPool> {
        self.pools.get_mut(&service)
    }

    pub fn pool(&self, service: ServiceId) -> Option<&IpPool> {
        self.pools.get(&service)
    }

    /// Provider default page served when a front end receives a Host header
    /// it cannot route — the fingerprint takeover scanners look for.
    fn default_error_page(service: ServiceId) -> Response {
        let body = match spec(service).provider {
            crate::provider::ProviderId::Azure => {
                "<html><head><title>404 Web Site not found</title></head><body>\
                 <h1>404 Web Site not found.</h1>\
                 <p>The web app you have attempted to reach is not available.</p></body></html>"
            }
            crate::provider::ProviderId::Aws => {
                "<html><head><title>404 Not Found</title></head><body>\
                 <h1>404 Not Found</h1><ul><li>Code: NoSuchBucket</li>\
                 <li>Message: The specified bucket does not exist</li></ul></body></html>"
            }
            crate::provider::ProviderId::Heroku => {
                "<html><head><title>No such app</title></head><body>\
                 <h1>There's nothing here, yet.</h1></body></html>"
            }
            _ => {
                "<html><head><title>Not Found</title></head><body>\
                 <h1>Site not found</h1></body></html>"
            }
        };
        let mut r = Response::new(StatusCode::NOT_FOUND);
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r.body = body.as_bytes().to_vec();
        r
    }

    fn is_front_end(&self, ip: Ipv4Addr) -> Option<ServiceId> {
        let service = self.ip_index.lookup(ip).copied()?;
        self.front_ends
            .get(&service)
            .map(|fes| fes.contains(&ip))
            .unwrap_or(false)
            .then_some(service)
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Endpoint for CloudPlatform {
    fn icmp_responds(&self, ip: Ipv4Addr, _now: SimTime) -> bool {
        if let Some(service) = self.is_front_end(ip) {
            if spec(service).icmp_open {
                return true;
            }
            // Inconsistent edge configurations: a deterministic per-IP coin.
            return splitmix64(u32::from(ip) as u64) % 100
                < self.cfg.icmp_unfiltered_percent as u64;
        }
        // Dedicated VM IPs answer ICMP while allocated.
        self.ip_routes.contains_key(&ip)
    }

    fn tcp_open(&self, ip: Ipv4Addr, port: u16, _now: SimTime) -> bool {
        if port != 80 && port != 443 {
            return false;
        }
        if let Some(_service) = self.is_front_end(ip) {
            return splitmix64(u32::from(ip) as u64 ^ 0xDEAD) % 100
                < self.cfg.tcp_open_percent as u64;
        }
        self.ip_routes.contains_key(&ip)
    }

    fn http_serve(&self, ip: Ipv4Addr, request: &Request, _now: SimTime) -> Option<Response> {
        // Dedicated-IP resources serve regardless of Host.
        if let Some(res) = self.resource_by_ip(ip) {
            if request.https {
                let host: Name = request.host()?.parse().ok()?;
                if !res.serves_https_for(&host) {
                    return None; // TLS handshake failure
                }
            }
            return Some(res.content.serve(request));
        }
        // Virtual-hosting front ends route on the Host header. (The
        // tcp_open() percentage models *probe* observations of §2, not the
        // data path: front ends serve HTTP regardless.)
        let service = self.is_front_end(ip)?;
        let Some(host) = request.host().and_then(|h| Name::parse(h).ok()) else {
            return Some(Self::default_error_page(service));
        };
        match self
            .host_routes
            .get(&host)
            .and_then(|id| self.resources.get(id))
        {
            Some(res) if res.service == service => {
                if request.https && !res.serves_https_for(&host) {
                    return None;
                }
                Some(res.content.serve(request))
            }
            _ => {
                if request.https {
                    // No certificate for an unknown host: handshake fails.
                    return None;
                }
                Some(Self::default_error_page(service))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn platform() -> CloudPlatform {
        CloudPlatform::new(PlatformConfig::default())
    }

    #[test]
    fn freetext_register_release_reregister() {
        let mut p = platform();
        let mut r = rng();
        let t0 = SimTime(0);
        let id = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Org(1),
                t0,
                &mut r,
            )
            .unwrap();
        // Name now taken.
        assert_eq!(
            p.register(
                ServiceId::AzureWebApp,
                Some("Contoso"), // case-insensitive
                None,
                AccountId::Org(2),
                t0,
                &mut r
            ),
            Err(RegisterError::NameTaken)
        );
        assert!(!p.name_available(ServiceId::AzureWebApp, "contoso", None, t0));
        // Release frees it — the dangling-record precondition.
        p.release(id, SimTime(100));
        assert!(p.name_available(ServiceId::AzureWebApp, "contoso", None, SimTime(100)));
        // Attacker re-registers the exact name (deterministic takeover).
        let hijack = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Attacker(0),
                SimTime(101),
                &mut r,
            )
            .unwrap();
        let res = p.resource(hijack).unwrap();
        assert_eq!(
            res.generated_fqdn.as_ref().unwrap().to_string(),
            "contoso.azurewebsites.net"
        );
        assert!(res.owner.is_attacker());
    }

    #[test]
    fn cooldown_mitigation_blocks_reregistration() {
        let mut p = CloudPlatform::new(PlatformConfig {
            reregistration_cooldown_days: 30,
            ..Default::default()
        });
        let mut r = rng();
        let id = p
            .register(
                ServiceId::HerokuApp,
                Some("shop"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        p.release(id, SimTime(10));
        assert_eq!(
            p.register(
                ServiceId::HerokuApp,
                Some("shop"),
                None,
                AccountId::Attacker(0),
                SimTime(20),
                &mut r
            ),
            Err(RegisterError::NameOnCooldown { until: SimTime(40) })
        );
        // After the cooldown it opens again.
        assert!(p
            .register(
                ServiceId::HerokuApp,
                Some("shop"),
                None,
                AccountId::Attacker(0),
                SimTime(41),
                &mut r
            )
            .is_ok());
    }

    #[test]
    fn randomize_names_mitigation() {
        let mut p = CloudPlatform::new(PlatformConfig {
            randomize_freetext_names: true,
            ..Default::default()
        });
        let mut r = rng();
        let id = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        let fqdn = p.resource(id).unwrap().generated_fqdn.clone().unwrap();
        // The requested name is ignored; an unguessable one is minted.
        assert!(!fqdn.to_string().starts_with("contoso."));
        p.release(id, SimTime(1));
        // Re-registering mints a *different* name: the dangling record can
        // never be recaptured.
        let id2 = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Attacker(0),
                SimTime(2),
                &mut r,
            )
            .unwrap();
        assert_ne!(p.resource(id2).unwrap().generated_fqdn, Some(fqdn));
    }

    #[test]
    fn region_validation() {
        let mut p = platform();
        let mut r = rng();
        assert_eq!(
            p.register(
                ServiceId::AwsS3Website,
                Some("assets"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r
            ),
            Err(RegisterError::RegionRequired)
        );
        assert_eq!(
            p.register(
                ServiceId::AwsS3Website,
                Some("assets"),
                Some("mars-north-1"),
                AccountId::Org(1),
                SimTime(0),
                &mut r
            ),
            Err(RegisterError::UnknownRegion)
        );
        let id = p
            .register(
                ServiceId::AwsS3Website,
                Some("assets"),
                Some("eu-west-1"),
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        assert_eq!(
            p.resource(id)
                .unwrap()
                .generated_fqdn
                .as_ref()
                .unwrap()
                .to_string(),
            "assets.s3-website.eu-west-1.amazonaws.com"
        );
        // Same name in a different region is a different resource.
        assert!(p
            .register(
                ServiceId::AwsS3Website,
                Some("assets"),
                Some("us-east-1"),
                AccountId::Org(2),
                SimTime(0),
                &mut r
            )
            .is_ok());
    }

    #[test]
    fn invalid_names_rejected() {
        let mut p = platform();
        let mut r = rng();
        for bad in ["", "has space", "under_score!", &"x".repeat(64)] {
            assert_eq!(
                p.register(
                    ServiceId::AzureWebApp,
                    Some(bad),
                    None,
                    AccountId::Org(1),
                    SimTime(0),
                    &mut r
                ),
                Err(RegisterError::InvalidName),
                "{bad:?}"
            );
        }
        assert_eq!(
            p.register(
                ServiceId::AzureWebApp,
                None,
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r
            ),
            Err(RegisterError::NameRequired)
        );
    }

    #[test]
    fn platform_zone_records_follow_lifecycle() {
        let mut p = platform();
        let mut r = rng();
        let fqdn: Name = "contoso.azurewebsites.net".parse().unwrap();
        let id = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        let z = p.zones().find_zone(&fqdn).unwrap();
        assert_eq!(z.records_at(&fqdn).len(), 1);
        p.release(id, SimTime(1));
        let z = p.zones().find_zone(&fqdn).unwrap();
        assert!(z.records_at(&fqdn).is_empty());
    }

    #[test]
    fn ip_pool_register_release() {
        let mut p = platform();
        let mut r = rng();
        let id = p
            .register(
                ServiceId::AwsEc2PublicIp,
                None,
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        let ip = p.resource(id).unwrap().ip;
        assert!(p.pool(ServiceId::AwsEc2PublicIp).unwrap().is_allocated(ip));
        assert!(p.resource_by_ip(ip).is_some());
        p.release(id, SimTime(5));
        assert!(!p.pool(ServiceId::AwsEc2PublicIp).unwrap().is_allocated(ip));
        assert!(p.resource_by_ip(ip).is_none());
    }

    #[test]
    fn vhost_routing_and_default_page() {
        let mut p = platform();
        let mut r = rng();
        let id = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        p.set_content(id, SiteContent::placeholder("Contoso Shop"));
        let custom: Name = "shop.contoso.com".parse().unwrap();
        p.bind_custom_domain(id, custom.clone());
        let ip = p.resource(id).unwrap().ip;
        let now = SimTime(0);
        // Generated FQDN routes.
        let resp = p
            .http_serve(ip, &Request::get("contoso.azurewebsites.net", "/"), now)
            .unwrap();
        assert!(resp.body_text().contains("Contoso Shop"));
        // Custom domain routes to the same content.
        let resp = p
            .http_serve(ip, &Request::get("shop.contoso.com", "/"), now)
            .unwrap();
        assert!(resp.body_text().contains("Contoso Shop"));
        // Unknown host gets the provider 404 fingerprint.
        let resp = p
            .http_serve(ip, &Request::get("gone.azurewebsites.net", "/"), now)
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert!(resp.body_text().contains("not available"));
    }

    #[test]
    fn https_requires_cert_binding() {
        let mut p = platform();
        let mut r = rng();
        let id = p
            .register(
                ServiceId::AzureWebApp,
                Some("contoso"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        let custom: Name = "shop.contoso.com".parse().unwrap();
        p.bind_custom_domain(id, custom.clone());
        let ip = p.resource(id).unwrap().ip;
        let now = SimTime(0);
        // Platform cert covers the generated name out of the box.
        assert!(p
            .http_serve(
                ip,
                &Request::get_https("contoso.azurewebsites.net", "/"),
                now
            )
            .is_some());
        // Custom domain over HTTPS fails until a cert is configured.
        assert!(p
            .http_serve(ip, &Request::get_https("shop.contoso.com", "/"), now)
            .is_none());
        p.add_tls_host(id, custom.clone());
        assert!(p
            .http_serve(ip, &Request::get_https("shop.contoso.com", "/"), now)
            .is_some());
    }

    #[test]
    fn released_resource_stops_serving() {
        let mut p = platform();
        let mut r = rng();
        let id = p
            .register(
                ServiceId::HerokuApp,
                Some("app1"),
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        let ip = p.resource(id).unwrap().ip;
        p.release(id, SimTime(1));
        let resp = p
            .http_serve(ip, &Request::get("app1.herokuapp.com", "/"), SimTime(2))
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert!(resp.body_text().contains("nothing here"));
    }

    #[test]
    fn dedicated_ip_serves_any_host() {
        let mut p = platform();
        let mut r = rng();
        let id = p
            .register(
                ServiceId::AwsEc2PublicIp,
                None,
                None,
                AccountId::Org(1),
                SimTime(0),
                &mut r,
            )
            .unwrap();
        p.set_content(id, SiteContent::placeholder("VM site"));
        let ip = p.resource(id).unwrap().ip;
        let resp = p
            .http_serve(ip, &Request::get("www.anything.com", "/"), SimTime(0))
            .unwrap();
        assert!(resp.body_text().contains("VM site"));
        assert!(p.icmp_responds(ip, SimTime(0)));
        assert!(p.tcp_open(ip, 80, SimTime(0)));
        assert!(!p.tcp_open(ip, 22, SimTime(0)));
    }

    #[test]
    fn service_of_ip_classification() {
        let p = platform();
        assert_eq!(
            p.service_of_ip("20.40.0.1".parse().unwrap()),
            Some(ServiceId::AzureWebApp)
        );
        assert_eq!(p.service_of_ip("9.9.9.9".parse().unwrap()), None);
    }
}
