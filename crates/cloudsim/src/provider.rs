//! Provider and service catalog.
//!
//! One [`ServiceSpec`] per row of the paper's Tables 2/3, each carrying the
//! naming model (§4.3), the DNS record type customers point at it, the
//! attacker-capability class (Table 4), and the provider IP ranges used by
//! Algorithm 1's `cloud_IPs` check.

use crate::ip::Cidr;
use dns::Name;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cloud providers in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProviderId {
    Azure,
    Aws,
    Heroku,
    Pantheon,
    Netlify,
    GoogleCloud,
    Cloudflare,
    /// §7's prediction: freetext blog subdomains outside the cloud market
    /// proper ("we expect a large number of hijacks of
    /// [freetext].wordpress.com subdomains").
    WordPressCom,
}

impl ProviderId {
    pub fn as_str(self) -> &'static str {
        match self {
            ProviderId::Azure => "Azure",
            ProviderId::Aws => "AWS",
            ProviderId::Heroku => "Heroku",
            ProviderId::Pantheon => "Pantheon",
            ProviderId::Netlify => "Netlify",
            ProviderId::GoogleCloud => "Google Cloud",
            ProviderId::Cloudflare => "Cloudflare",
            ProviderId::WordPressCom => "WordPress.com",
        }
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service identity — one per monitored service row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceId {
    AzureWebApp,
    AzureTrafficManager,
    AzureCloudappLegacy,
    AzureEdge,
    AzureCloudappRegional,
    AzureWebAppSip,
    AwsS3Website,
    AwsElasticBeanstalk,
    HerokuApp,
    PantheonSite,
    NetlifyApp,
    GoogleAppEngine,
    CloudflarePages,
    /// EC2 dedicated public IPs (A records, random pool).
    AwsEc2PublicIp,
    /// Azure VM dedicated public IPs (A records, random pool).
    AzureVmPublicIp,
    /// §7 extension: WordPress.com freetext blog subdomains.
    WordPressCom,
}

impl ServiceId {
    pub fn all() -> &'static [ServiceId] {
        &[
            ServiceId::AzureWebApp,
            ServiceId::AzureTrafficManager,
            ServiceId::AzureCloudappLegacy,
            ServiceId::AzureEdge,
            ServiceId::AzureCloudappRegional,
            ServiceId::AzureWebAppSip,
            ServiceId::AwsS3Website,
            ServiceId::AwsElasticBeanstalk,
            ServiceId::HerokuApp,
            ServiceId::PantheonSite,
            ServiceId::NetlifyApp,
            ServiceId::GoogleAppEngine,
            ServiceId::CloudflarePages,
            ServiceId::AwsEc2PublicIp,
            ServiceId::AzureVmPublicIp,
            ServiceId::WordPressCom,
        ]
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(spec(*self).display_name)
    }
}

/// What the service functionally is (Table 3's "Function" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceFunction {
    WebApp,
    TrafficRouter,
    Vm,
    Cdn,
    StaticHosting,
    Orchestration,
    Cms,
}

impl ServiceFunction {
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceFunction::WebApp => "Web App",
            ServiceFunction::TrafficRouter => "Traffic Router",
            ServiceFunction::Vm => "VM",
            ServiceFunction::Cdn => "CDN",
            ServiceFunction::StaticHosting => "Static Hosting",
            ServiceFunction::Orchestration => "Orchestration",
            ServiceFunction::Cms => "CMS",
        }
    }
}

/// How resource identities are allocated — the §4.3 trichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamingModel {
    /// Customer picks the name; the generated FQDN is deterministic and
    /// re-registrable after release.
    Freetext,
    /// Dedicated IP drawn uniformly at random from the provider pool.
    IpPool,
    /// Provider generates an unguessable name; customers cannot influence it.
    RandomName,
}

/// Attacker capability class once the resource is controlled (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapabilityClass {
    /// Static content only: file/content/html/javascript. No header control,
    /// no HTTPS by default (Figure 17, left).
    StaticContent,
    /// Full webserver: additionally headers + https (Figure 17, center/right).
    FullWebserver,
}

/// One service row. (Not serde-serializable: it is a static catalog entry;
/// serialize the [`ServiceId`] instead.)
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    pub id: ServiceId,
    pub provider: ProviderId,
    pub display_name: &'static str,
    pub function: ServiceFunction,
    pub naming: NamingModel,
    /// Suffix under which generated FQDNs live (None for pure IP services).
    /// Presentation uses `[freetext]` / `[random]` per Table 3.
    pub suffix: Option<&'static str>,
    /// Regions substituted into `REGION`-bearing suffixes.
    pub regions: &'static [&'static str],
    pub capability: CapabilityClass,
    /// Published IP ranges for this service (Algorithm 1's `cloud_IPs`).
    pub ranges: &'static [&'static str],
    /// Do the front ends respond to ICMP echo? (§2: many filter it.)
    pub icmp_open: bool,
}

impl ServiceSpec {
    /// The generated FQDN for a resource named `name` in `region`.
    ///
    /// Panics on IP-pool services (which generate no name) — callers must
    /// branch on [`NamingModel`] first.
    pub fn generated_fqdn(&self, name: &str, region: Option<&str>) -> Result<Name, dns::NameError> {
        let suffix = self.suffix.expect("generated_fqdn on an IP-pool service");
        let filled = match region {
            Some(r) => suffix.replace("REGION", r),
            None => suffix.to_string(),
        };
        debug_assert!(!filled.contains("REGION"), "suffix {suffix} needs a region");
        Name::parse(&format!("{name}.{filled}"))
    }

    /// Whether the suffix requires a region.
    pub fn needs_region(&self) -> bool {
        self.suffix.map(|s| s.contains("REGION")).unwrap_or(false)
    }

    /// The registrable suffix zone this service's names live under (e.g.
    /// `azurewebsites.net`), i.e. the last two labels of the suffix.
    pub fn suffix_zone(&self) -> Option<Name> {
        let s = self.suffix?;
        let parts: Vec<&str> = s.split('.').collect();
        let n = parts.len();
        Name::parse(&parts[n.saturating_sub(2)..].join(".")).ok()
    }
}

/// Regions used by REGION-bearing services.
pub const AWS_REGIONS: &[&str] = &["us-east-1", "us-west-2", "eu-west-1", "ap-southeast-1"];
pub const AZURE_REGIONS: &[&str] = &["eastus", "westeurope", "southeastasia"];

/// The full service catalog — Tables 2 and 3 of the paper, plus the
/// randomized-allocation services whose absence from the abuse data is
/// itself a finding.
pub static CATALOG: &[ServiceSpec] = &[
    ServiceSpec {
        id: ServiceId::AzureWebApp,
        provider: ProviderId::Azure,
        display_name: "Azure Web App",
        function: ServiceFunction::WebApp,
        naming: NamingModel::Freetext,
        suffix: Some("azurewebsites.net"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.40.0.0/16"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::AzureTrafficManager,
        provider: ProviderId::Azure,
        display_name: "Azure Traffic Manager",
        function: ServiceFunction::TrafficRouter,
        naming: NamingModel::Freetext,
        suffix: Some("trafficmanager.net"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.41.0.0/16"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::AzureCloudappLegacy,
        provider: ProviderId::Azure,
        display_name: "Azure Cloud Service (legacy)",
        function: ServiceFunction::Vm,
        naming: NamingModel::Freetext,
        suffix: Some("cloudapp.net"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.42.0.0/16"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::AzureEdge,
        provider: ProviderId::Azure,
        display_name: "Azure CDN",
        function: ServiceFunction::Cdn,
        naming: NamingModel::Freetext,
        suffix: Some("azureedge.net"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.43.0.0/16"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::AzureCloudappRegional,
        provider: ProviderId::Azure,
        display_name: "Azure VM (regional)",
        function: ServiceFunction::Vm,
        naming: NamingModel::Freetext,
        suffix: Some("REGION.cloudapp.azure.com"),
        regions: AZURE_REGIONS,
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.44.0.0/16"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::AzureWebAppSip,
        provider: ProviderId::Azure,
        display_name: "Azure Web App (SIP)",
        function: ServiceFunction::WebApp,
        naming: NamingModel::Freetext,
        suffix: Some("sip.azurewebsites.windows.net"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["20.45.0.0/16"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::AwsS3Website,
        provider: ProviderId::Aws,
        display_name: "AWS S3 Static Hosting",
        function: ServiceFunction::StaticHosting,
        naming: NamingModel::Freetext,
        suffix: Some("s3-website.REGION.amazonaws.com"),
        regions: AWS_REGIONS,
        capability: CapabilityClass::StaticContent,
        ranges: &["52.216.0.0/15"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::AwsElasticBeanstalk,
        provider: ProviderId::Aws,
        display_name: "AWS Elastic Beanstalk",
        function: ServiceFunction::Orchestration,
        naming: NamingModel::Freetext,
        suffix: Some("REGION.elasticbeanstalk.com"),
        regions: AWS_REGIONS,
        capability: CapabilityClass::FullWebserver,
        ranges: &["52.20.0.0/14"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::HerokuApp,
        provider: ProviderId::Heroku,
        display_name: "Heroku App",
        function: ServiceFunction::WebApp,
        naming: NamingModel::Freetext,
        suffix: Some("herokuapp.com"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["54.81.0.0/16"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::PantheonSite,
        provider: ProviderId::Pantheon,
        display_name: "Pantheon Site",
        function: ServiceFunction::Cms,
        naming: NamingModel::Freetext,
        suffix: Some("pantheonsite.io"),
        regions: &[],
        capability: CapabilityClass::StaticContent,
        ranges: &["23.185.0.0/18"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::NetlifyApp,
        provider: ProviderId::Netlify,
        display_name: "Netlify App",
        function: ServiceFunction::WebApp,
        naming: NamingModel::Freetext,
        suffix: Some("netlify.app"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["75.2.60.0/24"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::GoogleAppEngine,
        provider: ProviderId::GoogleCloud,
        display_name: "Google App Engine",
        function: ServiceFunction::WebApp,
        naming: NamingModel::RandomName,
        suffix: Some("googleusercontent.com"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["35.190.0.0/17"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::CloudflarePages,
        provider: ProviderId::Cloudflare,
        display_name: "Cloudflare Pages",
        function: ServiceFunction::Cdn,
        naming: NamingModel::RandomName,
        suffix: Some("pages.dev"),
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["104.16.0.0/13"],
        icmp_open: false,
    },
    ServiceSpec {
        id: ServiceId::WordPressCom,
        provider: ProviderId::WordPressCom,
        display_name: "WordPress.com Blog",
        function: ServiceFunction::Cms,
        naming: NamingModel::Freetext,
        suffix: Some("wordpress.com"),
        regions: &[],
        capability: CapabilityClass::StaticContent,
        ranges: &["192.0.78.0/24"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::AwsEc2PublicIp,
        provider: ProviderId::Aws,
        display_name: "AWS EC2 Public IP",
        function: ServiceFunction::Vm,
        naming: NamingModel::IpPool,
        suffix: None,
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["54.144.0.0/14"],
        icmp_open: true,
    },
    ServiceSpec {
        id: ServiceId::AzureVmPublicIp,
        provider: ProviderId::Azure,
        display_name: "Azure VM Public IP",
        function: ServiceFunction::Vm,
        naming: NamingModel::IpPool,
        suffix: None,
        regions: &[],
        capability: CapabilityClass::FullWebserver,
        ranges: &["40.112.0.0/13"],
        icmp_open: true,
    },
];

/// Find the spec for a service.
pub fn spec(id: ServiceId) -> &'static ServiceSpec {
    CATALOG
        .iter()
        .find(|s| s.id == id)
        .expect("every ServiceId has a catalog row")
}

/// All cloud suffixes (Appendix A.1's list) for Algorithm 1.
pub fn cloud_suffixes() -> Vec<Name> {
    let mut out = Vec::new();
    for s in CATALOG {
        let Some(suffix) = s.suffix else { continue };
        if suffix.contains("REGION") {
            for r in s.regions {
                out.push(Name::parse(&suffix.replace("REGION", r)).unwrap());
            }
        } else {
            out.push(Name::parse(suffix).unwrap());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Build the provider IP range table (Algorithm 1's `cloud_IPs`).
pub fn cloud_ip_ranges() -> crate::ip::IpRangeTable<ServiceId> {
    let mut t = crate::ip::IpRangeTable::new();
    for s in CATALOG {
        for r in s.ranges {
            t.insert(r.parse::<Cidr>().unwrap(), s.id);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_ids() {
        for id in ServiceId::all() {
            let s = spec(*id);
            assert_eq!(s.id, *id);
        }
        assert_eq!(CATALOG.len(), ServiceId::all().len());
    }

    #[test]
    fn freetext_services_have_suffixes() {
        for s in CATALOG {
            match s.naming {
                NamingModel::Freetext | NamingModel::RandomName => {
                    assert!(s.suffix.is_some(), "{:?} needs a suffix", s.id)
                }
                NamingModel::IpPool => assert!(s.suffix.is_none(), "{:?}", s.id),
            }
        }
    }

    #[test]
    fn generated_fqdn_plain() {
        let s = spec(ServiceId::AzureWebApp);
        let n = s.generated_fqdn("contoso-shop", None).unwrap();
        assert_eq!(n.to_string(), "contoso-shop.azurewebsites.net");
    }

    #[test]
    fn generated_fqdn_with_region() {
        let s = spec(ServiceId::AwsS3Website);
        assert!(s.needs_region());
        let n = s.generated_fqdn("assets", Some("eu-west-1")).unwrap();
        assert_eq!(n.to_string(), "assets.s3-website.eu-west-1.amazonaws.com");
    }

    #[test]
    fn suffix_zone_is_registrable() {
        assert_eq!(
            spec(ServiceId::AwsS3Website)
                .suffix_zone()
                .unwrap()
                .to_string(),
            "amazonaws.com"
        );
        assert_eq!(
            spec(ServiceId::AzureWebApp)
                .suffix_zone()
                .unwrap()
                .to_string(),
            "azurewebsites.net"
        );
        assert!(spec(ServiceId::AwsEc2PublicIp).suffix_zone().is_none());
    }

    #[test]
    fn cloud_suffixes_expand_regions() {
        let sufs = cloud_suffixes();
        assert!(sufs.contains(&"azurewebsites.net".parse().unwrap()));
        assert!(sufs.contains(&"s3-website.us-east-1.amazonaws.com".parse().unwrap()));
        assert!(sufs.contains(&"s3-website.eu-west-1.amazonaws.com".parse().unwrap()));
        // no REGION placeholders leaked
        assert!(sufs.iter().all(|s| !s.to_string().contains("region")));
    }

    #[test]
    fn ranges_parse_and_disjoint_lookup() {
        let t = cloud_ip_ranges();
        assert!(t.len() >= CATALOG.len());
        assert_eq!(
            t.lookup("20.40.1.1".parse().unwrap()),
            Some(&ServiceId::AzureWebApp)
        );
        assert_eq!(
            t.lookup("54.144.9.9".parse().unwrap()),
            Some(&ServiceId::AwsEc2PublicIp)
        );
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()), None);
    }

    #[test]
    fn table4_capability_classes() {
        // Table 4: S3 + Pantheon are static-content; the rest full webserver.
        assert_eq!(
            spec(ServiceId::AwsS3Website).capability,
            CapabilityClass::StaticContent
        );
        assert_eq!(
            spec(ServiceId::PantheonSite).capability,
            CapabilityClass::StaticContent
        );
        assert_eq!(
            spec(ServiceId::HerokuApp).capability,
            CapabilityClass::FullWebserver
        );
        assert_eq!(
            spec(ServiceId::AzureEdge).capability,
            CapabilityClass::FullWebserver
        );
    }
}
