//! Property tests for the cloud platform: allocation-model invariants and
//! CIDR algebra.

use cloudsim::{AccountId, Cidr, CloudPlatform, IpPool, PlatformConfig, ServiceId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::SimTime;
use std::collections::HashSet;

fn arb_cidr() -> impl Strategy<Value = Cidr> {
    (any::<u32>(), 8u8..=30).prop_map(|(base, len)| Cidr::new(base.into(), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every address enumerated by a CIDR is contained by it, and the block
    /// boundary addresses are not.
    #[test]
    fn cidr_membership(cidr in arb_cidr()) {
        let size = cidr.size();
        for i in [0, size / 2, size - 1] {
            prop_assert!(cidr.contains(cidr.nth(i)));
        }
        let before = u32::from(cidr.base()).checked_sub(1);
        if let Some(b) = before {
            prop_assert!(!cidr.contains(b.into()));
        }
        let after = u32::from(cidr.base()).checked_add(size as u32);
        if let Some(a) = after {
            prop_assert!(!cidr.contains(a.into()));
        }
    }

    /// Parse/display roundtrip.
    #[test]
    fn cidr_parse_roundtrip(cidr in arb_cidr()) {
        let s = cidr.to_string();
        let back: Cidr = s.parse().unwrap();
        prop_assert_eq!(back, cidr);
    }

    /// A `covers` B and B `covers` A only when equal.
    #[test]
    fn cidr_covers_antisymmetry(a in arb_cidr(), b in arb_cidr()) {
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// Pool allocations are unique until released.
    #[test]
    fn pool_allocations_unique(seed in any::<u64>(), n in 1usize..60) {
        let mut pool = IpPool::new(vec!["192.0.2.0/26".parse().unwrap()]); // 64 addrs
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = HashSet::new();
        for _ in 0..n {
            let ip = pool.allocate(&mut rng).unwrap();
            prop_assert!(seen.insert(ip), "duplicate allocation {}", ip);
        }
        prop_assert_eq!(pool.allocated_count(), n as u64);
    }

    /// Freetext re-registration after release always yields the *same*
    /// generated FQDN — the determinism the attack depends on.
    #[test]
    fn freetext_reregistration_deterministic(
        name in "[a-z][a-z0-9-]{0,20}",
        seed in any::<u64>(),
    ) {
        let mut p = CloudPlatform::new(PlatformConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let id = p.register(ServiceId::AzureWebApp, Some(&name), None, AccountId::Org(1), SimTime(0), &mut rng).unwrap();
        let fqdn1 = p.resource(id).unwrap().generated_fqdn.clone().unwrap();
        p.release(id, SimTime(1));
        let id2 = p.register(ServiceId::AzureWebApp, Some(&name), None, AccountId::Attacker(0), SimTime(2), &mut rng).unwrap();
        let fqdn2 = p.resource(id2).unwrap().generated_fqdn.clone().unwrap();
        prop_assert_eq!(fqdn1, fqdn2);
    }

    /// Under the randomized-names mitigation the generated FQDN never equals
    /// the one freed by a release (the takeover becomes impossible).
    #[test]
    fn randomized_names_never_recaptured(
        name in "[a-z][a-z0-9-]{0,20}",
        seed in any::<u64>(),
    ) {
        let mut p = CloudPlatform::new(PlatformConfig {
            randomize_freetext_names: true,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let id = p.register(ServiceId::AzureWebApp, Some(&name), None, AccountId::Org(1), SimTime(0), &mut rng).unwrap();
        let fqdn1 = p.resource(id).unwrap().generated_fqdn.clone().unwrap();
        p.release(id, SimTime(1));
        let id2 = p.register(ServiceId::AzureWebApp, Some(&name), None, AccountId::Attacker(0), SimTime(2), &mut rng).unwrap();
        let fqdn2 = p.resource(id2).unwrap().generated_fqdn.clone().unwrap();
        prop_assert_ne!(fqdn1, fqdn2);
    }

    /// Two active resources never share a freetext name (per service+region),
    /// regardless of interleaving of registers and releases.
    #[test]
    fn no_active_name_collision(ops in proptest::collection::vec((0u8..3, 0usize..5), 1..40)) {
        let mut p = CloudPlatform::new(PlatformConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let mut live: Vec<(usize, cloudsim::ResourceId)> = Vec::new();
        let mut t = 0;
        for (op, which) in ops {
            t += 1;
            match op {
                0 | 1 => {
                    let r = p.register(
                        ServiceId::HerokuApp,
                        Some(names[which]),
                        None,
                        AccountId::Org(1),
                        SimTime(t),
                        &mut rng,
                    );
                    let name_live = live.iter().any(|(w, _)| *w == which);
                    if name_live {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        live.push((which, r.unwrap()));
                    }
                }
                _ => {
                    if let Some(pos) = live.iter().position(|(w, _)| *w == which) {
                        let (_, id) = live.remove(pos);
                        p.release(id, SimTime(t));
                    }
                }
            }
        }
    }
}
