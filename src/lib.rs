//! # dangling-abuse — umbrella crate
//!
//! A full reproduction of *"Cloudy with a Chance of Cyberattacks: Dangling
//! Resources Abuse on Cloud Platforms"* (NSDI 2024) as a Rust workspace:
//! the paper's collection + detection + analysis methodology
//! ([`dangling_core`]) running against a deterministic simulation of the
//! ecosystem it measured — DNS ([`dns`]), cloud platforms ([`cloudsim`]),
//! HTTP ([`httpsim`]), certificates and CT ([`certsim`]), synthetic
//! populations ([`worldgen`]), web content ([`contentgen`]) and attacker
//! campaigns ([`attacker`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use dangling_abuse::prelude::*;
//!
//! // Run the full 2015–2023 longitudinal study at 1/400 of paper scale.
//! let results = Scenario::new(ScenarioConfig::at_scale(400)).run();
//! println!(
//!     "monitored {} FQDNs, detected {} abused (precision {:.2}, recall {:.2})",
//!     results.monitored_total,
//!     results.abuse.len(),
//!     results.detection.precision(),
//!     results.detection.recall(),
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! per-figure/table reproduction harness (`cargo run -p bench --bin repro`).

pub use analysis;
pub use attacker;
pub use certsim;
pub use cloudsim;
pub use contentgen;
pub use dangling_core;
pub use dns;
pub use httpsim;
pub use simcore;
pub use worldgen;

/// The most common imports for driving the reproduction.
pub mod prelude {
    pub use dangling_core::{Scenario, ScenarioConfig, StudyResults};
    pub use simcore::{Date, RngTree, Scale, SimTime};
}

#[cfg(test)]
mod tests {
    #[test]
    fn crates_reachable() {
        // The umbrella re-exports resolve.
        let _ = simcore::Scale::DEFAULT;
        let _ = cloudsim::CATALOG.len();
        let _ = certsim::CaId::LetsEncrypt;
    }
}
