//! CT monitoring as a countermeasure (§5.6.3): a domain owner subscribes to
//! their apex, an attacker hijacks a forgotten subdomain and obtains a valid
//! Let's Encrypt certificate — and the monitor raises an alert the same day,
//! while CAA (§5.6.2) fails to prevent the issuance.
//!
//! ```sh
//! cargo run --release --example ct_monitor
//! ```

use certsim::{caa_permits, issue, CaId, CertId, CtLog, CtMonitor};
use cloudsim::AccountId;
use dns::{CaaRecord, Name};
use simcore::{Date, SimTime};

fn main() {
    let apex: Name = "victim.com".parse().unwrap();
    let hijacked: Name = "forgotten.victim.com".parse().unwrap();
    let mut ct = CtLog::new();

    // The owner subscribes a CT monitor to the apex (cheap, set-and-forget).
    let mut monitor = CtMonitor::new(apex.clone(), 0);

    // Domain control as the CA sees it after the hijack: the attacker's
    // resource serves the subdomain web root.
    let control = |account: AccountId, host: &Name, _t: SimTime| -> bool {
        match account {
            AccountId::Attacker(0) => host == &"forgotten.victim.com".parse::<Name>().unwrap(),
            AccountId::Org(1) => host.ends_with(&"victim.com".parse::<Name>().unwrap()),
            _ => false,
        }
    };

    // §5.6.2: the owner set CAA authorizing Let's Encrypt (a free CA).
    let caa = vec![CaaRecord::issue("letsencrypt.org")];
    let caa_lookup = |_: &Name| caa.clone();

    println!("== CAA check (§5.6.2) ==");
    for ca in [CaId::LetsEncrypt, CaId::DigiCert] {
        println!(
            "  {} may issue for {}? {}",
            ca,
            hijacked,
            caa_permits(&caa, ca, false).permits()
        );
    }
    println!("  -> CAA does not stop an attacker who simply uses the authorized CA.");

    // The attacker passes HTTP-01 (they control the web root) and issues.
    let day = Date::new(2022, 10, 3).to_sim();
    let cert = issue(
        CaId::LetsEncrypt,
        AccountId::Attacker(0),
        std::slice::from_ref(&hijacked),
        &control,
        &caa_lookup,
        CertId(1),
        day,
    )
    .expect("validation passes: the attacker controls the content");
    println!();
    println!(
        "== Fraudulent-but-valid certificate issued ==\n  subject: {}\n  issuer:  {}\n  window:  {} .. {}",
        cert.subject,
        cert.issuer,
        cert.not_before.to_date(),
        cert.not_after.to_date()
    );
    ct.append(cert, day);

    // §5.6.3: the monitor fires on the next poll.
    println!();
    println!("== CT monitor (§5.6.3) ==");
    for alert in monitor.poll(&ct) {
        println!(
            "  ALERT for {}: certificate logged {} covering {:?}",
            alert.watched,
            alert.logged_at.to_date(),
            alert
                .matching_sans
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }
    println!("  -> reactive but immediate; the owner learns of the hijack within hours,");
    println!("     vs the median multi-week remediation lag the lifespan analysis shows.");
}
