//! Quickstart: run the full longitudinal study at a small scale and print
//! the headline numbers next to the paper's.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dangling_abuse::prelude::*;

fn main() {
    // 1/400 of paper scale finishes in seconds; pass a denominator as the
    // first argument to change it (e.g. `100` for the default repro scale).
    let denom: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    println!("Running the 2015–2023 scenario at 1/{denom} of paper scale...");
    let results = Scenario::new(ScenarioConfig::at_scale(denom)).run();

    println!();
    println!("=== Collection (paper §3.1) ===");
    println!("feed FQDNs:        {}", results.feed_size);
    println!(
        "cloud-monitored:   {}   (paper: 1,508,273 → 3,101,992)",
        results.monitored_total
    );
    println!("change events:     {}", results.changes_total);

    println!();
    println!("=== Detection (paper §3.2) ===");
    println!(
        "signatures kept:   {}   (discarded by benign validation: {})",
        results.signatures.len(),
        results.signatures_discarded
    );
    println!(
        "abused FQDNs:      {}   (paper: 20,904; scaled target ≈ {})",
        results.abuse.len(),
        results.scale.apply(20_904),
    );
    println!(
        "ground truth:      {} hijacks -> precision {:.3}, recall {:.3}",
        results.world.truth.len(),
        results.detection.precision(),
        results.detection.recall()
    );

    println!();
    println!("=== Key findings reproduced ===");
    let ip_takeovers = results
        .world
        .truth
        .iter()
        .filter(|t| cloudsim::provider::spec(t.service).naming != cloudsim::NamingModel::Freetext)
        .count();
    println!(
        "IP-pool takeovers: {ip_takeovers}   (paper: 0; lottery declined {} times)",
        results.ip_lottery_declines
    );
    let (f500, g500) = results.enterprise_victim_rates();
    println!(
        "Fortune 500 victims: {:.1}% (paper: 31%), Global 500: {:.1}% (paper: 25.4%)",
        100.0 * f500,
        100.0 * g500
    );
    let (seo_frac, _) = results.seo_shares();
    println!("SEO share of abuse: {:.0}% (paper: 75%)", 100.0 * seo_frac);
    let top = results.table1_index_keywords(5);
    let words: Vec<&str> = top.iter().map(|(w, _)| w.as_str()).collect();
    println!("top abuse keywords: {words:?} (paper: gambling/adult terms)");
}
