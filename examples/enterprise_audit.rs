//! Enterprise audit: use the library the way a security team would — run
//! Algorithm 1 + the dangling-record scanner against one organization's
//! zone to find takeover-exposed subdomains *before* an attacker does.
//!
//! ```sh
//! cargo run --release --example enterprise_audit
//! ```

use attacker::Scanner;
use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId};
use dangling_core::collect::Collector;
use dns::{Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::SimTime;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let now = SimTime(0);

    // --- The org's cloud estate: some live, some already abandoned. ---
    let mut zone = Zone::new("contoso.com".parse().unwrap());
    let estate: &[(&str, ServiceId, Option<&str>, bool)] = &[
        ("www", ServiceId::AzureWebApp, None, true),
        ("shop", ServiceId::AzureWebApp, None, false), // decommissioned!
        ("assets", ServiceId::AwsS3Website, Some("eu-west-1"), false), // decommissioned!
        (
            "api",
            ServiceId::AwsElasticBeanstalk,
            Some("us-east-1"),
            true,
        ),
        ("blog", ServiceId::HerokuApp, None, true),
    ];
    for (label, service, region, keep) in estate {
        let resource_name = format!("contoso-{label}");
        let rid = platform
            .register(
                *service,
                Some(&resource_name),
                *region,
                AccountId::Org(1),
                now,
                &mut rng,
            )
            .expect("register");
        let fqdn: Name = format!("{label}.contoso.com").parse().unwrap();
        platform.bind_custom_domain(rid, fqdn.clone());
        let target = platform
            .resource(rid)
            .unwrap()
            .generated_fqdn
            .clone()
            .unwrap();
        zone.add(ResourceRecord::new(fqdn, 300, RecordData::Cname(target)));
        if !keep {
            // The sin of §1: release the resource, forget the record.
            platform.release(rid, now);
        }
    }

    // --- Compose DNS and audit. ---
    let mut zones = ZoneSet::new();
    zones.insert(zone);
    for z in platform.zones().iter() {
        zones.insert(z.clone());
    }
    let resolver = Resolver::new(dns::Authority::new(zones));
    let candidates: Vec<Name> = estate
        .iter()
        .map(|(l, _, _, _)| format!("{l}.contoso.com").parse().unwrap())
        .collect();

    println!("== Step 1: Algorithm 1 — which subdomains point at clouds? ==");
    let collector = Collector::new();
    for (fqdn, ptr) in collector.collect_fqdns(&candidates, &resolver, now) {
        println!("  {fqdn}  ->  {:?}", ptr.service().unwrap());
    }

    println!();
    println!("== Step 2: dangling scan — which of them are takeover-exposed? ==");
    let scanner = Scanner::new();
    let findings = scanner.scan(&candidates, &resolver, &platform, now);
    if findings.is_empty() {
        println!("  none — estate is clean");
    }
    for f in &findings {
        println!(
            "  VULNERABLE: {} -> {} ({}; re-registrable name {:?})",
            f.victim_fqdn, f.cloud_fqdn, f.service, f.resource_name
        );
    }

    println!();
    println!("== Step 3: prove exploitability (attacker's view) ==");
    for f in &findings {
        let rid = platform
            .register(
                f.service,
                Some(&f.resource_name),
                f.region.as_deref(),
                AccountId::Attacker(0),
                now,
                &mut rng,
            )
            .expect("the whole point: re-registration succeeds");
        println!(
            "  re-registered {} — traffic for {} is now attacker-controlled",
            platform
                .resource(rid)
                .unwrap()
                .generated_fqdn
                .as_ref()
                .unwrap(),
            f.victim_fqdn
        );
        platform.release(rid, now); // hand it back
    }
    println!();
    println!(
        "Remediation: purge the {} dangling record(s) or re-register the names yourself.",
        findings.len()
    );
}
