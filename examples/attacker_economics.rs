//! Attacker economics (§4.3): why every observed hijack used a freetext
//! resource and none used the IP lottery.
//!
//! Sweeps pool sizes and domain reputations through the cost model, then
//! empirically measures the lottery cost on a real (small) pool.
//!
//! ```sh
//! cargo run --release --example attacker_economics
//! ```

use attacker::{CostModel, HijackDecision};
use cloudsim::{IpPool, ServiceId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = CostModel::default();

    println!("== Deterministic freetext vs IP lottery (cost model) ==");
    println!(
        "{:<28} {:>12} {:>14} {:>14}  decision",
        "target", "domain value", "E[attempts]", "E[cost]"
    );
    for (label, service, rank, pool) in [
        (
            "Azure Web App, rank 100",
            ServiceId::AzureWebApp,
            Some(100),
            0u64,
        ),
        ("Heroku app, unranked", ServiceId::HerokuApp, None, 0),
        (
            "EC2 IP, rank 100",
            ServiceId::AwsEc2PublicIp,
            Some(100),
            4_000_000,
        ),
        (
            "EC2 IP, rank 1",
            ServiceId::AwsEc2PublicIp,
            Some(1),
            4_000_000,
        ),
        (
            "Azure VM IP, rank 1000",
            ServiceId::AzureVmPublicIp,
            Some(1000),
            500_000,
        ),
        (
            "Google App Engine, rank 1",
            ServiceId::GoogleAppEngine,
            Some(1),
            0,
        ),
    ] {
        let value = model.domain_value(rank);
        match model.decide(service, rank, pool) {
            HijackDecision::ProceedFreetext { expected_cost } => println!(
                "{label:<28} {value:>12.2} {:>14} {expected_cost:>14.2}  PROCEED (deterministic)",
                1
            ),
            HijackDecision::DeclineIpLottery {
                expected_attempts,
                expected_cost,
                ..
            } => println!(
                "{label:<28} {value:>12.2} {expected_attempts:>14.0} {expected_cost:>14.0}  DECLINE (lottery)"
            ),
            HijackDecision::ImpossibleRandomName => println!(
                "{label:<28} {value:>12.2} {:>14} {:>14}  IMPOSSIBLE (random name)",
                "-", "-"
            ),
        }
    }

    println!();
    println!("== Break-even pool size by reputation ==");
    for rank in [1u32, 100, 10_000, 1_000_000] {
        println!(
            "  rank {:>9}: lottery rational only below {:>8} free addresses (real pools: millions)",
            rank,
            model.breakeven_pool_size(Some(rank))
        );
    }

    println!();
    println!("== Empirical lottery on a real pool (/16 = 65,536 addresses) ==");
    let mut pool = IpPool::new(vec!["10.0.0.0/16".parse().unwrap()]);
    let target = "10.0.123.45".parse().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut total = 0u64;
    let rounds = 5;
    for i in 1..=rounds {
        match pool.lottery_for(target, 10_000_000, &mut rng) {
            Ok(attempts) => {
                total += attempts;
                println!("  round {i}: won the target after {attempts} allocations");
                pool.release(target);
            }
            Err(n) => println!("  round {i}: gave up after {n} allocations"),
        }
    }
    let mean = total as f64 / rounds as f64;
    println!(
        "  mean ≈ {:.0} allocations ≈ (N+1)/2 = {:.0} — at any per-cycle cost this dwarfs a $0 freetext registration.",
        mean,
        (65_536 + 1) as f64 / 2.0
    );
}
