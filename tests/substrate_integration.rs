//! Cross-crate integration tests for the substrates working together,
//! without the full scenario driver: DNS ↔ cloud platform ↔ HTTP ↔ CA.

use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId};
use dangling_core::collect::{CloudPointer, Collector};
use dangling_core::monitor::Crawler;
use dns::{Name, RecordData, Resolver, ResourceRecord, Zone, ZoneSet};
use httpsim::{Endpoint, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::SimTime;

/// Build a two-org world by hand and walk the full hijack kill-chain.
#[test]
fn hijack_kill_chain() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let t0 = SimTime(0);

    // 1. Victim provisions a web app + CNAME.
    let rid = platform
        .register(
            ServiceId::AzureWebApp,
            Some("megacorp-promo"),
            None,
            AccountId::Org(1),
            t0,
            &mut rng,
        )
        .unwrap();
    platform.set_content(rid, cloudsim::SiteContent::placeholder("MegaCorp promo"));
    let victim: Name = "promo.megacorp.com".parse().unwrap();
    platform.bind_custom_domain(rid, victim.clone());
    let mut org_zone = Zone::new("megacorp.com".parse().unwrap());
    org_zone.add(ResourceRecord::new(
        victim.clone(),
        300,
        RecordData::Cname("megacorp-promo.azurewebsites.net".parse().unwrap()),
    ));

    let build_resolver = |platform: &CloudPlatform, org_zone: &Zone| {
        let mut zs = ZoneSet::new();
        zs.insert(org_zone.clone());
        for z in platform.zones().iter() {
            zs.insert(z.clone());
        }
        Resolver::new(dns::Authority::new(zs))
    };

    // 2. The crawler sees the benign site.
    let resolver = build_resolver(&platform, &org_zone);
    let snap = Crawler::sample(&victim, &resolver, &platform, None, t0);
    assert_eq!(snap.http_status, Some(200));
    assert!(snap.title.as_deref().unwrap().contains("MegaCorp"));

    // 3. Victim decommissions but forgets the record.
    platform.release(rid, SimTime(30));
    let resolver = build_resolver(&platform, &org_zone);
    let dangling = resolver.resolve_a(&victim, SimTime(31));
    assert!(dangling.is_dangling_cname());

    // 4. Attacker finds and re-registers the exact name.
    let scanner = attacker::Scanner::new();
    let findings = scanner.scan(
        std::slice::from_ref(&victim),
        &resolver,
        &platform,
        SimTime(40),
    );
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    let hid = platform
        .register(
            f.service,
            Some(&f.resource_name),
            None,
            AccountId::Attacker(0),
            SimTime(40),
            &mut rng,
        )
        .unwrap();
    platform.bind_custom_domain(hid, victim.clone());
    let mut arng = StdRng::seed_from_u64(9);
    let spec = contentgen::abuse::AbuseSpec {
        topic: contentgen::abuse::AbuseTopic::Gambling,
        technique: contentgen::abuse::SeoTechnique::DoorwayPages,
        page_count: 20_000,
        use_meta_keywords: true,
        maintenance_shell_lang: None,
        links: contentgen::abuse::CampaignLinks {
            phones: vec!["6281234509876".into()],
            target_site: "maxwin.example".into(),
            referral_code: "R1".into(),
            ..Default::default()
        },
        network_peers: vec![],
        template_keywords: vec![],
    };
    platform.set_content(
        hid,
        contentgen::abuse::build_abuse_site(&spec, "promo.megacorp.com", &mut arng),
    );

    // 5. The crawler now sees gambling content on the victim domain.
    let resolver = build_resolver(&platform, &org_zone);
    let snap2 = Crawler::sample(&victim, &resolver, &platform, Some(&snap), SimTime(47));
    assert_eq!(snap2.http_status, Some(200));
    assert!(snap2
        .keywords
        .iter()
        .any(|k| k == "slot" || k == "gacor" || k == "judi"));
    let kinds = dangling_core::diff::diff(&snap, &snap2);
    assert!(!kinds.is_empty());

    // 6. Remediation: purge the record; the hijack goes dark.
    org_zone.remove_name(&victim);
    let resolver = build_resolver(&platform, &org_zone);
    let snap3 = Crawler::sample(&victim, &resolver, &platform, Some(&snap2), SimTime(54));
    assert!(!snap3.is_serving());
}

/// Algorithm 1 correctly distinguishes CNAME-cloud, A-record-cloud, and
/// non-cloud names against the live platform.
#[test]
fn algorithm1_against_platform() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let rid = platform
        .register(
            ServiceId::HerokuApp,
            Some("acme-app"),
            None,
            AccountId::Org(1),
            SimTime(0),
            &mut rng,
        )
        .unwrap();
    let vm = platform
        .register(
            ServiceId::AwsEc2PublicIp,
            None,
            None,
            AccountId::Org(1),
            SimTime(0),
            &mut rng,
        )
        .unwrap();
    let vm_ip = platform.resource(vm).unwrap().ip;
    let _ = rid;

    let mut zone = Zone::new("acme.com".parse().unwrap());
    zone.add(ResourceRecord::new(
        "app.acme.com".parse().unwrap(),
        300,
        RecordData::Cname("acme-app.herokuapp.com".parse().unwrap()),
    ));
    zone.add(ResourceRecord::new(
        "vm.acme.com".parse().unwrap(),
        300,
        RecordData::A(vm_ip),
    ));
    zone.add(ResourceRecord::new(
        "www.acme.com".parse().unwrap(),
        300,
        RecordData::A("93.184.216.34".parse().unwrap()),
    ));
    let mut zs = ZoneSet::new();
    zs.insert(zone);
    for z in platform.zones().iter() {
        zs.insert(z.clone());
    }
    let resolver = Resolver::new(dns::Authority::new(zs));
    let collector = Collector::new();

    let c1 = collector.classify(&"app.acme.com".parse().unwrap(), &resolver, SimTime(0));
    assert!(matches!(
        c1,
        CloudPointer::CnameSuffix {
            service: ServiceId::HerokuApp,
            ..
        }
    ));
    let c2 = collector.classify(&"vm.acme.com".parse().unwrap(), &resolver, SimTime(0));
    assert!(matches!(
        c2,
        CloudPointer::CloudIp {
            service: ServiceId::AwsEc2PublicIp,
            ..
        }
    ));
    let c3 = collector.classify(&"www.acme.com".parse().unwrap(), &resolver, SimTime(0));
    assert_eq!(c3, CloudPointer::NotCloud);
}

/// Issuance through the world's DNS honors CAA set in org zones, and HTTPS
/// serving requires the binding (§5.6 mechanics without the scenario).
#[test]
fn https_requires_issuance() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut platform = CloudPlatform::new(PlatformConfig::default());
    let rid = platform
        .register(
            ServiceId::NetlifyApp,
            Some("corp-site"),
            None,
            AccountId::Org(5),
            SimTime(0),
            &mut rng,
        )
        .unwrap();
    let host: Name = "secure.corp.com".parse().unwrap();
    platform.bind_custom_domain(rid, host.clone());
    let ip = platform.resource(rid).unwrap().ip;

    // No cert: HTTPS fails, HTTP works.
    assert!(platform
        .http_serve(ip, &Request::get_https(&host.to_string(), "/"), SimTime(0))
        .is_none());
    assert!(platform
        .http_serve(ip, &Request::get(&host.to_string(), "/"), SimTime(0))
        .is_some());

    // Issue via certsim with control answered by the platform.
    let control = |account: AccountId, h: &Name, _t: SimTime| {
        platform
            .resource_by_host(h)
            .map(|r| r.owner == account)
            .unwrap_or(false)
    };
    let cert = certsim::issue(
        certsim::CaId::LetsEncrypt,
        AccountId::Org(5),
        std::slice::from_ref(&host),
        &control,
        &|_| Vec::new(),
        certsim::CertId(1),
        SimTime(0),
    )
    .unwrap();
    assert!(cert.is_single_san());
    platform.add_tls_host(rid, host.clone());
    assert!(platform
        .http_serve(ip, &Request::get_https(&host.to_string(), "/"), SimTime(0))
        .is_some());
}
