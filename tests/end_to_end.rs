//! Cross-crate integration tests: the full study pipeline at miniature
//! scale, checked against ground truth and the paper's qualitative claims.

use dangling_abuse::prelude::*;
use dangling_core::{Scenario, ScenarioConfig};

fn small_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(800);
    cfg.world.n_fortune1000 = 60;
    cfg.world.n_global500 = 30;
    cfg.seed = seed;
    cfg
}

#[test]
fn full_study_reproduces_headline_claims() {
    let r = Scenario::new(small_cfg(7)).run();

    // §3: the pipeline monitors a growing cloud-pointing population.
    assert!(r.monitored_total > 100);
    let (monitored, _) = r.fig1_series();
    let first_nonzero = monitored.iter().find(|(_, v)| *v > 0.0).unwrap().1;
    assert!(monitored.last().unwrap().1 > first_nonzero);

    // Hijacks happen and are detected with high fidelity.
    assert!(!r.world.truth.is_empty());
    assert!(
        r.detection.precision() > 0.9,
        "precision {}",
        r.detection.precision()
    );
    assert!(
        r.detection.recall() > 0.6,
        "recall {}",
        r.detection.recall()
    );

    // §4.3: every hijack is a freetext re-registration; zero IP takeovers.
    for t in &r.world.truth {
        assert_eq!(
            cloudsim::provider::spec(t.service).naming,
            cloudsim::NamingModel::Freetext
        );
    }
    assert!(r.ip_lottery_declines > 0);

    // §5.2: gambling leads among *classified* topics. (Maintenance-shell
    // hijacks classify as Unknown from the index page alone — the paper's
    // Table 1 shows the same shell snippets at the top of its keyword list.)
    let topics = r.fig3_topics();
    let top_classified = topics
        .iter()
        .find(|(t, _)| t != "Unknown")
        .map(|(t, _)| t.as_str());
    assert_eq!(top_classified, Some("Gambling"), "topics: {topics:?}");
    let (seo_frac, _) = r.seo_shares();
    assert!(seo_frac > 0.5, "SEO share {seo_frac}");

    // §5.4: malware nearly absent relative to hijacks.
    let malware = attacker::malware::summarize(&r.world.binaries);
    assert!(malware.total_binaries < r.world.truth.len());

    // Figure 18: abused SLDs are established domains.
    let (_, frac_old) = r.fig18_domain_ages();
    assert!(frac_old > 0.9, "domain age fraction {frac_old}");
}

#[test]
fn randomized_names_mitigation_eliminates_hijacks() {
    let mut cfg = small_cfg(11);
    cfg.platform.randomize_freetext_names = true;
    let r = Scenario::new(cfg).run();
    assert_eq!(
        r.world.truth.len(),
        0,
        "unguessable names make deterministic re-registration impossible"
    );
    assert!(r.abuse.is_empty());
}

#[test]
fn liveness_comparison_shape_matches_section2() {
    let r = Scenario::new(small_cfg(13)).run();
    let (icmp, _tcp, http) = r.liveness_rates().expect("hijacks produce samples");
    // Shape (not absolute): ICMP under-reports liveness vs HTTP.
    assert!(icmp < http, "icmp {icmp} vs http {http}");
    assert!(http > 0.7);
}

#[test]
fn certificates_and_ct() {
    let r = Scenario::new(small_cfg(17)).run();
    // Some hijacks obtained certificates; they are single-SAN (Figure 20's
    // discriminator) and show in CT history.
    let with_cert: Vec<_> = r.world.truth.iter().filter(|t| t.cert.is_some()).collect();
    assert!(!with_cert.is_empty(), "some hijacks should certify");
    for t in &with_cert {
        let history = r.world.ct.history_for(&t.victim_fqdn);
        let own: Vec<_> = history
            .iter()
            .filter(|e| e.cert.requested_by == cloudsim::AccountId::Attacker(t.campaign))
            .collect();
        assert!(!own.is_empty());
        assert!(own.iter().all(|e| e.cert.is_single_san()));
    }
    // A CT monitor on a victim apex would have alerted.
    let t = with_cert[0];
    let apex = t.victim_fqdn.sld().unwrap();
    let mut monitor = certsim::CtMonitor::new(apex, 0);
    let alerts = monitor.poll(&r.world.ct);
    assert!(
        !alerts.is_empty(),
        "CT monitoring catches the fraudulent cert"
    );
}

#[test]
fn infrastructure_clustering_recovers_campaigns() {
    let r = Scenario::new(small_cfg(19)).run();
    let infra = dangling_core::infra::cluster_infrastructure(&r.infra_inputs());
    // Identifiers cover a subset of abused domains (paper: ~1/3).
    assert!(infra.covered_domains <= r.abuse.len());
    if infra.clusters.len() >= 2 {
        // Clusters never mix campaigns (pairwise precision 1.0 at 0.95 in a
        // world where identifiers are campaign-unique).
        use std::collections::{BTreeMap, BTreeSet};
        let truth: BTreeMap<_, _> = r
            .world
            .truth
            .iter()
            .map(|t| (t.victim_fqdn.clone(), t.campaign))
            .collect();
        for c in &infra.clusters {
            let campaigns: BTreeSet<_> = c.domains.iter().filter_map(|d| truth.get(d)).collect();
            assert!(
                campaigns.len() <= 1,
                "cluster mixes campaigns: {campaigns:?}"
            );
        }
    }
    // Phone geography is Asia-dominated (Figure 21).
    if let Some((top_country, _)) = infra.phone_countries.first() {
        assert!(
            ["Indonesia", "Cambodia"].contains(&top_country.as_str()),
            "top country {top_country}"
        );
    }
}

#[test]
fn determinism_across_identical_runs() {
    let a = Scenario::new(small_cfg(23)).run();
    let b = Scenario::new(small_cfg(23)).run();
    assert_eq!(a.world.truth.len(), b.world.truth.len());
    assert_eq!(a.abuse.len(), b.abuse.len());
    assert_eq!(a.monitored_total, b.monitored_total);
    assert_eq!(a.world.ct.len(), b.world.ct.len());
    let fa: Vec<String> = a.abuse.iter().map(|x| x.fqdn.to_string()).collect();
    let fb: Vec<String> = b.abuse.iter().map(|x| x.fqdn.to_string()).collect();
    assert_eq!(fa, fb);
}

#[test]
fn prelude_quickstart_compiles_and_runs() {
    // The README quickstart, miniaturized.
    let results = Scenario::new(small_cfg(29)).run();
    let _ = Scale::DEFAULT;
    let _ = SimTime::monitor_start();
    let _ = Date::new(2022, 9, 9);
    let _ = RngTree::new(1);
    assert!(results.feed_size > 0);
}
