#!/usr/bin/env python3
"""Bench-baseline drift check: parse criterion-shim output against the
``ci_budgets`` section of a BENCH_*.json baseline.

Usage::

    python3 scripts/bench_drift.py <bench_output.txt> <BENCH_file.json> [...]

Two line shapes are understood:

- timed rows, one per benchmark::

    group/name        mean 12345 ns/iter (8 iters)   843.21 Kelem/s

- contract lines (greppable ``key=value`` summaries printed by a bench's
  untimed contract phase)::

    serve_load contract: ... query_p50_ns=255 publish_p99_ns=10580000 ...

Budgets live next to the recorded baselines::

    "ci_budgets": {
      "mean_ns":     { "group/name": <ceiling in ns/iter>, ... },
      "contract_ns": { "query_p99_ns": <ceiling in ns>, ... }
    }

Ceilings are deliberately generous (~8x the recorded baseline) so shared CI
runners never flap; a violation therefore means a real order-of-magnitude
regression, not noise. A budgeted row absent from the output is skipped
(bench smokes filter rows), but an output matching *no* budgeted row fails:
that catches renamed benchmarks silently detaching from their budgets.
"""

import json
import re
import sys

MEAN_RE = re.compile(r"^(\S+)\s+mean\s+([\d_]+)\s+ns/iter")
CONTRACT_RE = re.compile(r"(\w+)=(\d+)")


def parse_output(path):
    means, contract = {}, {}
    with open(path) as f:
        for line in f:
            m = MEAN_RE.match(line)
            if m:
                means[m.group(1)] = int(m.group(2).replace("_", ""))
            elif "contract:" in line:
                for key, val in CONTRACT_RE.findall(line):
                    contract[key] = int(val)
    return means, contract


def check(kind, observed, budgets, failures, checked):
    for name, ceiling in sorted(budgets.items()):
        if name not in observed:
            print(f"  skip  {name}: not in this output (filtered run)")
            continue
        got = observed[name]
        checked.append(name)
        verdict = "ok" if got <= ceiling else "FAIL"
        print(f"  {verdict:>4}  {name}: {got} ns <= {ceiling} ns ({kind})")
        if got > ceiling:
            failures.append(f"{name}: {got} ns exceeds the {ceiling} ns ceiling")


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    out_path, baselines = argv[1], argv[2:]
    means, contract = parse_output(out_path)
    failures, checked = [], []
    for base_path in baselines:
        with open(base_path) as f:
            base = json.load(f)
        budgets = base.get("ci_budgets")
        if not budgets:
            print(f"{base_path}: no ci_budgets section, nothing to check")
            continue
        print(f"{out_path} vs {base_path}:")
        check("mean", means, budgets.get("mean_ns", {}), failures, checked)
        check("contract", contract, budgets.get("contract_ns", {}), failures, checked)
    if not checked:
        print(f"error: no budgeted row found in {out_path} — renamed benchmark?")
        return 1
    if failures:
        print("bench drift detected:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench drift ok: {len(checked)} row(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
